#!/usr/bin/env bash
# Aggregation-engine smoke: the sharded engine's headline claim is that
# finalized sums are bitwise invariant, so this gate runs the seeded
# loadgen swarm under different arrival shuffles, shard counts, and a
# kill/restore split, and diffs the byte-comparable output lines (the
# `agg <name> <bits> ...` and `digest <bits>` lines; `#` stats lines
# carry wall-clock and are excluded). Then the provenance loop: a
# finished `agg serve` run must `replay` bitwise-identically from its
# manifest, and the strict repro-agg-state-v1 parser must reject corrupt
# or truncated snapshots with exit code 2. Artifacts land in target/agg/.
set -euo pipefail

cd "$(dirname "$0")/.."

AGG_DIR=target/agg
mkdir -p "$AGG_DIR"

run() { cargo run --release -q -p repro-cli --bin repro-reduce -- "$@"; }
lines() { grep -v '^#' "$1"; } # the byte-comparable half of agg output

echo "== build (release) =="
cargo build --release -p repro-cli

# Small enough to finish in seconds, big enough that a broken merge or a
# racy shard would almost surely scramble some aggregate's low bits.
SPEC=(--aggregates 3 --clients 64 --batches 4 --batch-len 128)

echo "== loadgen: two arrival shuffles, byte-identical aggregates =="
run agg loadgen "${SPEC[@]}" --shuffle 1 > "$AGG_DIR/shuffle-1.txt"
run agg loadgen "${SPEC[@]}" --shuffle 99 --workers 8 > "$AGG_DIR/shuffle-99.txt"
diff <(lines "$AGG_DIR/shuffle-1.txt") <(lines "$AGG_DIR/shuffle-99.txt") \
  || { echo "arrival order changed a finalized sum" >&2; exit 1; }

echo "== loadgen: shard counts 1 and 16 agree with the default 4 =="
run agg loadgen "${SPEC[@]}" --shards 1 > "$AGG_DIR/shards-1.txt"
run agg loadgen "${SPEC[@]}" --shards 16 > "$AGG_DIR/shards-16.txt"
diff <(lines "$AGG_DIR/shards-1.txt") <(lines "$AGG_DIR/shards-16.txt") \
  || { echo "shard count changed a finalized sum" >&2; exit 1; }
diff <(lines "$AGG_DIR/shards-1.txt") <(lines "$AGG_DIR/shuffle-1.txt") \
  || { echo "shard count changed a finalized sum vs default" >&2; exit 1; }

echo "== serve: kill at the midpoint, restore from snapshot, resume =="
# 3 aggregates x 64 clients x 4 batches = 768 events; cut at 384.
run agg serve "${SPEC[@]}" > "$AGG_DIR/uninterrupted.txt"
run agg serve "${SPEC[@]}" --stop-at 384 --snapshot "$AGG_DIR/mid.state" \
  > "$AGG_DIR/first-half.txt"
grep -q '^# partial run' "$AGG_DIR/first-half.txt" \
  || { echo "partial run failed to say so" >&2; exit 1; }
run agg serve "${SPEC[@]}" --restore "$AGG_DIR/mid.state" --start-at 384 \
  --manifest "$AGG_DIR/run.manifest" > "$AGG_DIR/resumed.txt"
diff <(lines "$AGG_DIR/resumed.txt") <(lines "$AGG_DIR/uninterrupted.txt") \
  || { echo "kill/restore changed a finalized sum" >&2; exit 1; }

echo "== snapshot passes the strict parser =="
run agg check --file "$AGG_DIR/mid.state"

echo "== replay: the finished run's manifest verifies bitwise =="
run replay "$AGG_DIR/run.manifest" | tee "$AGG_DIR/replay.txt"
grep -q '^replay OK (bitwise): cmd=agg' "$AGG_DIR/replay.txt" \
  || { echo "agg manifest replay did not verify" >&2; exit 1; }

echo "== corrupt snapshots exit 2 (schema contract) =="
head -n 2 "$AGG_DIR/mid.state" > "$AGG_DIR/truncated.state"
sed '1s/repro-agg-snapshot-v1/repro-agg-snapshot-v9/' "$AGG_DIR/mid.state" \
  > "$AGG_DIR/badschema.state"
sed 's/^shard=0;sa1;/shard=0;zz9;/' "$AGG_DIR/mid.state" | \
  sed 's/^shard=0;3;/shard=0;9;/' > "$AGG_DIR/badshard.state"
for bad in truncated badschema badshard; do
  set +e
  run agg check --file "$AGG_DIR/$bad.state" >/dev/null 2>&1
  code=$?
  set -e
  [ "$code" -eq 2 ] \
    || { echo "$bad.state: expected exit 2, got $code" >&2; exit 1; }
done
set +e
run agg serve "${SPEC[@]}" --restore "$AGG_DIR/truncated.state" >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 2 ] \
  || { echo "serve --restore on truncated state: expected exit 2, got $code" >&2; exit 1; }

echo "== shard sweep benchmark (1/4/16, digest equality enforced) =="
run agg bench "${SPEC[@]}" | tee "$AGG_DIR/bench.txt"

echo "== agg OK =="
