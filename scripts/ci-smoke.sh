#!/usr/bin/env bash
# End-to-end smoke test: build the examples in release mode and run the two
# that exercise the whole stack (operators, selector, runtime pool, and the
# message-passing simulator). Used by CI after the unit-test stage; also
# handy locally before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release -p repro-examples

echo "== quickstart =="
cargo run --release -p repro-examples --bin quickstart

echo "== distributed_reduction =="
cargo run --release -p repro-examples --bin distributed_reduction

echo "== chaos (fault-injected reduction, fixed seed) =="
# A killed rank plus message drops: the run must heal, report its recovery
# counters, and stay bitwise identical to the survivor-set reference.
chaos_out=$(cargo run --release -p repro-cli --bin repro-reduce -- chaos \
  --ranks 8 --n 4096 --dr 12 --seed 2015 --drop 0.1 --kill 1 --topology binomial)
echo "$chaos_out"
echo "$chaos_out" | grep -q "survivor reference (PR fold=3): OK (bitwise)" \
  || { echo "chaos run lost bitwise reproducibility" >&2; exit 1; }
echo "$chaos_out" | grep -Eq "report: completed=[0-9]+ failed=[0-9]+ retries=[0-9]+ heals=[0-9]+" \
  || { echo "chaos run did not surface WorldReport counters" >&2; exit 1; }
echo "$chaos_out" | grep -Eq "checkpoint demo: retries=1 heals=1 checkpoint_restores=[0-9]+" \
  || { echo "chaos run did not surface RuntimeStats recovery counters" >&2; exit 1; }

echo "== smoke OK =="
