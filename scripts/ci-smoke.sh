#!/usr/bin/env bash
# End-to-end smoke test: build the examples in release mode and run the two
# that exercise the whole stack (operators, selector, runtime pool, and the
# message-passing simulator). Used by CI after the unit-test stage; also
# handy locally before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release -p repro-examples

echo "== quickstart =="
cargo run --release -p repro-examples --bin quickstart

echo "== distributed_reduction =="
cargo run --release -p repro-examples --bin distributed_reduction

echo "== smoke OK =="
