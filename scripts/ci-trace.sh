#!/usr/bin/env bash
# Observability smoke: run the traced commands, validate the JSONL schema
# with the CLI's own checker, and prove the headline guarantee — a seeded
# chaos trace replays byte-identically. Traces land in target/traces/ so CI
# can upload them as an artifact (and a red run ships the evidence).
set -euo pipefail

cd "$(dirname "$0")/.."

TRACE_DIR=target/traces
mkdir -p "$TRACE_DIR"

run() { cargo run --release -q -p repro-cli --bin repro-reduce -- "$@"; }

echo "== build (release) =="
cargo build --release -p repro-cli

echo "== traced smoke reduction =="
run trace reduce --n 4096 --k inf --dr 12 --seed 2015 > "$TRACE_DIR/reduce.jsonl"
grep -q '"kind":"decision"' "$TRACE_DIR/reduce.jsonl" \
  || { echo "traced reduction carried no selector decision record" >&2; exit 1; }
grep -q '"kind":"reduce_end"' "$TRACE_DIR/reduce.jsonl" \
  || { echo "traced reduction carried no runtime spans" >&2; exit 1; }

echo "== schema check (reduce) =="
run trace check --file "$TRACE_DIR/reduce.jsonl"

echo "== traced chaos, twice, fixed seed =="
CHAOS_ARGS=(trace chaos --ranks 6 --n 2048 --dr 12 --seed 2015 --drop 0.2 --dup 0.1 --kill 1)
run "${CHAOS_ARGS[@]}" > "$TRACE_DIR/chaos-a.jsonl"
run "${CHAOS_ARGS[@]}" > "$TRACE_DIR/chaos-b.jsonl"

echo "== schema check (chaos) =="
run trace check --file "$TRACE_DIR/chaos-a.jsonl"

echo "== replay determinism (byte-for-byte) =="
diff "$TRACE_DIR/chaos-a.jsonl" "$TRACE_DIR/chaos-b.jsonl" \
  || { echo "seeded chaos trace failed to replay byte-identically" >&2; exit 1; }

grep -q "survivor reference (PR fold=3): OK (bitwise)" "$TRACE_DIR/chaos-a.jsonl" \
  || { echo "traced chaos run lost bitwise reproducibility" >&2; exit 1; }
grep -q '"kind":"decision"' "$TRACE_DIR/chaos-a.jsonl" \
  || { echo "traced chaos run carried no selector decision record" >&2; exit 1; }

echo "== trace OK =="
