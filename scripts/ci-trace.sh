#!/usr/bin/env bash
# Observability smoke: run the traced commands, validate the JSONL schema
# with the CLI's own checker, and prove the headline guarantee — a seeded
# chaos trace replays byte-identically. Traces land in target/traces/ so CI
# can upload them as an artifact (and a red run ships the evidence).
set -euo pipefail

cd "$(dirname "$0")/.."

TRACE_DIR=target/traces
mkdir -p "$TRACE_DIR"

run() { cargo run --release -q -p repro-cli --bin repro-reduce -- "$@"; }

echo "== build (release) =="
cargo build --release -p repro-cli

echo "== traced smoke reduction =="
run trace reduce --n 4096 --k inf --dr 12 --seed 2015 > "$TRACE_DIR/reduce.jsonl"
grep -q '"kind":"decision"' "$TRACE_DIR/reduce.jsonl" \
  || { echo "traced reduction carried no selector decision record" >&2; exit 1; }
grep -q '"kind":"reduce_end"' "$TRACE_DIR/reduce.jsonl" \
  || { echo "traced reduction carried no runtime spans" >&2; exit 1; }

echo "== schema check (reduce) =="
run trace check --file "$TRACE_DIR/reduce.jsonl"

echo "== traced chaos, twice, fixed seed =="
CHAOS_ARGS=(trace chaos --ranks 6 --n 2048 --dr 12 --seed 2015 --drop 0.2 --dup 0.1 --kill 1)
run "${CHAOS_ARGS[@]}" > "$TRACE_DIR/chaos-a.jsonl"
run "${CHAOS_ARGS[@]}" > "$TRACE_DIR/chaos-b.jsonl"

echo "== schema check (chaos) =="
run trace check --file "$TRACE_DIR/chaos-a.jsonl"

echo "== replay determinism (byte-for-byte) =="
diff "$TRACE_DIR/chaos-a.jsonl" "$TRACE_DIR/chaos-b.jsonl" \
  || { echo "seeded chaos trace failed to replay byte-identically" >&2; exit 1; }

grep -q "survivor reference (PR fold=3): OK (bitwise)" "$TRACE_DIR/chaos-a.jsonl" \
  || { echo "traced chaos run lost bitwise reproducibility" >&2; exit 1; }
grep -q '"kind":"decision"' "$TRACE_DIR/chaos-a.jsonl" \
  || { echo "traced chaos run carried no selector decision record" >&2; exit 1; }

echo "== telemetry off by default (no node events) =="
grep -q '"kind":"node"' "$TRACE_DIR/chaos-a.jsonl" \
  && { echo "untelemetried trace leaked node events" >&2; exit 1; }

echo "== telemetried chaos, twice, fixed seed =="
TELEM_ARGS=(trace chaos --ranks 6 --n 2048 --dr 12 --seed 2015 --telemetry)
run "${TELEM_ARGS[@]}" > "$TRACE_DIR/telemetry-a.jsonl"
run "${TELEM_ARGS[@]}" > "$TRACE_DIR/telemetry-b.jsonl"
grep -q '"kind":"node"' "$TRACE_DIR/telemetry-a.jsonl" \
  || { echo "telemetried trace carried no node events" >&2; exit 1; }
run trace check --file "$TRACE_DIR/telemetry-a.jsonl"

echo "== trace diff: same-seed telemetry traces must align cleanly =="
run trace diff "$TRACE_DIR/telemetry-a.jsonl" "$TRACE_DIR/telemetry-b.jsonl" \
  || { echo "same-seed telemetry traces diverged" >&2; exit 1; }

echo "== trace diff: one-ulp perturbation must be caught and localized =="
# Index 567 holds the input's max-magnitude element, so the one-ulp nudge
# survives its segment's rounding: the diff must localize the divergence to
# that exact leaf (rank 1, segment 2, interval [514, 600)), not just notice
# the root moved.
run "${TELEM_ARGS[@]}" --perturb 567 > "$TRACE_DIR/telemetry-perturbed.jsonl"
if run trace diff "$TRACE_DIR/telemetry-a.jsonl" "$TRACE_DIR/telemetry-perturbed.jsonl" \
    > "$TRACE_DIR/diff-perturbed.txt" 2>&1; then
  echo "trace diff missed an injected one-ulp perturbation" >&2
  exit 1
fi
grep -q "first divergent node:" "$TRACE_DIR/diff-perturbed.txt" \
  || { echo "perturbed diff did not name the first divergent node" >&2; exit 1; }
grep -q "origin: node rank1/leaf.r1.s2 leaf interval \[514, 600) ulps=1" "$TRACE_DIR/diff-perturbed.txt" \
  || { echo "perturbed diff did not walk to the injected leaf origin" >&2; exit 1; }

echo "== replay gate: manifest round-trips bitwise =="
# No --k inf here: the zero-sum generator reduces to bitwise 0.0 for every
# seed, which would make the seed-perturbation probe below vacuous. The
# default well-conditioned input keeps result_bits seed-dependent.
run trace reduce --n 4096 --dr 12 --seed 2015 --manifest "$TRACE_DIR/manifest.json" \
  > /dev/null
run replay "$TRACE_DIR/manifest.json" \
  || { echo "replay of an untouched manifest was not bitwise-identical" >&2; exit 1; }

echo "== replay gate: perturbed manifest must exit 1 =="
# Tamper with the recorded result bits: re-execution is deterministic, so
# the replayed bits can never match a rewritten record. (A seed rewrite is
# not a reliable probe here — the generator normalizes the exact sum, so
# distinct seeds can legally replay to identical bits.)
sed 's/"result_bits":"[0-9a-f]*"/"result_bits":"deadbeefdeadbeef"/' \
  "$TRACE_DIR/manifest.json" > "$TRACE_DIR/manifest-perturbed.json"
cmp -s "$TRACE_DIR/manifest.json" "$TRACE_DIR/manifest-perturbed.json" \
  && { echo "result_bits tamper did not rewrite the manifest" >&2; exit 1; }
set +e
run replay "$TRACE_DIR/manifest-perturbed.json" > "$TRACE_DIR/replay-perturbed.txt" 2>&1
replay_code=$?
set -e
[ "$replay_code" -eq 1 ] \
  || { echo "perturbed replay exited $replay_code, want 1 (divergence)" >&2; exit 1; }
grep -q "replay DIVERGED" "$TRACE_DIR/replay-perturbed.txt" \
  || { echo "perturbed replay did not report divergence" >&2; exit 1; }

echo "== replay gate: garbage manifest must exit 2 =="
echo "definitely not a manifest" > "$TRACE_DIR/manifest-garbage.json"
set +e
run replay "$TRACE_DIR/manifest-garbage.json" > /dev/null 2>&1
garbage_code=$?
set -e
[ "$garbage_code" -eq 2 ] \
  || { echo "garbage replay exited $garbage_code, want 2 (schema error)" >&2; exit 1; }

echo "== flight recorder off: event stream must stay byte-identical =="
# Only the JSONL event lines are compared: '#' summary lines legitimately
# differ (the manifest's env capture records REPRO_FLIGHT itself, and
# '# metric' histograms carry wall-clock timings).
events_only() { grep -v '^#' "$1" > "$1.events"; }
run trace reduce --n 2048 --dr 12 --seed 2015 > "$TRACE_DIR/flight-on.jsonl"
REPRO_FLIGHT=off run trace reduce --n 2048 --dr 12 --seed 2015 \
  > "$TRACE_DIR/flight-off.jsonl"
events_only "$TRACE_DIR/flight-on.jsonl"
events_only "$TRACE_DIR/flight-off.jsonl"
diff "$TRACE_DIR/flight-on.jsonl.events" "$TRACE_DIR/flight-off.jsonl.events" \
  || { echo "disabling the flight recorder changed the reduce event stream" >&2; exit 1; }
run "${CHAOS_ARGS[@]}" > "$TRACE_DIR/chaos-flight-on.jsonl"
REPRO_FLIGHT=off run "${CHAOS_ARGS[@]}" > "$TRACE_DIR/chaos-flight-off.jsonl"
events_only "$TRACE_DIR/chaos-flight-on.jsonl"
events_only "$TRACE_DIR/chaos-flight-off.jsonl"
diff "$TRACE_DIR/chaos-flight-on.jsonl.events" "$TRACE_DIR/chaos-flight-off.jsonl.events" \
  || { echo "disabling the flight recorder changed the chaos event stream" >&2; exit 1; }

echo "== accuracy report (prometheus + self-contained html) =="
run report --n 4096 --k inf --dr 12 --seed 2015 --format prom > "$TRACE_DIR/report.prom"
grep -q "# TYPE runtime_nodes_observed counter" "$TRACE_DIR/report.prom" \
  || { echo "prometheus report lacks the node counter" >&2; exit 1; }
grep -q "^select_spread_drift " "$TRACE_DIR/report.prom" \
  || { echo "prometheus report lacks the calibration-drift gauge" >&2; exit 1; }
run report --n 4096 --k inf --dr 12 --seed 2015 --format html > "$TRACE_DIR/report.html"
grep -q "Error trajectory" "$TRACE_DIR/report.html" \
  || { echo "html report lacks the error-trajectory table" >&2; exit 1; }
grep -Eq '<script src|<link|href="http|src="http' "$TRACE_DIR/report.html" \
  && { echo "html report is not self-contained" >&2; exit 1; }

echo "== trace OK =="
