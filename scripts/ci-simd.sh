#!/usr/bin/env bash
# SIMD dispatch matrix: run the kernel-touching test suites once per
# REPRO_SIMD tier, then prove the dispatch paths are bitwise identical on
# fixed-seed data — same bench document (modulo timing) and byte-identical
# CLI sums/exact-error lines whichever tier computed them.
#
# Tier availability is probed with `repro-reduce simd --check <tier>`, which
# answers through its exit status. An unsupported tier is SKIPPED LOUDLY —
# it is a real coverage hole on this runner, never a silent pass — and
# `REPRO_SIMD` itself aborts the process if forced to a tier the CPU lacks,
# so a test that claims to have run under avx2 really did.
set -euo pipefail

cd "$(dirname "$0")/.."

SIMD_DIR=target/simd
mkdir -p "$SIMD_DIR"

run() { cargo run --release -q -p repro-cli --bin repro-reduce -- "$@"; }

echo "== build (release) =="
cargo build --release -p repro-cli

echo "== dispatch report =="
run simd

ran=()
skipped=()
for tier in scalar sse2 avx2; do
  if ! run simd --check "$tier" >/dev/null 2>&1; then
    echo "!! tier $tier unsupported on this runner — SKIPPING (coverage hole)" >&2
    skipped+=("$tier")
    continue
  fi

  echo "== tier $tier: kernel test suites (fp, sum, runtime, select) =="
  REPRO_SIMD="$tier" cargo test --release -q \
    -p repro-fp -p repro-sum -p repro-runtime -p repro-select

  echo "== tier $tier: fixed-seed bench digest (quick scale) =="
  REPRO_SIMD="$tier" REPRO_SCALE=quick run bench --out "$SIMD_DIR/bench-$tier.json"
  sed -E 's/"ns_per_elem": [0-9]+(\.[0-9]+)?/"ns_per_elem": X/; s/"bytes_per_sec": [0-9]+/"bytes_per_sec": X/' \
    "$SIMD_DIR/bench-$tier.json" > "$SIMD_DIR/digest-$tier.json"

  echo "== tier $tier: fixed-seed numeric digest (CLI sums + exact error) =="
  # The sum command's exact-error line runs the dispatched superaccumulator
  # hot path over the full input, so these outputs carry real kernel bits.
  REPRO_SIMD="$tier" run gen --n 50000 --dr 28 --seed 2015 > "$SIMD_DIR/values.txt"
  : > "$SIMD_DIR/numeric-$tier.txt"
  for alg in ST PR DS; do
    REPRO_SIMD="$tier" run sum --alg "$alg" --hex --file "$SIMD_DIR/values.txt" \
      >> "$SIMD_DIR/numeric-$tier.txt"
  done

  ran+=("$tier")
done

echo "== cross-tier bitwise identity (${ran[*]}) =="
first="${ran[0]}"
for tier in "${ran[@]:1}"; do
  diff "$SIMD_DIR/digest-$first.json" "$SIMD_DIR/digest-$tier.json" \
    || { echo "bench digests diverge between $first and $tier" >&2; exit 1; }
  diff "$SIMD_DIR/numeric-$first.txt" "$SIMD_DIR/numeric-$tier.txt" \
    || { echo "numeric digests diverge between $first and $tier" >&2; exit 1; }
  echo "   $first == $tier (bench + numeric digests)"
done

if [ "${#ran[@]}" -lt 2 ]; then
  echo "!! only ${#ran[@]} tier(s) ran — the cross-tier diff proved nothing" >&2
fi
if [ "${#skipped[@]}" -gt 0 ]; then
  echo "!! skipped tiers on this runner: ${skipped[*]}" >&2
fi

echo "== simd matrix OK (ran: ${ran[*]}; skipped: ${skipped[*]:-none}) =="
