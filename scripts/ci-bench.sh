#!/usr/bin/env bash
# Throughput-harness smoke: run the deterministic bench suite at quick
# scale, validate the BENCH JSON schema, and prove the harness itself is
# deterministic — two same-seed runs must agree byte-for-byte once the
# timing fields (the only nondeterministic outputs) are stripped. Then run
# once at default scale and compare against the committed BENCH_09/BENCH_10
# baselines: schema, op coverage, seed, and n must match, and the ns/elem
# deltas are rendered as a table (to $GITHUB_STEP_SUMMARY when set). No
# wall-clock thresholds anywhere: CI runners share cores, so asserting on
# absolute ns/elem would only manufacture flakes. Artifacts land in
# target/bench/ so CI uploads them for offline comparison.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_DIR=target/bench
mkdir -p "$BENCH_DIR"

run() { cargo run --release -q -p repro-cli --bin repro-reduce -- "$@"; }

echo "== build (release) =="
cargo build --release -p repro-cli

echo "== bench suite (quick scale), twice, fixed seed =="
REPRO_SCALE=quick run bench --out "$BENCH_DIR/bench-a.json"
REPRO_SCALE=quick run bench --out "$BENCH_DIR/bench-b.json"

echo "== schema check =="
grep -q '"schema": "repro-bench-throughput-v1"' "$BENCH_DIR/bench-a.json" \
  || { echo "bench output lacks the schema marker" >&2; exit 1; }
required_ops=(sum/ST sum/PW sum/K sum/N sum/CP sum/DD sum/PR sum/DS
              superacc/scalar superacc/batched simd/scalar
              lanes/1 lanes/4 lanes/8
              select/profile select/profile_and_sum
              select/sampled_profile select/cache_hit select/cache_miss
              obs/noop obs/ring obs/jsonl
              agg/ingest agg/merge agg/snapshot agg/finalize)
# The simd/<tier> entry list follows the machine: sse2/avx2 entries are
# required exactly when `repro-reduce simd --check` says the CPU has them.
for tier in sse2 avx2; do
  if run simd --check "$tier" >/dev/null 2>&1; then
    required_ops+=("simd/$tier")
  else
    echo "!! tier $tier unsupported here — not requiring simd/$tier coverage" >&2
  fi
done
for op in "${required_ops[@]}"; do
  grep -q "\"op\": \"$op\"" "$BENCH_DIR/bench-a.json" \
    || { echo "bench output is missing op $op" >&2; exit 1; }
done
grep -Eq '"ns_per_elem": [0-9]+(\.[0-9]+)?' "$BENCH_DIR/bench-a.json" \
  || { echo "bench output lacks ns_per_elem readings" >&2; exit 1; }
grep -Eq '"git_rev": "[0-9a-f]{12}|unknown"' "$BENCH_DIR/bench-a.json" \
  || { echo "bench output lacks a git revision" >&2; exit 1; }

echo "== harness determinism (byte-for-byte modulo timing fields) =="
strip_timing() {
  # ns_per_elem is {:.4}-formatted today, but tolerate a bare integer too —
  # an earlier version of this strip missed integer readings and let a
  # "deterministic" diff compare live timings.
  sed -E 's/"ns_per_elem": [0-9]+(\.[0-9]+)?/"ns_per_elem": X/; s/"bytes_per_sec": [0-9]+/"bytes_per_sec": X/' "$1"
}
diff <(strip_timing "$BENCH_DIR/bench-a.json") <(strip_timing "$BENCH_DIR/bench-b.json") \
  || { echo "same-seed bench runs diverged outside the timing fields" >&2; exit 1; }

echo "== baseline comparison (default scale vs committed BENCH_*.json) =="
run bench --out "$BENCH_DIR/bench-default.json"

ops_of() { sed -nE 's|.*"op": "([^"]+)".*|\1|p' "$1"; }
field_of() { sed -nE 's|.*"'"$2"'": ([0-9]+).*|\1|p' "$1" | sort -u; }
ns_of() { # $1 = file, $2 = op — empty when the op is absent
  sed -nE 's|.*"op": "'"$2"'", "n": [0-9]+, "ns_per_elem": ([0-9]+(\.[0-9]+)?).*|\1|p' "$1"
}

baseline=BENCH_10.json
[ -f "$baseline" ] || { echo "committed baseline $baseline is missing" >&2; exit 1; }

grep -q '"schema": "repro-bench-throughput-v1"' "$baseline" \
  || { echo "$baseline lacks the schema marker" >&2; exit 1; }
for f in seed n; do
  a=$(field_of "$baseline" "$f"); b=$(field_of "$BENCH_DIR/bench-default.json" "$f")
  [ "$a" = "$b" ] || { echo "$f mismatch vs $baseline: baseline=$a run=$b" >&2; exit 1; }
done

# Op coverage: every baseline op must be reproduced here, except a simd
# tier this machine genuinely lacks (tolerated loudly); a fresh op absent
# from the baseline means the baseline is stale — fail so it gets refreshed.
while read -r op; do
  if ! ops_of "$BENCH_DIR/bench-default.json" | grep -qx "$op"; then
    case "$op" in
      simd/*)
        tier="${op#simd/}"
        if ! run simd --check "$tier" >/dev/null 2>&1; then
          echo "!! baseline op $op needs tier $tier, unsupported here — tolerated" >&2
          continue
        fi ;;
    esac
    echo "run is missing baseline op $op" >&2; exit 1
  fi
done < <(ops_of "$baseline")
while read -r op; do
  ops_of "$baseline" | grep -qx "$op" \
    || { echo "op $op is not in $baseline — refresh the committed baseline" >&2; exit 1; }
done < <(ops_of "$BENCH_DIR/bench-default.json")

# Delta table: informational only (shared CI cores), but it rides every run.
table="$BENCH_DIR/baseline-delta.md"
{
  echo "### Bench vs committed baselines (ns/elem)"
  echo ""
  echo "| op | BENCH_09 | BENCH_10 | this run | Δ vs 10 |"
  echo "|---|---|---|---|---|"
  while read -r op; do
    b9=$(ns_of BENCH_09.json "$op"); b10=$(ns_of "$baseline" "$op")
    now=$(ns_of "$BENCH_DIR/bench-default.json" "$op")
    delta=$(awk -v a="$b10" -v b="$now" \
      'BEGIN { if (a == "" || b == "") print "n/a"; else printf "%+.1f%%", (b - a) / a * 100 }')
    echo "| $op | ${b9:-–} | ${b10:-–} | ${now:-–} | $delta |"
  done < <(ops_of "$baseline")
} > "$table"
cat "$table"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  cat "$table" >> "$GITHUB_STEP_SUMMARY"
fi

echo "== bench OK =="
