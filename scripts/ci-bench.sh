#!/usr/bin/env bash
# Throughput-harness smoke: run the deterministic bench suite at quick
# scale, validate the BENCH JSON schema, and prove the harness itself is
# deterministic — two same-seed runs must agree byte-for-byte once the
# timing fields (the only nondeterministic outputs) are stripped. No
# wall-clock thresholds: CI runners share cores, so asserting on absolute
# ns/elem would only manufacture flakes. Artifacts land in target/bench/
# so CI uploads them for offline comparison against a developer machine.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_DIR=target/bench
mkdir -p "$BENCH_DIR"

run() { cargo run --release -q -p repro-cli --bin repro-reduce -- "$@"; }

echo "== build (release) =="
cargo build --release -p repro-cli

echo "== bench suite (quick scale), twice, fixed seed =="
REPRO_SCALE=quick run bench --out "$BENCH_DIR/bench-a.json"
REPRO_SCALE=quick run bench --out "$BENCH_DIR/bench-b.json"

echo "== schema check =="
grep -q '"schema": "repro-bench-throughput-v1"' "$BENCH_DIR/bench-a.json" \
  || { echo "bench output lacks the schema marker" >&2; exit 1; }
for op in sum/ST sum/PW sum/K sum/N sum/CP sum/DD sum/PR sum/DS \
          superacc/scalar superacc/batched lanes/1 lanes/4 lanes/8 \
          select/profile select/profile_and_sum; do
  grep -q "\"op\": \"$op\"" "$BENCH_DIR/bench-a.json" \
    || { echo "bench output is missing op $op" >&2; exit 1; }
done
grep -Eq '"ns_per_elem": [0-9]+\.[0-9]+' "$BENCH_DIR/bench-a.json" \
  || { echo "bench output lacks ns_per_elem readings" >&2; exit 1; }
grep -Eq '"git_rev": "[0-9a-f]{12}|unknown"' "$BENCH_DIR/bench-a.json" \
  || { echo "bench output lacks a git revision" >&2; exit 1; }

echo "== harness determinism (byte-for-byte modulo timing fields) =="
strip_timing() {
  sed -E 's/"ns_per_elem": [0-9]+\.[0-9]+/"ns_per_elem": X/; s/"bytes_per_sec": [0-9]+/"bytes_per_sec": X/' "$1"
}
diff <(strip_timing "$BENCH_DIR/bench-a.json") <(strip_timing "$BENCH_DIR/bench-b.json") \
  || { echo "same-seed bench runs diverged outside the timing fields" >&2; exit 1; }

echo "== bench OK =="
