//! Offline vendored stand-in for the `criterion` crate.
//!
//! The workspace must build its benches with **no access to crates.io**, so
//! the real `criterion` cannot be fetched. This drop-in implements the API
//! subset the benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] — and genuinely measures:
//! each routine is warmed up, then timed over `sample_size` samples; the
//! median time per iteration (and derived throughput) is printed.
//!
//! Environment knobs: `REPRO_BENCH_FILTER` (substring filter, in addition to
//! any positional CLI filter) and `REPRO_BENCH_MS` (target measuring time
//! per sample batch in milliseconds; default 10).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Harness entry point.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("REPRO_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(10);
        Criterion {
            filter: std::env::var("REPRO_BENCH_FILTER")
                .ok()
                .filter(|s| !s.is_empty()),
            sample_size: 10,
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Apply CLI arguments: the first non-flag argument is a substring
    /// filter (flags such as `--bench`, which cargo passes, are ignored).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Top-level single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let name = id.id.clone();
        let (sample_size, measure, skip) =
            { (self.sample_size, self.measure, !self.matches(&name)) };
        if !skip {
            run_one(&name, None, sample_size, measure, &mut f);
        }
        self
    }

    /// Print the closing line (upstream writes reports; we just flush).
    pub fn final_summary(&mut self) {
        println!("(benchmarks complete)");
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| name.contains(f))
    }
}

/// A named group sharing throughput and sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declare per-iteration throughput for derived reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let name = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&name) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(&name, self.throughput, n, self.criterion.measure, &mut f);
        }
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&name) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(
                &name,
                self.throughput,
                n,
                self.criterion.measure,
                &mut |b| f(b, input),
            );
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the routine; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    measure: Duration,
    f: &mut F,
) {
    // Calibrate: how many iterations fit in the measuring window?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (measure.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;

    // Warm up once at full batch size, then collect samples.
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}/s", human_count(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}B/s", human_count(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "{:<48} time: [{} {} {}]{}",
        name,
        human_time(lo),
        human_time(median),
        human_time(hi),
        thrpt
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

fn human_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.0} ")
    }
}

/// Upstream-compatible macro: groups are plain functions here.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Upstream-compatible macro: runs the groups in a `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        c.final_summary();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("ST").id, "ST");
    }
}
