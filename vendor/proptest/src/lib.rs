//! Offline vendored stand-in for the `proptest` crate.
//!
//! The workspace must build and test with **no access to crates.io**, so
//! the real `proptest` cannot be fetched. This drop-in implements the API
//! subset the test suites use:
//!
//! * [`proptest!`] with an optional `#![proptest_config(..)]` header,
//!   `name(pattern in strategy, ...)` arguments (including `mut` and tuple
//!   patterns), and doc comments;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * strategies: numeric ranges, tuples, [`strategy::Just`],
//!   [`prop::collection::vec`], [`prop_oneof!`] (weighted and unweighted),
//!   [`arbitrary::any`] for `u64`/`u32`/`bool`/[`sample::Index`], and the
//!   [`strategy::Strategy::prop_map`] / `prop_flat_map` combinators.
//!
//! Differences from upstream: cases are generated from a **deterministic
//! per-test seed** (derived from the test's module path and name), and
//! failing inputs are reported but not shrunk. Deterministic seeding makes
//! CI runs bit-for-bit repeatable, which this repository values more than
//! shrinking.

#![forbid(unsafe_code)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Subset of upstream `ProptestConfig`: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while still
            // exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a over its bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; try another.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }
}

/// Strategies: deterministic value factories.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy it maps to.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample_value(&self, rng: &mut TestRng) -> V {
            (**self).sample_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample_value(rng)).sample_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, G
    ));

    /// Weighted union of same-valued strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<V> {
        branches: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` branches.
        pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = branches.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one branch");
            Union { branches, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.branches {
                if pick < *w as u64 {
                    return s.sample_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the draw")
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;

        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` over its whole domain.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for a primitive.
    pub struct AnyPrim<T>(std::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty => $gen:expr),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrim(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_any!(
        u64 => |rng| rng.next_u64(),
        u32 => |rng| (rng.next_u64() >> 32) as u32,
        bool => |rng| rng.next_u64() & 1 == 1,
        usize => |rng| rng.next_u64() as usize
    );
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Acceptable size arguments for [`vec`].
        pub trait IntoSizeRange {
            /// Lower and upper bound (inclusive).
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// `Vec` strategy: `size` draws of `element`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            VecStrategy { element, lo, hi }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.hi - self.lo) as u64;
                let len = self.lo
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span + 1) as usize
                    };
                (0..len).map(|_| self.element.sample_value(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::arbitrary::Arbitrary;
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A length-agnostic index: scale into any `0..len` at use time.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// Project onto `0..len` (`len > 0`).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                ((self.0 as u128 * len as u128) >> 64) as usize
            }
        }

        /// Strategy generating [`Index`].
        pub struct AnyIndex;

        impl Strategy for AnyIndex {
            type Value = Index;
            fn sample_value(&self, rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }

        impl Arbitrary for Index {
            type Strategy = AnyIndex;
            fn arbitrary() -> Self::Strategy {
                AnyIndex
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u64 = 0;
            let __max_attempts = __config.cases as u64 * 20 + 100;
            while __ran < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest: too many rejected cases in {} ({} accepted of {} wanted)",
                    stringify!($name),
                    __ran,
                    __config.cases,
                );
                let __case = {
                    #[allow(unused_parens, unused_mut)]
                    let ($($pat),+ ,) = (
                        $( $crate::strategy::Strategy::sample_value(&($strat), &mut __rng) ),+ ,
                    );
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })()
                };
                match __case {
                    Ok(()) => __ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __ran + 1,
                            __config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l != __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds (another input is drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Pick among strategies, optionally weighted: `prop_oneof![3 => a, 1 => b]`
/// or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            3 => (0.0f64..1.0).prop_map(|v| v + 10.0),
            1 => Just(0.0),
        ]) {
            prop_assert!(x == 0.0 || (10.0..11.0).contains(&x));
        }

        #[test]
        fn tuple_and_index((a, b) in (0i32..5, 0i32..5), idx in any::<prop::sample::Index>()) {
            prop_assert!(a < 5 && b < 5);
            let i = idx.index(7);
            prop_assert!(i < 7);
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::prop::collection::vec(0.0f64..1.0, 3..8);
        let a = s.sample_value(&mut TestRng::for_test("t"));
        let b = s.sample_value(&mut TestRng::for_test("t"));
        assert_eq!(a, b);
    }
}
