//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace must build and test on machines with **no network access
//! to crates.io**, so the real `rand` cannot be fetched. Library crates use
//! `repro_fp::rng::DetRng` instead; the test suites and benches, which
//! historically used `rand`, link against this drop-in that implements only
//! the API subset they call:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`]
//! * [`RngExt`]: `random_range`, `random`, `random_bool`
//! * [`seq::SliceRandom`]: `shuffle`, `choose`
//!
//! The generator is SplitMix64 — deterministic, seeded, and identical on
//! every platform. Sequences differ from upstream `rand` (which never
//! guaranteed stable streams across versions anyway); all tests in this
//! workspace assert *properties* of generated data, never exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of 64-bit outputs.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (the single constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard test generator: SplitMix64.
    ///
    /// (Upstream `StdRng` is a ChaCha variant; tests here only require a
    /// deterministic seeded stream, not a specific one.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Uniform sampling over the full domain of a type.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Uniform sampling from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32, u8);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (mirrors the `rand` 0.9+ `Rng` extension trait).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Slice helpers (mirrors `rand::seq::SliceRandom`).
pub mod seq {
    use super::{below, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x: f64 = a.random_range(-3.0..3.0);
            let y: f64 = b.random_range(-3.0..3.0);
            assert_eq!(x.to_bits(), y.to_bits());
            assert!((-3.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
