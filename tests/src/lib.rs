//! Integration-test host package; see `tests/tests/` for the tests.
