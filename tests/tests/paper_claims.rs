//! The paper's section-by-section claims as assertions: `cargo test` alone
//! re-verifies the narrative (the bench targets additionally print the
//! figures the claims come from).
//!
//! Each test names the paper section it pins down.

use repro_core::prelude::*;
use repro_core::stats::population_stddev;
use repro_core::tree::permute::PermutationStudy;
use repro_core::tree::{reduce, TreeShape};

/// §I / §II-A: floating-point addition is not associative — the paper's own
/// `a = 10⁹, b = −10⁹, c = 10⁻⁹` example.
#[test]
fn section_2a_nonassociativity_example() {
    let (a, b, c) = (1e9, -1e9, 1e-9);
    assert_eq!((a + b) + c, 1e-9);
    assert_eq!(a + (b + c), 0.0);
    assert_ne!((a + b) + c, a + (b + c));
}

/// §II-B: reduction trees of different shapes, and same-shaped trees with
/// different leaf assignments, yield different ST values (the [3] result
/// the paper builds on, at the paper's own tiny scale of eight values).
#[test]
fn section_2b_eight_value_tree_variability() {
    // Eight values, six small two large (the large pair cancelling), like
    // the cited experiment.
    let values = [1e16, 1.0, 1.0, 1.0, -1e16, 1.0, 1.0, 1.0];
    // Different shapes disagree:
    let shapes = [
        TreeShape::Balanced,
        TreeShape::Serial,
        TreeShape::Skewed { ratio: 250 },
    ];
    let results: Vec<u64> = shapes
        .iter()
        .map(|&s| reduce(&values, s, Algorithm::Standard).to_bits())
        .collect();
    assert!(
        results.windows(2).any(|w| w[0] != w[1]),
        "some pair of shapes must disagree: {results:?}"
    );
    // Same shape, different leaf assignment disagrees too (some assignment
    // among a handful of seeds must break the symmetry):
    let a = reduce(&values, TreeShape::Balanced, Algorithm::Standard);
    let disagreed = (0..20u64).any(|seed| {
        let perm = repro_core::tree::random_permutation(values.len(), seed);
        let permuted = repro_core::tree::apply_permutation(&values, &perm);
        reduce(&permuted, TreeShape::Balanced, Algorithm::Standard).to_bits() != a.to_bits()
    });
    assert!(
        disagreed,
        "no leaf assignment changed the balanced-tree sum"
    );
}

/// §IV-A: the analytical worst-case bound overestimates real errors by
/// orders of magnitude (Figure 2's lesson, as a fixed-seed assertion).
#[test]
fn section_4a_bounds_overestimate() {
    let values = repro_core::gen::uniform(10_000, -1000.0, 1000.0, 2015);
    let exact = repro_core::fp::exact_sum_acc(&values);
    let abs_sum = repro_core::fp::exact_abs_sum(&values);
    let bound = repro_core::fp::higham_bound(values.len(), abs_sum);
    let mut worst = 0.0f64;
    PermutationStudy::new(&values, 50, 7).for_each(|_, permuted| {
        let e = repro_core::fp::abs_error_vs(&exact, permuted.iter().sum());
        worst = worst.max(e);
    });
    assert!(
        bound > worst * 100.0,
        "bound {bound:e} should dwarf the worst observed error {worst:e}"
    );
}

/// §IV-B: cancellation counts do not rank summation orders by error
/// (|Spearman| well below 1 on the Figure 3 workload).
#[test]
fn section_4b_cancellation_does_not_predict_error() {
    use repro_core::cancel::instrumented_sum;
    let mut values = repro_core::gen::uniform(1_000, -1.0, 1.0, 3);
    let exact = repro_core::fp::exact_sum_acc(&values);
    let mut counts = Vec::new();
    let mut errors = Vec::new();
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for i in 0..60u64 {
        values.shuffle(&mut rng);
        counts.push(instrumented_sum(&values, i).total() as f64);
        errors.push(repro_core::fp::abs_error_vs(&exact, values.iter().sum()));
    }
    let rho = spearman(&counts, &errors);
    assert!(
        rho.abs() < 0.6,
        "cancellation census should not rank errors: rho = {rho}"
    );
}

/// §IV-C: the robust algorithms cost more than ST, with PR the most
/// expensive (the paper's measured ST < … < PR frame; the K/CP middle pair
/// is hardware-dependent, see EXPERIMENTS.md).
#[test]
fn section_4c_cost_ordering() {
    let model = repro_core::select::CostModel::measure(65_536, 5, 1);
    let st = model.cost(Algorithm::Standard);
    for alg in [Algorithm::Kahan, Algorithm::Composite, Algorithm::PR] {
        assert!(model.cost(alg) > st, "{alg} should cost more than ST");
    }
    assert!(
        model.cost(Algorithm::PR) > model.cost(Algorithm::Kahan)
            && model.cost(Algorithm::PR) > model.cost(Algorithm::Composite),
        "PR tops the ladder"
    );
}

/// §V-B (Figure 7): on zero-sum dr=32 data, variability ranks
/// ST ≥ K ≫ CP ≫ PR = 0, and ST's error grows with concurrency.
#[test]
fn section_5b_sensitivity_ranking() {
    let spread = |n: usize| -> Vec<f64> {
        let values = repro_core::gen::zero_sum_with_range(n, 32, 99);
        let exact = repro_core::fp::exact_sum_acc(&values);
        Algorithm::PAPER_SET
            .iter()
            .map(|&alg| {
                let mut errors = Vec::new();
                PermutationStudy::new(&values, 30, 13).for_each(|_, p| {
                    errors.push(repro_core::fp::abs_error_vs(
                        &exact,
                        reduce(p, TreeShape::Balanced, alg),
                    ));
                });
                population_stddev(&errors)
            })
            .collect()
    };
    let small = spread(2_048);
    let large = spread(16_384);
    let (st_s, k_s, cp_s, pr_s) = (small[0], small[1], small[2], small[3]);
    assert!(st_s >= k_s * 0.5, "K should not be wildly worse than ST");
    assert!(k_s > cp_s * 1e3, "K ≫ CP");
    assert_eq!(pr_s, 0.0, "PR exactly reproducible");
    assert!(large[0] > st_s, "ST variability grows with concurrency");
}

/// §V-C (Figures 9–11): condition number drives variability far harder
/// than dynamic range.
#[test]
fn section_5c_k_dominates_dr() {
    let spread_at = |k: f64, dr: u32| -> f64 {
        let values = repro_core::gen::grid_cell(2_048, k, dr, 5, 1e16);
        let exact = repro_core::fp::exact_sum_acc(&values);
        let mut errors = Vec::new();
        PermutationStudy::new(&values, 25, 3).for_each(|_, p| {
            errors.push(repro_core::fp::abs_error_vs(
                &exact,
                reduce(p, TreeShape::Balanced, Algorithm::Standard),
            ));
        });
        population_stddev(&errors)
    };
    let k_gradient = spread_at(1e12, 8) / spread_at(1e2, 8).max(f64::MIN_POSITIVE);
    let dr_gradient = spread_at(1e2, 32) / spread_at(1e2, 0).max(f64::MIN_POSITIVE);
    assert!(
        k_gradient > dr_gradient * 100.0,
        "k gradient {k_gradient:e} must dwarf dr gradient {dr_gradient:e}"
    );
}

/// §V-D (Figure 12): tightening the tolerance escalates the chosen
/// algorithm monotonically, and the hostile corner escalates first.
#[test]
fn section_5d_selection_escalates() {
    let hostile = repro_core::gen::grid_cell(4_096, 1e12, 32, 9, 1e16);
    let benign = repro_core::gen::grid_cell(4_096, 1.0, 0, 9, 1e16);
    let reducer = |t: f64| AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(t));
    let mut last_rank = 0;
    for t in [1e-3, 1e-6, 1e-9, 1e-12, 1e-15, 0.0] {
        let (alg, _) = reducer(t).choose(&hostile);
        assert!(alg.cost_rank() >= last_rank, "de-escalated at t = {t:e}");
        last_rank = alg.cost_rank();
        // At every threshold, the benign cell never needs a costlier
        // operator than the hostile cell.
        let (b, _) = reducer(t).choose(&benign);
        assert!(b.cost_rank() <= alg.cost_rank());
    }
    assert_eq!(reducer(0.0).choose(&hostile).0, Algorithm::PR);
}

/// §VI (conclusion): the three headline observations, in one test — shape
/// matters, conditioning matters, and per-threshold classification works.
#[test]
fn section_6_conclusions_hold() {
    // 1. Shape matters (balanced vs serial change ST's answer).
    let values = repro_core::gen::zero_sum_with_range(4_096, 32, 1);
    assert_ne!(
        reduce(&values, TreeShape::Balanced, Algorithm::Standard).to_bits(),
        reduce(&values, TreeShape::Serial, Algorithm::Standard).to_bits(),
    );
    // 2. Conditioning matters (k = 1 data reduces reproducibly even for ST
    //    at loose tolerances; k = inf does not).
    let benign = repro_core::gen::grid_cell(4_096, 1.0, 0, 2, 1e16);
    let perm = repro_core::tree::random_permutation(benign.len(), 3);
    let permuted = repro_core::tree::apply_permutation(&benign, &perm);
    let spread = (reduce(&benign, TreeShape::Balanced, Algorithm::Standard)
        - reduce(&permuted, TreeShape::Balanced, Algorithm::Standard))
    .abs();
    assert!(spread < 1e-12, "benign data barely varies: {spread:e}");
    // 3. Classification by cheapest acceptable algorithm is actionable:
    //    the verified reducer finds a cheaper-than-PR operator for the
    //    benign set and climbs higher for the hostile one.
    let v = repro_core::select::VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-10), 4);
    let easy = v.reduce(&benign).unwrap().algorithm;
    let hard = v.reduce(&values).unwrap().algorithm;
    assert!(easy.cost_rank() < hard.cost_rank());
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(f64::MIN_POSITIVE)
}
