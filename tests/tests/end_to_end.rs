//! End-to-end integration: generators → trees → operators → oracles →
//! selector, exercised together the way the bench binaries use them.

use repro_core::prelude::*;
use repro_core::stats::population_stddev;
use repro_core::tree::permute::PermutationStudy;
use repro_core::tree::{reduce, TreeShape};

/// The two independent exact oracles must agree bit-for-bit on every
/// generated workload family.
#[test]
fn oracles_agree_on_every_workload_family() {
    let workloads: Vec<Vec<f64>> = vec![
        repro_core::gen::uniform(5_000, -1000.0, 1000.0, 1),
        repro_core::gen::zero_sum_with_range(5_000, 32, 2),
        repro_core::gen::grid_cell(2_000, 1e9, 16, 3, 1e16),
        repro_core::gen::nbody::force_reduction(5_000, 0.01, 4).force_terms,
    ];
    for (i, w) in workloads.iter().enumerate() {
        let a = repro_core::fp::exact_sum(w);
        let b = repro_core::hp::sum_exact(w);
        assert_eq!(a.to_bits(), b.to_bits(), "workload {i}");
    }
}

/// The paper's Figure 7 orderings, end to end: across permuted balanced
/// trees, spread(ST) > spread(CP), and CP/PR sit at least six orders of
/// magnitude below ST; PR's spread is exactly zero.
#[test]
fn figure7_orderings_hold() {
    let values = repro_core::gen::zero_sum_with_range(8192, 32, 2015);
    let exact = repro_core::fp::exact_sum_acc(&values);
    let mut spreads = std::collections::HashMap::new();
    for alg in Algorithm::PAPER_SET {
        let mut errors = Vec::new();
        PermutationStudy::new(&values, 40, 7).for_each(|_, permuted| {
            let s = reduce(permuted, TreeShape::Balanced, alg);
            errors.push(repro_core::fp::abs_error_vs(&exact, s));
        });
        spreads.insert(alg.abbrev(), population_stddev(&errors));
    }
    let (st, k, cp, pr) = (spreads["ST"], spreads["K"], spreads["CP"], spreads["PR"]);
    assert!(st > 0.0, "ST must vary");
    assert!(k <= st * 2.0, "K should not be wildly worse than ST");
    assert!(cp < st / 1e6, "CP must sit far below ST: {cp:e} vs {st:e}");
    assert_eq!(pr, 0.0, "PR must be bitwise stable");
}

/// Unbalanced (serial) trees show at least as much ST variation as balanced
/// ones on hostile data — the balanced-vs-unbalanced contrast of Figure 7.
#[test]
fn serial_trees_vary_at_least_as_much_as_balanced_for_st() {
    let values = repro_core::gen::zero_sum_with_range(8192, 32, 77);
    let exact = repro_core::fp::exact_sum_acc(&values);
    let spread_for = |shape: TreeShape| {
        let mut errors = Vec::new();
        PermutationStudy::new(&values, 40, 13).for_each(|_, permuted| {
            errors.push(repro_core::fp::abs_error_vs(
                &exact,
                reduce(permuted, shape, Algorithm::Standard),
            ));
        });
        population_stddev(&errors)
    };
    let balanced = spread_for(TreeShape::Balanced);
    let serial = spread_for(TreeShape::Serial);
    assert!(
        serial >= balanced * 0.5,
        "serial {serial:e} unexpectedly below balanced {balanced:e}"
    );
}

/// The adaptive reducer's promise, verified empirically: whatever operator
/// it picks, the measured spread across reduction orders respects the
/// tolerance it was given.
#[test]
fn adaptive_choice_meets_its_tolerance_empirically() {
    for (dr, k) in [(0u32, 1.0f64), (16, 1e6), (32, f64::INFINITY)] {
        let values = repro_core::gen::grid_cell(4096, k, dr, 9, 1e16);
        for tol in [1e-8, 1e-12, 1e-15] {
            let reducer = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(tol));
            let (alg, _) = reducer.choose(&values);
            let exact = repro_core::fp::exact_sum_acc(&values);
            let mut errors = Vec::new();
            PermutationStudy::new(&values, 30, 3).for_each(|_, permuted| {
                errors.push(repro_core::fp::abs_error_vs(
                    &exact,
                    reduce(permuted, TreeShape::Balanced, alg),
                ));
            });
            let spread = population_stddev(&errors);
            assert!(
                spread <= tol.max(f64::MIN_POSITIVE) * 4.0,
                "cell (k={k:e}, dr={dr}), tol {tol:e}: chose {alg}, measured {spread:e}"
            );
        }
    }
}

/// Full pipeline through the message-passing simulator: a jittered
/// arrival-order reduction with the PR operator returns the same bits as a
/// sequential reduction on one node.
#[test]
fn mpisim_pr_matches_sequential_bitwise() {
    use repro_core::mpisim::{collectives, ReduceConfig, ReduceTopology, World};
    let values = repro_core::gen::zero_sum_with_range(30_000, 32, 5);
    let sequential = Algorithm::PR.sum(&values);
    let cfg = ReduceConfig {
        topology: ReduceTopology::FlatArrival,
        jitter_us: 200,
        jitter_seed: 31,
    };
    let out = World::run(12, |comm| {
        let per = values.len().div_ceil(comm.size());
        let lo = (comm.rank() * per).min(values.len());
        let hi = ((comm.rank() + 1) * per).min(values.len());
        collectives::reduce_sum(comm, &values[lo..hi], Algorithm::PR, 0, &cfg)
    });
    assert_eq!(out[0].unwrap().to_bits(), sequential.to_bits());
}

/// Threaded executor + selector together: bitwise tolerance routes to PR,
/// and the result is stable across repeated arrival-order runs.
#[test]
fn executor_respects_bitwise_tolerance() {
    use repro_core::tree::executor::{parallel_reduce, MergeOrder};
    let values = repro_core::gen::nbody::force_reduction(20_000, 0.0, 6).force_terms;
    let reducer = AdaptiveReducer::heuristic(Tolerance::Bitwise);
    let (alg, _) = reducer.choose(&values);
    assert!(alg.is_reproducible());
    let reference = alg.sum(&values);
    for _ in 0..5 {
        let r = parallel_reduce(&values, 8, || alg.new_accumulator(), MergeOrder::Arrival);
        assert_eq!(r.to_bits(), reference.to_bits());
    }
}

/// Cancellation instrumentation composes with the generators: the
/// zero-sum workload triggers severe cancellations, the all-positive one
/// does not.
#[test]
fn cancellation_census_distinguishes_workloads() {
    use repro_core::cancel::instrumented_sum;
    let hostile = repro_core::gen::zero_sum_with_range(2_000, 16, 8);
    let benign = repro_core::gen::grid_cell(2_000, 1.0, 0, 8, 1e16);
    let hostile_report = instrumented_sum(&hostile, 1);
    let benign_report = instrumented_sum(&benign, 1);
    assert!(hostile_report.total() > benign_report.total());
    assert_eq!(
        benign_report.counts[3], 0,
        "no 8-digit losses in benign data"
    );
}

/// The error-bound machinery brackets reality: measured errors never exceed
/// the analytical bound, across workloads and algorithms.
#[test]
fn measured_errors_stay_under_analytic_bounds() {
    for seed in 0..5u64 {
        let values = repro_core::gen::uniform(10_000, -1000.0, 1000.0, seed);
        let n = values.len();
        let abs_sum = repro_core::fp::exact_abs_sum(&values);
        let bound = repro_core::fp::higham_bound(n, abs_sum);
        for alg in Algorithm::PAPER_SET {
            let err = repro_core::fp::abs_error(alg.sum(&values), &values);
            assert!(err <= bound, "{alg} err {err:e} > bound {bound:e}");
        }
    }
}
