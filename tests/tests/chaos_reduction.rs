//! Chaos harness: a seeded fault-injection matrix over
//! {topology × operator × fault kind}, asserting the three properties the
//! fault plane promises:
//!
//! 1. **liveness** — no run deadlocks: every rank either completes or is
//!    reaped with a `FaultError`;
//! 2. **survivor-set bitwise reproducibility** — for reproducible
//!    operators (PR/binned, prerounded, superaccumulator) the healed
//!    distributed result is bit-identical to a sequential reference over
//!    the survivor ranks' inputs;
//! 3. **bounded degradation** — even a non-reproducible operator (ST)
//!    stays within the Higham error bound of the survivor inputs' exact
//!    sum.
//!
//! Every plan is seeded, so any failure here is replayable verbatim:
//! `repro-reduce chaos --seed <S> ...` with the printed knobs.

use repro_core::fp::Superaccumulator;
use repro_core::mpisim::{
    ft_reduce_accumulator, ft_reduce_sum, FaultError, FaultPlan, ReduceConfig, ReduceTopology,
    World,
};
use repro_core::prelude::*;
use repro_core::sum::prerounded::{PreroundPlan, PreroundedSum};
use std::time::Duration;

const RANKS: usize = 6;
const N: usize = 480;

const TOPOLOGIES: [ReduceTopology; 3] = [
    ReduceTopology::Binomial,
    ReduceTopology::FlatArrival,
    ReduceTopology::Chain,
];

fn data(seed: u64) -> Vec<f64> {
    repro_core::gen::zero_sum_with_range(N, 12, seed)
}

fn chunk(values: &[f64], rank: usize) -> &[f64] {
    let per = values.len().div_ceil(RANKS);
    &values[(rank * per).min(values.len())..((rank + 1) * per).min(values.len())]
}

fn cfg(topology: ReduceTopology) -> ReduceConfig {
    ReduceConfig {
        topology,
        jitter_us: 0,
        jitter_seed: 0,
    }
}

/// Tight timeouts keep the whole matrix inside the CI budget.
fn fast(plan: FaultPlan) -> FaultPlan {
    plan.with_timeouts(Duration::from_millis(10), 2)
}

/// Transient message faults (drops, delays, duplicates, reorders, and all
/// four together) never change membership: every rank completes and the PR
/// result is bit-identical to a sequential reference over the FULL data,
/// on every topology.
#[test]
fn transient_faults_preserve_full_set_bitwise_reproducibility() {
    let values = data(101);
    let mut reference = BinnedSum::new(3);
    reference.add_slice(&values);
    let expected = reference.finalize().to_bits();

    let plans: Vec<(&str, FaultPlan)> = vec![
        ("drop", FaultPlan::new(9001).with_drop(0.2)),
        ("delay", FaultPlan::new(9002).with_delay(0.4, 800)),
        ("dup", FaultPlan::new(9003).with_duplicate(0.3)),
        ("reorder", FaultPlan::new(9004).with_reorder(0.3)),
        (
            "mixed",
            FaultPlan::new(9005)
                .with_drop(0.1)
                .with_delay(0.2, 800)
                .with_duplicate(0.1)
                .with_reorder(0.2),
        ),
    ];
    for (kind, plan) in plans {
        let mut retries_across_topologies = 0;
        for topology in TOPOLOGIES {
            let c = cfg(topology);
            let report = World::run_report(RANKS, &fast(plan.clone()), |comm| {
                ft_reduce_sum(comm, chunk(&values, comm.rank()), Algorithm::PR, 0, &c)
            })
            .unwrap();
            assert_eq!(
                report.completed,
                RANKS,
                "{kind}/{topology:?}: {}",
                report.summary()
            );
            let out = report.results[0].as_ref().unwrap();
            assert_eq!(out.survivors, (0..RANKS).collect::<Vec<_>>());
            assert_eq!(
                out.value.unwrap().to_bits(),
                expected,
                "{kind}/{topology:?} drifted from the sequential reference"
            );
            retries_across_topologies += report.retries;
        }
        if kind == "drop" {
            assert!(
                retries_across_topologies > 0,
                "drops must exercise the retry path somewhere in the matrix"
            );
        }
    }
}

/// Kill matrix: every reproducible operator × every topology heals around a
/// dead rank and lands bit-identical to a sequential reference over the
/// survivor set's inputs.
#[test]
fn killed_ranks_heal_to_survivor_set_bitwise_result() {
    let values = data(202);
    let victim = 4;
    let preround = PreroundPlan::for_data(&values);

    // (name, local accumulator for a rank, sequential survivor reference).
    type Build = Box<dyn Fn(&[f64]) -> f64 + Sync>;
    let operators: Vec<(&str, Build)> = vec![
        (
            "binned",
            Box::new(|vals: &[f64]| {
                let mut a = BinnedSum::new(3);
                a.add_slice(vals);
                a.finalize()
            }),
        ),
        ("prerounded", {
            let preround = preround.clone();
            Box::new(move |vals: &[f64]| {
                let mut a = PreroundedSum::new(&preround);
                a.add_slice(vals);
                a.finalize()
            })
        }),
        (
            "superacc",
            Box::new(|vals: &[f64]| {
                let mut a = Superaccumulator::new();
                Accumulator::add_slice(&mut a, vals);
                Accumulator::finalize(&a)
            }),
        ),
    ];

    let survivors: Vec<usize> = (0..RANKS).filter(|&r| r != victim).collect();
    let survivor_values: Vec<f64> = survivors
        .iter()
        .flat_map(|&r| chunk(&values, r).iter().copied())
        .collect();

    for (name, seq) in &operators {
        let expected = seq(&survivor_values).to_bits();
        for topology in TOPOLOGIES {
            let c = cfg(topology);
            let plan = fast(FaultPlan::new(303).with_kill(victim, 1));
            let report = match *name {
                "binned" => World::run_report(RANKS, &plan, |comm| {
                    let mut a = BinnedSum::new(3);
                    a.add_slice(chunk(&values, comm.rank()));
                    ft_reduce_accumulator(comm, a, 0, &c)
                        .map(|o| (o.value.map(|a| a.finalize()), o.survivors, o.rounds))
                }),
                "prerounded" => World::run_report(RANKS, &plan, |comm| {
                    let mut a = PreroundedSum::new(&preround);
                    a.add_slice(chunk(&values, comm.rank()));
                    ft_reduce_accumulator(comm, a, 0, &c)
                        .map(|o| (o.value.map(|a| a.finalize()), o.survivors, o.rounds))
                }),
                _ => World::run_report(RANKS, &plan, |comm| {
                    let mut a = Superaccumulator::new();
                    Accumulator::add_slice(&mut a, chunk(&values, comm.rank()));
                    ft_reduce_accumulator(comm, a, 0, &c).map(|o| {
                        (
                            o.value.map(|a| Accumulator::finalize(&a)),
                            o.survivors,
                            o.rounds,
                        )
                    })
                }),
            }
            .unwrap();

            assert!(
                matches!(report.results[victim], Err(FaultError::Killed { .. })),
                "{name}/{topology:?}: victim should be reaped as killed"
            );
            let (value, got_survivors, _rounds) = report.results[0].as_ref().unwrap();
            assert_eq!(
                *got_survivors, survivors,
                "{name}/{topology:?}: wrong survivor set"
            );
            assert_eq!(
                value.unwrap().to_bits(),
                expected,
                "{name}/{topology:?}: healed result drifted from survivor reference"
            );
        }
    }
}

/// A rank that dies mid-collective (after the membership snapshot) forces a
/// failed round: the root re-plans, heals ≥ 1 time, and the final result is
/// still bitwise the survivor reference.
#[test]
fn mid_collective_death_forces_heal_rounds_and_stays_bitwise() {
    let values = data(404);
    // Victim pings (op 1) and receives membership (op 2), then dies on a
    // later op — so the first reduce round includes it and must fail.
    let victim = 3;
    let c = cfg(ReduceTopology::Binomial);
    let plan = fast(FaultPlan::new(505).with_kill(victim, 3));
    let report = World::run_report(RANKS, &plan, |comm| {
        ft_reduce_sum(comm, chunk(&values, comm.rank()), Algorithm::PR, 0, &c)
    })
    .unwrap();

    let out = report.results[0].as_ref().unwrap();
    assert!(
        out.rounds >= 2,
        "expected a failed round, got {}",
        out.rounds
    );
    assert!(report.heals >= 1, "{}", report.summary());
    assert!(!out.survivors.contains(&victim));
    let mut reference = BinnedSum::new(3);
    for &r in &out.survivors {
        reference.add_slice(chunk(&values, r));
    }
    assert_eq!(out.value.unwrap().to_bits(), reference.finalize().to_bits());
}

/// Even the non-reproducible standard operator degrades gracefully: with a
/// killed rank, the healed ST result stays within the Higham bound of the
/// exact sum over the survivor inputs.
#[test]
fn standard_sum_under_kills_stays_within_higham_bound() {
    let values = data(606);
    let victim = 2;
    let survivor_values: Vec<f64> = (0..RANKS)
        .filter(|&r| r != victim)
        .flat_map(|r| chunk(&values, r).iter().copied())
        .collect();
    let exact = repro_core::fp::exact_sum(&survivor_values);
    let abs_sum: f64 = survivor_values.iter().map(|v| v.abs()).sum();
    let bound = repro_core::fp::bounds::higham_bound(survivor_values.len(), abs_sum);

    let c = cfg(ReduceTopology::Binomial);
    let plan = fast(FaultPlan::new(707).with_kill(victim, 1));
    let report = World::run_report(RANKS, &plan, |comm| {
        ft_reduce_sum(
            comm,
            chunk(&values, comm.rank()),
            Algorithm::Standard,
            0,
            &c,
        )
    })
    .unwrap();
    let out = report.results[0].as_ref().unwrap();
    let got = out.value.unwrap();
    assert!(
        (got - exact).abs() <= bound,
        "|{got:e} - {exact:e}| exceeds Higham bound {bound:e}"
    );
}

/// The whole fault plane is deterministic: the same seed replays to the
/// same survivor set and the same bits, which is what makes a chaos failure
/// report actionable.
#[test]
fn same_seed_replays_to_identical_survivors_and_bits() {
    let values = data(808);
    let c = cfg(ReduceTopology::Binomial);
    let run = || {
        let plan = fast(
            FaultPlan::new(909)
                .with_drop(0.1)
                .with_reorder(0.2)
                .with_kill(5, 2),
        );
        let report = World::run_report(RANKS, &plan, |comm| {
            ft_reduce_sum(comm, chunk(&values, comm.rank()), Algorithm::PR, 0, &c)
        })
        .unwrap();
        let out = report.results[0].as_ref().unwrap();
        (out.survivors.clone(), out.value.unwrap().to_bits())
    };
    assert_eq!(run(), run());
}
