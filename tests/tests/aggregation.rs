//! Property tests for the sharded aggregation engine (`repro-agg`),
//! driven through the `repro-core` facade:
//!
//! 1. Any sharding, arrival permutation, and merge-tree shape finalizes
//!    to the exact bits of a serial single-shard run — for both shard
//!    operators (pre-rounded binned and the exact superaccumulator).
//! 2. The `repro-agg-state-v1` wire format round-trips shard states
//!    bit-exactly, including subnormals, signed zeros, and non-finites,
//!    and merging a shipped snapshot into a differently-sharded peer
//!    changes nothing about the finalized bits.

use proptest::prelude::*;
use repro_core::agg::{merge_tree, AggConfig, AggEngine, OperatorKind, ShardState};
use repro_core::fp::rng::DetRng;
use repro_core::sum::Accumulator;

/// The edge of the f64 lattice: signed zeros, subnormals (including the
/// smallest), huge magnitudes that overflow when summed, and infinities.
fn specials() -> Vec<f64> {
    vec![
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        f64::from_bits(1), // smallest subnormal
        -f64::from_bits(1),
        1e308,
        -1e308,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ]
}

fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => -1e16f64..1e16f64,
        2 => (0usize..specials().len()).prop_map(|i| specials()[i]),
        // Exact powers of two across most of the binade range.
        2 => (-900i32..=900).prop_map(|e| f64::from_bits(((1023 + e) as u64) << 52)),
    ]
}

fn both_ops(fold: usize) -> [OperatorKind; 2] {
    [OperatorKind::Binned { fold }, OperatorKind::Exact]
}

/// Serial reference: one state, original order.
fn serial_bits(op: OperatorKind, values: &[f64]) -> u64 {
    let mut state = op.new_state();
    state.add_slice(values);
    state.finalize().to_bits()
}

/// Shard `values` by round-robin, deposit each shard's share in a
/// shuffled arrival order, then collapse with a seeded *random* merge
/// tree (repeatedly merge two random states until one remains).
fn sharded_bits(op: OperatorKind, values: &[f64], shards: usize, seed: u64) -> u64 {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut per_shard: Vec<Vec<f64>> = vec![Vec::new(); shards];
    for (i, &v) in values.iter().enumerate() {
        per_shard[i % shards].push(v);
    }
    let mut states: Vec<ShardState> = per_shard
        .into_iter()
        .map(|mut share| {
            rng.shuffle(&mut share);
            let mut state = op.new_state();
            for v in share {
                state.add(v);
            }
            state
        })
        .collect();
    while states.len() > 1 {
        let a = rng.random_range(0..states.len());
        let donor = states.swap_remove(a);
        let b = rng.random_range(0..states.len());
        states[b].merge(&donor);
    }
    states.pop().unwrap().finalize().to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: shard count x arrival permutation x merge-tree
    /// shape never changes a finalized bit, for either shard operator.
    #[test]
    fn any_sharding_permutation_and_tree_matches_serial_bitwise(
        values in prop::collection::vec(value_strategy(), 1..260),
        shards in 1usize..17,
        fold in 1usize..5,
        seed in 0u64..10_000,
    ) {
        for op in both_ops(fold) {
            let serial = serial_bits(op, &values);
            let sharded = sharded_bits(op, &values, shards, seed);
            prop_assert_eq!(
                sharded, serial,
                "op={} shards={} seed={}", op.label(), shards, seed
            );
            // The engine's own stride-doubling tree agrees too.
            let mut states: Vec<ShardState> = Vec::new();
            for chunk in values.chunks(values.len().div_ceil(shards)) {
                let mut s = op.new_state();
                s.add_slice(chunk);
                states.push(s);
            }
            let tree = merge_tree(states).unwrap().finalize().to_bits();
            prop_assert_eq!(tree, serial, "merge_tree op={}", op.label());
        }
    }

    /// Checkpoint text round-trips every shard state bit-exactly, and a
    /// restored state keeps accumulating as if never serialized.
    #[test]
    fn shard_state_checkpoint_roundtrip_is_bitwise_transparent(
        head in prop::collection::vec(value_strategy(), 1..120),
        tail in prop::collection::vec(value_strategy(), 0..120),
        fold in 1usize..5,
    ) {
        for op in both_ops(fold) {
            let mut whole = op.new_state();
            whole.add_slice(&head);
            let text = whole.checkpoint();
            let mut restored = ShardState::restore(op, &text)
                .unwrap_or_else(|| panic!("own checkpoint restores: {text}"));
            prop_assert_eq!(restored.finalize().to_bits(), whole.finalize().to_bits());
            whole.add_slice(&tail);
            restored.add_slice(&tail);
            prop_assert_eq!(
                restored.finalize().to_bits(),
                whole.finalize().to_bits(),
                "resume after restore, op={}", op.label()
            );
        }
    }

    /// Engine wire format: serialize -> restore preserves every
    /// aggregate's bits, and merging the shipped snapshot into an empty
    /// peer with a *different* shard count reproduces them too.
    #[test]
    fn engine_snapshot_roundtrips_and_merges_across_shard_counts(
        values in prop::collection::vec(value_strategy(), 1..200),
        shards in 1usize..9,
        peer_shards in 1usize..9,
        clients in 1u64..40,
    ) {
        let engine = AggEngine::new(AggConfig { shards, ..AggConfig::default() });
        let agg = engine.declare("p", &values);
        for (i, chunk) in values.chunks(16).enumerate() {
            agg.ingest(i as u64 % clients, chunk);
        }
        let want = agg.finalize().to_bits();
        let shipped = engine.serialize();

        let restored = AggEngine::restore(&shipped, AggConfig::default()).unwrap();
        prop_assert_eq!(restored.get("p").unwrap().finalize().to_bits(), want);
        prop_assert_eq!(restored.serialize(), shipped, "serialize is stable");

        let peer = AggEngine::new(AggConfig { shards: peer_shards, ..AggConfig::default() });
        peer.merge_serialized(&shipped).unwrap();
        prop_assert_eq!(
            peer.get("p").unwrap().finalize().to_bits(),
            want,
            "merge into {peer_shards}-shard peer"
        );
    }
}
