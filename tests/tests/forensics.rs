//! Divergence-forensics guarantees that span crates.
//!
//! Two properties of the PR 4 telemetry + `trace diff` pipeline:
//!
//! 1. **Worker-count invariance.** Node telemetry derives from the
//!    reduction *plan*, never from scheduling, so two traces of the same
//!    seed and plan taken under different worker counts align with zero
//!    divergent nodes (they are in fact byte-identical).
//! 2. **Perturbation localization.** A single one-ulp perturbation at a
//!    known input index diverges exactly the nodes whose intervals contain
//!    that index — the leaf's root-to-origin subtree path — and the diff's
//!    origin names that leaf's interval.

use proptest::prelude::*;
use repro_core::obs::forensics::{collect_nodes, diff_traces};
use repro_core::obs::{render_jsonl, TelemetryConfig, Trace};
use repro_core::prelude::*;

/// One fully-sampled telemetry trace of `values` reduced under `plan` on a
/// private `workers`-thread pool.
fn telemetry_trace(values: &[f64], plan: &ReductionPlan, workers: usize) -> String {
    let (trace, sink) = Trace::to_memory();
    let mut scope = trace.scope("runtime");
    let rt = Runtime::new(workers);
    rt.reduce_telemetry(
        values,
        plan,
        || BinnedSum::new(3),
        &mut scope,
        TelemetryConfig::full(),
        None,
    );
    render_jsonl(&sink.drain())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same plan, different worker counts: the diff aligns every
    /// node and finds zero divergences.
    #[test]
    fn same_plan_traces_diff_clean_across_worker_counts(
        seed in 0u64..1_000,
        dr in 0u32..24,
        wa in 1usize..8,
        wb in 1usize..8,
    ) {
        let values = repro_core::gen::zero_sum_with_range(1_024, dr, seed);
        let plan = ReductionPlan::with_chunk_len(values.len(), 64);
        let a = telemetry_trace(&values, &plan, wa);
        let b = telemetry_trace(&values, &plan, wb);
        // Stronger than a clean diff: the streams are byte-identical.
        prop_assert_eq!(&a, &b);
        let report = diff_traces(&a, &b).unwrap();
        prop_assert!(report.is_clean(), "{}", report.render());
        let nodes = collect_nodes(&a).unwrap();
        prop_assert_eq!(report.aligned, nodes.len());
        // 16 leaves and 15 merges over a 1024/64 plan.
        prop_assert_eq!(nodes.len(), 31);
    }

    /// A one-ulp perturbation of the dominant element of chunk `p` diverges
    /// exactly the nodes on that leaf's subtree path, and the origin walk
    /// names the leaf and its interval.
    #[test]
    fn one_ulp_perturbation_is_localized_to_the_leaf_subtree(
        chunks in 2usize..7,
        p_seed in any::<u64>(),
    ) {
        const CHUNK: usize = 8;
        let p = (p_seed % chunks as u64) as usize;
        let idx = p * CHUNK;
        // The perturbed element dominates the whole input (1.0 against
        // ~2^-70 noise), so the one-ulp nudge survives rounding at the
        // leaf and at every ancestor merge.
        let mut values: Vec<f64> = (0..chunks * CHUNK)
            .map(|i| ((i % 7) + 1) as f64 * 2f64.powi(-70))
            .collect();
        values[idx] = 1.0;
        let mut perturbed = values.clone();
        perturbed[idx] = f64::from_bits(perturbed[idx].to_bits() + 1);

        let plan = ReductionPlan::with_chunk_len(values.len(), CHUNK);
        let a = telemetry_trace(&values, &plan, 4);
        let b = telemetry_trace(&perturbed, &plan, 4);
        let report = diff_traces(&a, &b).unwrap();

        prop_assert!(!report.is_clean());
        prop_assert!(report.only_a.is_empty() && report.only_b.is_empty());
        let origin = report.origin.clone().expect("origin");
        prop_assert_eq!(&origin.node, &format!("c{p}"));
        prop_assert_eq!(origin.start, idx as u64);
        prop_assert_eq!(origin.len, CHUNK as u64);

        // Exactly the nodes whose interval contains the perturbed index
        // diverge — each by exactly one ulp — and the path covers them all,
        // widest first, origin last.
        let nodes = collect_nodes(&a).unwrap();
        let containing = nodes
            .iter()
            .filter(|n| n.start <= idx as u64 && (idx as u64) < n.start + n.len)
            .count();
        prop_assert_eq!(report.divergent.len(), containing);
        for d in &report.divergent {
            prop_assert!(d.start <= idx as u64 && (idx as u64) < d.start + d.len);
            prop_assert_eq!(d.ulps, 1);
        }
        prop_assert_eq!(report.path.len(), containing);
        prop_assert!(report.path.windows(2).all(|w| w[0].len >= w[1].len));
        prop_assert_eq!(&report.path.last().unwrap().node, &format!("c{p}"));

        let rendered = report.render();
        prop_assert!(
            rendered.contains(&format!(
                "origin: node runtime/c{p} leaf interval [{}, {})",
                idx,
                idx + CHUNK
            )),
            "{}",
            rendered
        );
    }
}
