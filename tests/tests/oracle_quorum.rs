//! Oracle quorum: the workspace carries four independent ways to compute a
//! sum exactly or faithfully — the superaccumulator (fixed point), BigFloat
//! (arbitrary-precision softfloat), expansion distillation (Shewchuk), and
//! AccSum/sorted-DD (fixed-order faithful algorithms). They share no
//! arithmetic code. This test makes them vote, across every workload family
//! and many seeds: the three exact methods must agree **bit for bit**, the
//! faithful ones must land within one ulp.
//!
//! An implementation bug in any single oracle loses the vote immediately;
//! an agreement across all of them on thousands of adversarial inputs is
//! about as strong as software-only evidence gets.

use repro_core::prelude::*;
use repro_core::sum::{accsum, sorted_sum, DistillSum};

fn workloads(seed: u64) -> Vec<(String, Vec<f64>)> {
    vec![
        (
            "uniform wide".into(),
            repro_core::gen::uniform(2_000, -1e6, 1e6, seed),
        ),
        (
            "zero-sum dr=32".into(),
            repro_core::gen::zero_sum_with_range(2_000, 32, seed),
        ),
        (
            "grid k=1e9 dr=16".into(),
            repro_core::gen::grid_cell(1_000, 1e9, 16, seed, 1e16),
        ),
        (
            "nbody near-symmetric".into(),
            repro_core::gen::nbody::force_reduction(2_000, 1e-6, seed).force_terms,
        ),
        (
            "clustered".into(),
            repro_core::gen::clustered::clustered(&repro_core::gen::clustered::ClusteredSpec {
                seed,
                ..Default::default()
            })
            .0,
        ),
    ]
}

#[test]
fn exact_oracles_agree_bitwise_everywhere() {
    for seed in 0..8u64 {
        for (name, values) in workloads(seed) {
            let superacc = repro_core::fp::exact_sum(&values);
            let bigfloat = repro_core::hp::sum_exact(&values);
            let distill = DistillSum::sum_slice(&values);
            assert_eq!(
                superacc.to_bits(),
                bigfloat.to_bits(),
                "superacc vs BigFloat on {name} (seed {seed})"
            );
            assert_eq!(
                superacc.to_bits(),
                distill.to_bits(),
                "superacc vs distillation on {name} (seed {seed})"
            );
        }
    }
}

#[test]
fn faithful_oracles_land_within_one_ulp() {
    for seed in 0..8u64 {
        for (name, values) in workloads(seed) {
            let exact = repro_core::fp::exact_sum(&values);
            let tol = repro_core::fp::ulp::ulp(if exact == 0.0 {
                f64::MIN_POSITIVE
            } else {
                exact
            })
            .abs();
            for (label, got) in [
                ("accsum", accsum(&values)),
                ("sorted+DD", sorted_sum(&values)),
            ] {
                assert!(
                    (got - exact).abs() <= tol,
                    "{label} off by {:e} (> ulp {tol:e}) on {name} (seed {seed})",
                    (got - exact).abs()
                );
            }
        }
    }
}

#[test]
fn quorum_holds_under_permutation_and_merge() {
    // The exact oracles must agree not only on slice sums but through their
    // mergeable paths.
    for seed in 0..4u64 {
        let values = repro_core::gen::zero_sum_with_range(3_000, 28, seed);
        let (left, right) = values.split_at(1_234);
        // Superaccumulator merge path.
        let mut sa = repro_core::fp::exact_sum_acc(left);
        sa.merge(&repro_core::fp::exact_sum_acc(right));
        // Distillation merge path.
        let mut da = DistillSum::new();
        da.add_slice(left);
        let mut db = DistillSum::new();
        db.add_slice(right);
        da.merge(&db);
        let whole = repro_core::fp::exact_sum(&values);
        assert_eq!(
            sa.to_f64().to_bits(),
            whole.to_bits(),
            "superacc merge (seed {seed})"
        );
        assert_eq!(
            da.finalize().to_bits(),
            whole.to_bits(),
            "distill merge (seed {seed})"
        );
    }
}
