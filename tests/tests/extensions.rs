//! Integration tests for the extension layers: dot products, intervals,
//! verified/subtree selection, topology, the N-body application, the
//! fixed-order algorithms, and the CLI-facing data paths — all exercised
//! through the `repro-core` facade the way a downstream user would.

use repro_core::prelude::*;
use repro_core::select::{SubtreeAdaptive, VerifiedReducer};

/// Reproducible dot products compose with the generators and the oracle.
#[test]
fn reproducible_dot_products_end_to_end() {
    use repro_core::sum::{dot2, dot_exact, dot_reproducible, dot_standard};
    let x = repro_core::gen::uniform(5_000, -100.0, 100.0, 1);
    let y = repro_core::gen::uniform(5_000, -100.0, 100.0, 2);
    let exact = dot_exact(&x, &y);
    // Accuracy ladder holds.
    let e_std = (dot_standard(&x, &y) - exact).abs();
    let e_d2 = (dot2(&x, &y) - exact).abs();
    let e_pr = (dot_reproducible(&x, &y, 3) - exact).abs();
    assert!(e_d2 <= e_std);
    assert!(e_pr <= e_std.max(1e-9));
    // Reproducibility: pair-permutation invariance.
    let perm = repro_core::tree::random_permutation(x.len(), 3);
    let px: Vec<f64> = perm.iter().map(|&i| x[i as usize]).collect();
    let py: Vec<f64> = perm.iter().map(|&i| y[i as usize]).collect();
    assert_eq!(
        dot_reproducible(&px, &py, 3).to_bits(),
        dot_reproducible(&x, &y, 3).to_bits()
    );
}

/// Interval enclosures stay sound on generated hostile workloads while the
/// selector's chosen operator lands inside them.
#[test]
fn interval_enclosures_bracket_adaptive_results() {
    use repro_core::sum::IntervalSum;
    for (k, dr) in [(1.0, 0u32), (1e8, 16), (f64::INFINITY, 32)] {
        let values = repro_core::gen::grid_cell(3_000, k, dr, 5, 1e16);
        let enclosure = IntervalSum::enclosure_of(&values);
        let exact = repro_core::fp::exact_sum(&values);
        assert!(enclosure.contains(exact), "cell ({k:e},{dr})");
        let adaptive = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-9));
        let out = adaptive.reduce(&values);
        assert!(
            enclosure.contains(out.sum),
            "adaptive result {:e} outside enclosure {enclosure}",
            out.sum
        );
    }
}

/// The verified reducer and the model-driven selector agree on the easy
/// calls and the verified one never accepts a result violating its
/// tolerance (checked against the exact oracle).
#[test]
fn verified_and_heuristic_selection_are_consistent() {
    let benign: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
    let verified = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-6), 1)
        .reduce(&benign)
        .unwrap();
    let (heuristic_choice, _) =
        AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-6)).choose(&benign);
    assert_eq!(verified.algorithm, heuristic_choice);
    assert_eq!(verified.sum, repro_core::fp::exact_sum(&benign));

    let hostile = repro_core::gen::zero_sum_with_range(10_000, 32, 9);
    let out = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-10), 2)
        .reduce(&hostile)
        .unwrap();
    let err = repro_core::fp::abs_error(out.sum, &hostile);
    assert!(err <= 1e-9, "verified result error {err:e}");
}

/// Subtree adaptivity over the topology-aware tree machinery: the chunk
/// boundaries and machine enclosures compose without losing the budget.
#[test]
fn subtree_selection_composes_with_generators() {
    let mut values = Vec::new();
    for block in 0..8 {
        if block % 4 == 1 {
            values.extend(repro_core::gen::zero_sum_with_range(512, 24, block));
        } else {
            values.extend(repro_core::gen::grid_cell(512, 1.0, 2, block, 1e16));
        }
    }
    let reducer = SubtreeAdaptive::new(
        repro_core::select::HeuristicSelector::default(),
        Tolerance::AbsoluteSpread(1e-9),
        512,
    );
    let outcome = reducer.reduce(&values);
    assert!(repro_core::fp::abs_error(outcome.sum, &values) <= 1e-9);
    let hist = outcome.choice_histogram();
    assert!(hist.len() >= 2, "mixed data should mix operators: {hist:?}");
}

/// The N-body application, driven through the facade: PR trajectories are
/// machine-reproducible; the adaptive simulation respects its tolerance
/// budget against the exact oracle at every sampled force.
#[test]
fn nbody_application_reproducibility() {
    use repro_core::md::{sim::divergence, SimConfig, Simulation};
    let cfg = SimConfig {
        algorithm: Algorithm::PR,
        shuffle_seed: Some(11),
        ..SimConfig::default()
    };
    let cfg_b = SimConfig {
        shuffle_seed: Some(22),
        ..cfg
    };
    let mut a = Simulation::disk(20, 77, cfg);
    let mut b = Simulation::disk(20, 77, cfg_b);
    a.run(150);
    b.run(150);
    assert!(divergence(&a, &b).bitwise_identical);
    assert_eq!(a.state_fingerprint(), b.state_fingerprint());
}

/// Fixed-order algorithms agree with the oracle on generated data (and so
/// do the mergeable exact operators), tying §III-A to the test suite.
#[test]
fn fixed_order_algorithms_match_oracles() {
    use repro_core::sum::{accsum, sorted_sum, DistillSum};
    for seed in 0..3u64 {
        let values = repro_core::gen::zero_sum_with_range(2_000, 24, seed);
        let exact = repro_core::fp::exact_sum(&values);
        let ulp = repro_core::fp::ulp::ulp(exact.abs().max(f64::MIN_POSITIVE));
        assert!((accsum(&values) - exact).abs() <= ulp, "accsum seed {seed}");
        assert!(
            (sorted_sum(&values) - exact).abs() <= ulp,
            "sorted seed {seed}"
        );
        assert_eq!(
            DistillSum::sum_slice(&values).to_bits(),
            exact.to_bits(),
            "distill seed {seed}"
        );
    }
}

/// The CLI's calibrate output feeds straight back into a
/// `CalibratedSelector` — the persistence loop a user would actually run.
#[test]
fn cli_calibration_round_trips_into_a_selector() {
    let args: Vec<String> = ["calibrate", "--n", "256", "--perms", "6", "--seed", "3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let csv = repro_cli::run(&args, &|_| Err(repro_cli::CliError::new("no fs"))).unwrap();
    let table = repro_core::select::CalibrationTable::from_csv(&csv).expect("parse");
    let selector = repro_core::select::selector::CalibratedSelector::new(table);
    use repro_core::select::Selector;
    let benign: Vec<f64> = (1..=256).map(|i| i as f64).collect();
    let choice = selector.choose(
        &repro_core::select::profile(&benign),
        Tolerance::AbsoluteSpread(1.0),
    );
    assert_eq!(choice, Algorithm::Standard);
    let hostile = repro_core::gen::zero_sum_with_range(256, 16, 1);
    let choice = selector.choose(
        &repro_core::select::profile(&hostile),
        Tolerance::AbsoluteSpread(0.0),
    );
    assert_eq!(choice, Algorithm::PR);
}

/// Analytic series with closed-form limits: the reduction operators are
/// judged against *mathematics*, not just against another float
/// computation — rounding error and truncation error separate cleanly.
#[test]
fn analytic_series_judge_operators_against_closed_forms() {
    use repro_core::gen::series;
    // Telescoping zero: the exact sum is 0, so the computed value IS the
    // rounding error. PR reproduces bitwise across permutations; ST does
    // not have to (and its error dwarfs CP's on this 16-decade spread).
    let v = series::telescoping_zero(20_000, 42);
    assert_eq!(repro_core::fp::exact_sum(&v), 0.0);
    let pr = Algorithm::PR.sum(&v);
    let perm = repro_core::tree::random_permutation(v.len(), 7);
    let pv: Vec<f64> = perm.iter().map(|&i| v[i as usize]).collect();
    assert_eq!(pr.to_bits(), Algorithm::PR.sum(&pv).to_bits());
    assert!(Algorithm::Composite.sum(&v).abs() <= Algorithm::Standard.sum(&v).abs());

    // Leibniz π: every operator's partial sum must land inside the
    // analytic alternating-series bracket (rounding ≪ truncation here).
    let n = 100_000;
    let terms = series::leibniz_pi(n);
    let (lo, hi) = series::leibniz_pi_bracket(n);
    for alg in [Algorithm::Standard, Algorithm::Kahan, Algorithm::PR] {
        let s = alg.sum(&terms);
        assert!(s > lo && s < hi, "{alg}: {s} outside ({lo}, {hi})");
    }

    // Basel in descending order: the fp-exact sum sits below π²/6 by less
    // than the analytic remainder 1/n, and PR matches the exact sum of the
    // stored terms to the last bit.
    let terms = series::basel(500_000);
    let exact = repro_core::fp::exact_sum(&terms);
    let limit = series::basel_limit();
    assert!(exact < limit && limit - exact < 1.0 / 500_000.0 + 1e-9);
    assert_eq!(Algorithm::PR.sum(&terms).to_bits(), exact.to_bits());
}

/// Online statistics match batch statistics on experiment-shaped streams
/// and merge correctly across chunks — the streaming path long experiments
/// use.
#[test]
fn online_stats_agree_with_batch_on_error_streams() {
    use repro_core::stats::{population_stddev, OnlineStats};
    use repro_core::tree::permute::PermutationStudy;
    use repro_core::tree::{reduce, TreeShape};
    let values = repro_core::gen::zero_sum_with_range(2_048, 24, 3);
    let exact = repro_core::fp::exact_sum_acc(&values);
    let mut batch = Vec::new();
    let mut online = OnlineStats::new();
    PermutationStudy::new(&values, 30, 5).for_each(|_, permuted| {
        let e = repro_core::fp::abs_error_vs(
            &exact,
            reduce(permuted, TreeShape::Balanced, Algorithm::Standard),
        );
        batch.push(e);
        online.push(e);
    });
    assert_eq!(online.count(), 30);
    let diff = (online.population_stddev() - population_stddev(&batch)).abs();
    assert!(diff <= 1e-12 * (1.0 + online.population_stddev()));
}
