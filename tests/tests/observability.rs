//! Cross-crate observability guarantees.
//!
//! Two contracts from PR 3 live here because they span crates:
//!
//! 1. **Profile merging is order-free in bits.** `DataProfile::merge`
//!    carries the binned-accumulator residues, so *every* permutation of
//!    chunk partials — and `profile_parallel`, which merges in plan
//!    order — reproduces the serial profile bit for bit.
//! 2. **Seeded chaos traces replay byte-identically.** The CLI's
//!    `trace chaos` event stream is a pure function of the seed, and every
//!    traced run carries a selector decision record.

use proptest::prelude::*;
use repro_core::select::{profile, profile_parallel, DataProfile};

fn hostile(seed: u64, dr: u32) -> Vec<f64> {
    repro_core::gen::zero_sum_with_range(4_000, dr, seed)
}

/// All permutations of `0..n` via Heap's algorithm.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, idx: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(idx.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, idx, out);
            if k % 2 == 0 {
                idx.swap(i, k - 1);
            } else {
                idx.swap(0, k - 1);
            }
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap(n, &mut idx, &mut out);
    out
}

fn assert_bitwise_eq(got: &DataProfile, want: &DataProfile, context: &str) {
    assert_eq!(got.n, want.n, "{context}: n");
    assert_eq!(got.min_exp, want.min_exp, "{context}: min_exp");
    assert_eq!(got.max_exp, want.max_exp, "{context}: max_exp");
    assert_eq!(got.dr_binades, want.dr_binades, "{context}: dr_binades");
    assert_eq!(
        got.max_abs.to_bits(),
        want.max_abs.to_bits(),
        "{context}: max_abs"
    );
    assert_eq!(
        got.abs_sum.to_bits(),
        want.abs_sum.to_bits(),
        "{context}: abs_sum {:e} vs {:e}",
        got.abs_sum,
        want.abs_sum
    );
    assert_eq!(
        got.sum_estimate.to_bits(),
        want.sum_estimate.to_bits(),
        "{context}: sum_estimate {:e} vs {:e}",
        got.sum_estimate,
        want.sum_estimate
    );
    assert_eq!(got.k.to_bits(), want.k.to_bits(), "{context}: k");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every one of the 120 permutations of five chunk partials merges to
    /// the exact bits of the serial whole-dataset profile, and so does the
    /// runtime-pool parallel profiler.
    #[test]
    fn every_merge_permutation_matches_serial_profile_bitwise(
        seed in 0u64..200,
        dr in 1u32..28,
    ) {
        let values = hostile(seed, dr);
        let serial = profile(&values);

        const CHUNKS: usize = 5;
        let per = values.len().div_ceil(CHUNKS);
        let partials: Vec<DataProfile> =
            values.chunks(per).map(profile).collect();
        prop_assert_eq!(partials.len(), CHUNKS);

        for perm in permutations(CHUNKS) {
            // Left-fold merge in permuted order ...
            let mut linear = DataProfile::empty();
            for &i in &perm {
                linear.merge(&partials[i]);
            }
            assert_bitwise_eq(&linear, &serial, &format!("linear {perm:?}"));

            // ... and a balanced merge tree over the same order.
            let mut level: Vec<DataProfile> =
                perm.iter().map(|&i| partials[i]).collect();
            while level.len() > 1 {
                level = level
                    .chunks(2)
                    .map(|pair| {
                        let mut m = pair[0];
                        if let Some(r) = pair.get(1) {
                            m.merge(r);
                        }
                        m
                    })
                    .collect();
            }
            assert_bitwise_eq(&level[0], &serial, &format!("tree {perm:?}"));
        }

        let parallel = profile_parallel(&values);
        assert_bitwise_eq(&parallel, &serial, "profile_parallel");
    }
}

mod traced_chaos {
    use repro_cli::{run, CliError};

    fn no_fs(_: &str) -> Result<String, CliError> {
        Err(CliError::new("no filesystem in tests"))
    }

    fn run_cmd(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, &no_fs).expect("trace command")
    }

    /// Regression for the PR 3 acceptance gate: two traced chaos runs with
    /// the same seed produce byte-identical output — events *and* summary —
    /// and the schema validator accepts the stream.
    #[test]
    fn seeded_chaos_trace_replays_byte_identically() {
        let args = [
            "trace", "chaos", "--ranks", "5", "--n", "640", "--seed", "20150923", "--drop", "0.25",
            "--dup", "0.15", "--kill", "2",
        ];
        let first = run_cmd(&args);
        let second = run_cmd(&args);
        assert_eq!(first, second);

        let summary = repro_core::obs::validate_trace(&first).expect("valid trace");
        assert!(summary.events > 0);
        assert!(
            summary.subsystems.iter().any(|s| s == "select"),
            "{summary:?}"
        );
        assert!(first.contains("OK (bitwise)"), "{first}");
    }

    /// Every traced run — reduce or chaos — carries at least one selector
    /// decision record.
    #[test]
    fn traced_runs_always_carry_a_decision_record() {
        for args in [
            vec![
                "trace", "chaos", "--ranks", "3", "--n", "128", "--seed", "4",
            ],
            vec!["trace", "reduce", "--n", "256", "--dr", "8", "--seed", "4"],
        ] {
            let out = run_cmd(&args);
            let decisions = out
                .lines()
                .filter(|l| l.contains("\"sub\":\"select\"") && l.contains("\"kind\":\"decision\""))
                .count();
            assert_eq!(decisions, 1, "args {args:?}:\n{out}");
        }
    }
}
