//! # `repro-solver` — conjugate gradients over selectable reductions
//!
//! Iterative solvers are where reduction nondeterminism bites hardest in
//! practice: every CG iteration computes two inner products (`rᵀr`, `pᵀAp`)
//! whose values steer the step sizes `α, β`. Perturb those reductions at the
//! ulp level — by letting a parallel machine accumulate them in arrival
//! order — and the *entire residual trajectory* shifts: different iterates,
//! sometimes different iteration counts, run to run. (He & Ding's original
//! reproducibility work was motivated by exactly this effect in climate
//! codes.)
//!
//! This crate demonstrates the effect and its cure end to end:
//!
//! * [`Cg::solve`] runs CG on a dense SPD system with a pluggable
//!   [`DotPolicy`]: plain f64 dots, compensated (`dot2`) dots, or
//!   bitwise-reproducible binned dots — optionally with per-iteration
//!   shuffling of the accumulation order (the nondeterminism model).
//! * With [`DotPolicy::Standard`] and shuffling, two solves of the same
//!   system produce different iterate trajectories; with
//!   [`DotPolicy::Reproducible`], they are **bitwise identical**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use repro_fp::rng::DetRng;
use repro_sum::{dot2, dot_reproducible, dot_standard};

/// How the solver computes its inner products.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DotPolicy {
    /// Plain f64 accumulation (order-sensitive).
    Standard,
    /// Ogita–Rump–Oishi compensated dot (`dot2`): order-sensitive but far
    /// more accurate.
    Compensated,
    /// Binned reproducible dot at the given fold: bitwise order-invariant.
    Reproducible {
        /// Binned fold (1..=4).
        fold: u8,
    },
}

impl DotPolicy {
    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            DotPolicy::Standard => dot_standard(x, y),
            DotPolicy::Compensated => dot2(x, y),
            DotPolicy::Reproducible { fold } => dot_reproducible(x, y, *fold as usize),
        }
    }
}

/// A dense symmetric positive-definite system `A x = b`.
#[derive(Clone, Debug)]
pub struct SpdSystem {
    n: usize,
    /// Row-major dense matrix.
    a: Vec<f64>,
    /// Right-hand side.
    pub b: Vec<f64>,
}

impl SpdSystem {
    /// Generate a random SPD system: `A = Bᵀ B + n·I` with `B` uniform in
    /// `[-1, 1]`, RHS uniform — guaranteed well-posed, moderately
    /// conditioned, seeded.
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = DetRng::seed_from_u64(seed);
        let bmat: Vec<f64> = (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                // (B^T B)_{ij} = sum_k B_{ki} B_{kj}
                let mut s = 0.0;
                for k in 0..n {
                    s += bmat[k * n + i] * bmat[k * n + j];
                }
                a[i * n + j] = s;
            }
            a[i * n + i] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        Self { n, a, b }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `y = A x` (plain row dots: the matvec itself is elementwise
    /// deterministic here; the *solver's* inner products carry the policy).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            *yi = dot_standard(row, x);
        }
    }

    /// Exact residual norm `‖b − A x‖₂` computed through the exact oracle
    /// (error-free matvec products, superaccumulated).
    pub fn exact_residual_norm(&self, x: &[f64]) -> f64 {
        let mut sq = repro_fp::Superaccumulator::new();
        for i in 0..self.n {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            let mut acc = repro_fp::Superaccumulator::new();
            for (aij, xj) in row.iter().zip(x) {
                let (p, e) = repro_fp::two_prod(*aij, *xj);
                acc.add(p);
                acc.add(e);
            }
            acc.sub(self.b[i]);
            let ri = acc.to_f64();
            let (p, e) = repro_fp::two_prod(ri, ri);
            sq.add(p);
            sq.add(e);
        }
        sq.to_f64().sqrt()
    }
}

/// Conjugate-gradient solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct Cg {
    /// Inner-product policy.
    pub dots: DotPolicy,
    /// Convergence threshold on `rᵀr`.
    pub rtr_tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// If `Some(seed)`, the accumulation order of every inner product is
    /// re-shuffled per use — the nondeterministic-machine model.
    pub shuffle_seed: Option<u64>,
}

impl Default for Cg {
    fn default() -> Self {
        Self {
            dots: DotPolicy::Standard,
            rtr_tolerance: 1e-20,
            max_iterations: 10_000,
            shuffle_seed: None,
        }
    }
}

/// Jacobi (diagonal) preconditioner for [`Cg::solve_preconditioned`].
#[derive(Clone, Debug)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from the system's diagonal (panics on a zero diagonal entry —
    /// impossible for SPD input).
    pub fn new(system: &SpdSystem) -> Self {
        let n = system.dim();
        let inv_diag: Vec<f64> = (0..n)
            .map(|i| {
                let d = system.a[i * n + i];
                assert!(d > 0.0, "SPD diagonal must be positive");
                1.0 / d
            })
            .collect();
        Self { inv_diag }
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// The result of a CG solve.
#[derive(Clone, Debug)]
pub struct CgSolution {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// `rᵀr` at exit (as the solver computed it).
    pub final_rtr: f64,
    /// The `rᵀr` trajectory, one entry per iteration (the quantity whose
    /// run-to-run wander this crate demonstrates).
    pub rtr_trace: Vec<f64>,
}

impl Cg {
    /// Solve `A x = b` from the zero initial guess.
    pub fn solve(&self, system: &SpdSystem) -> CgSolution {
        let n = system.dim();
        let mut rng = self.shuffle_seed.map(DetRng::seed_from_u64);
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut dot = |p: &DotPolicy, x: &[f64], y: &[f64], rng: &mut Option<DetRng>| -> f64 {
            match rng {
                None => p.dot(x, y),
                Some(rng) => {
                    // Shuffled accumulation order for this inner product.
                    rng.shuffle(&mut order);
                    let xs: Vec<f64> = order.iter().map(|&i| x[i as usize]).collect();
                    let ys: Vec<f64> = order.iter().map(|&i| y[i as usize]).collect();
                    p.dot(&xs, &ys)
                }
            }
        };

        let mut x = vec![0.0; n];
        let mut r = system.b.clone();
        let mut p = r.clone();
        let mut ap = vec![0.0; n];
        let mut rtr = dot(&self.dots, &r, &r, &mut rng);
        let mut trace = Vec::new();
        let mut iterations = 0;
        while iterations < self.max_iterations && rtr > self.rtr_tolerance {
            system.matvec(&p, &mut ap);
            let ptap = dot(&self.dots, &p, &ap, &mut rng);
            if ptap <= 0.0 {
                break; // lost positive definiteness to roundoff: stop
            }
            let alpha = rtr / ptap;
            for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
                *xi += alpha * pi;
                *ri -= alpha * api;
            }
            let rtr_new = dot(&self.dots, &r, &r, &mut rng);
            let beta = rtr_new / rtr;
            for (pi, ri) in p.iter_mut().zip(&r) {
                *pi = ri + beta * *pi;
            }
            rtr = rtr_new;
            trace.push(rtr);
            iterations += 1;
        }
        CgSolution {
            x,
            iterations,
            final_rtr: rtr,
            rtr_trace: trace,
        }
    }
}

impl Cg {
    /// Jacobi-preconditioned CG: same policy plumbing, one extra inner
    /// product (`rᵀz`) steering per iteration — i.e. *more* surface for the
    /// reduction nondeterminism the crate demonstrates.
    pub fn solve_preconditioned(
        &self,
        system: &SpdSystem,
        precond: &JacobiPreconditioner,
    ) -> CgSolution {
        let n = system.dim();
        let mut rng = self.shuffle_seed.map(DetRng::seed_from_u64);
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut dot = |p: &DotPolicy, x: &[f64], y: &[f64], rng: &mut Option<DetRng>| -> f64 {
            match rng {
                None => p.dot(x, y),
                Some(rng) => {
                    rng.shuffle(&mut order);
                    let xs: Vec<f64> = order.iter().map(|&i| x[i as usize]).collect();
                    let ys: Vec<f64> = order.iter().map(|&i| y[i as usize]).collect();
                    p.dot(&xs, &ys)
                }
            }
        };
        let mut x = vec![0.0; n];
        let mut r = system.b.clone();
        let mut z = vec![0.0; n];
        precond.apply(&r, &mut z);
        let mut p = z.clone();
        let mut ap = vec![0.0; n];
        let mut rtz = dot(&self.dots, &r, &z, &mut rng);
        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut rtr = dot(&self.dots, &r, &r, &mut rng);
        while iterations < self.max_iterations && rtr > self.rtr_tolerance {
            system.matvec(&p, &mut ap);
            let ptap = dot(&self.dots, &p, &ap, &mut rng);
            if ptap <= 0.0 {
                break;
            }
            let alpha = rtz / ptap;
            for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
                *xi += alpha * pi;
                *ri -= alpha * api;
            }
            precond.apply(&r, &mut z);
            let rtz_new = dot(&self.dots, &r, &z, &mut rng);
            let beta = rtz_new / rtz;
            for (pi, zi) in p.iter_mut().zip(&z) {
                *pi = zi + beta * *pi;
            }
            rtz = rtz_new;
            rtr = dot(&self.dots, &r, &r, &mut rng);
            trace.push(rtr);
            iterations += 1;
        }
        CgSolution {
            x,
            iterations,
            final_rtr: rtr,
            rtr_trace: trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fingerprint(xs: &[f64]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in xs {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    #[test]
    fn cg_solves_the_system() {
        let system = SpdSystem::random(64, 1);
        for dots in [
            DotPolicy::Standard,
            DotPolicy::Compensated,
            DotPolicy::Reproducible { fold: 3 },
        ] {
            let sol = Cg {
                dots,
                ..Cg::default()
            }
            .solve(&system);
            let res = system.exact_residual_norm(&sol.x);
            assert!(
                res < 1e-8,
                "{dots:?}: residual {res:e} after {} its",
                sol.iterations
            );
            assert!(sol.iterations < 300, "{dots:?} took {}", sol.iterations);
        }
    }

    #[test]
    fn standard_dots_wander_under_shuffled_accumulation() {
        let system = SpdSystem::random(96, 7);
        let solve = |seed| {
            Cg {
                dots: DotPolicy::Standard,
                shuffle_seed: Some(seed),
                rtr_tolerance: 1e-24,
                ..Cg::default()
            }
            .solve(&system)
        };
        let a = solve(1);
        let b = solve(2);
        // Trajectories diverge (almost surely from iteration 1).
        assert_ne!(
            fingerprint(&a.x),
            fingerprint(&b.x),
            "ST dots should feel accumulation order"
        );
        assert!(a.rtr_trace.iter().zip(&b.rtr_trace).any(|(x, y)| x != y));
    }

    #[test]
    fn reproducible_dots_give_bitwise_identical_solves() {
        let system = SpdSystem::random(96, 7);
        let solve = |seed| {
            Cg {
                dots: DotPolicy::Reproducible { fold: 3 },
                shuffle_seed: Some(seed),
                rtr_tolerance: 1e-24,
                ..Cg::default()
            }
            .solve(&system)
        };
        let a = solve(1);
        let b = solve(2);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(fingerprint(&a.x), fingerprint(&b.x));
        assert_eq!(a.rtr_trace.len(), b.rtr_trace.len());
        for (x, y) in a.rtr_trace.iter().zip(&b.rtr_trace) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn trajectories_match_without_shuffling_regardless_of_policy() {
        let system = SpdSystem::random(48, 3);
        for dots in [DotPolicy::Standard, DotPolicy::Reproducible { fold: 3 }] {
            let a = Cg {
                dots,
                ..Cg::default()
            }
            .solve(&system);
            let b = Cg {
                dots,
                ..Cg::default()
            }
            .solve(&system);
            assert_eq!(fingerprint(&a.x), fingerprint(&b.x), "{dots:?}");
        }
    }

    #[test]
    fn exact_residual_oracle_is_tight() {
        // For the exact solution of a tiny system, the residual is ~0.
        let system = SpdSystem::random(8, 9);
        let sol = Cg {
            dots: DotPolicy::Compensated,
            rtr_tolerance: 1e-28,
            ..Cg::default()
        }
        .solve(&system);
        assert!(system.exact_residual_norm(&sol.x) < 1e-10);
        // And for x = 0 it equals ||b||.
        let zero_res = system.exact_residual_norm(&[0.0; 8]);
        let b_norm = repro_sum::dot_exact(&system.b, &system.b).sqrt();
        assert!((zero_res - b_norm).abs() < 1e-12);
    }

    #[test]
    fn preconditioned_cg_solves_and_stays_reproducible() {
        let system = SpdSystem::random(80, 11);
        let pc = JacobiPreconditioner::new(&system);
        let solve = |dots, seed| {
            Cg {
                dots,
                shuffle_seed: Some(seed),
                rtr_tolerance: 1e-24,
                ..Cg::default()
            }
            .solve_preconditioned(&system, &pc)
        };
        // Converges.
        let sol = solve(DotPolicy::Compensated, 1);
        assert!(system.exact_residual_norm(&sol.x) < 1e-8);
        // Reproducible dots pin the preconditioned solve too.
        let a = solve(DotPolicy::Reproducible { fold: 3 }, 1);
        let b = solve(DotPolicy::Reproducible { fold: 3 }, 2);
        assert_eq!(fingerprint(&a.x), fingerprint(&b.x));
        // Standard dots wander.
        let c = solve(DotPolicy::Standard, 1);
        let d = solve(DotPolicy::Standard, 2);
        assert_ne!(fingerprint(&c.x), fingerprint(&d.x));
    }

    #[test]
    fn deterministic_generation() {
        let a = SpdSystem::random(16, 5);
        let b = SpdSystem::random(16, 5);
        assert_eq!(a.b, b.b);
        assert_eq!(a.a, b.a);
    }
}
