//! # `repro-core` — the whole toolkit behind one import
//!
//! A from-scratch Rust reproduction of Chapp, Johnston & Taufer,
//! *"On the Need for Reproducible Numerical Accuracy through Intelligent
//! Runtime Selection of Reduction Algorithms at the Extreme Scale"*
//! (IEEE CLUSTER 2015) — the experimental apparatus **and** the
//! runtime-selection system the paper advocates.
//!
//! The sub-crates, re-exported here as modules:
//!
//! | module | contents |
//! |--------|----------|
//! | [`fp`] | error-free transforms, double-double, exact superaccumulator, error bounds |
//! | [`hp`] | arbitrary-precision `BigFloat` (independent reference oracle) |
//! | [`sum`] | ST / Kahan / Neumaier / pairwise / CP / PR as mergeable reduction operators |
//! | [`stats`] | boxplots, grids, histograms, tables |
//! | [`gen`] | `(n, k, dr)`-targeted workload generators |
//! | [`tree`] | reduction-tree shapes, permutations, threaded executor |
//! | [`cancel`] | CESTAC stochastic arithmetic, cancellation tracking |
//! | [`mpisim`] | message-passing runtime with reduction collectives |
//! | [`obs`] | deterministic observability: logical-clock events, metrics, JSONL traces |
//! | [`select`] | profiling + intelligent runtime algorithm selection |
//! | [`md`] | miniature N-body simulation over selectable reductions (trajectory-divergence demos) |
//! | [`solver`] | conjugate gradients over selectable inner products (solver-trajectory demos) |
//! | [`agg`] | sharded reproducible aggregation engine: concurrent named aggregates, versioned wire format, bitwise-invariant finalize |
//!
//! # Quickstart
//!
//! ```
//! use repro_core::prelude::*;
//!
//! // Ill-conditioned data: exact sum 0, 32 decades of dynamic range.
//! let values = repro_core::gen::zero_sum_with_range(10_000, 32, 42);
//!
//! // Different reduction orders give ST different answers ...
//! let a = tree::reduce(&values, TreeShape::Balanced, Algorithm::Standard);
//! let b = tree::reduce(&values, TreeShape::Serial, Algorithm::Standard);
//! assert_ne!(a.to_bits(), b.to_bits());
//!
//! // ... while PR is bitwise identical on every tree:
//! let p = tree::reduce(&values, TreeShape::Balanced, Algorithm::PR);
//! let q = tree::reduce(&values, TreeShape::Serial, Algorithm::PR);
//! assert_eq!(p.to_bits(), q.to_bits());
//!
//! // Or let the selector pick the cheapest acceptable operator:
//! let reducer = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-13));
//! let outcome = reducer.reduce(&values);
//! assert!(outcome.algorithm.cost_rank() > Algorithm::Standard.cost_rank());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use repro_agg as agg;
pub use repro_cancel as cancel;
pub use repro_fp as fp;
pub use repro_gen as gen;
pub use repro_hp as hp;
pub use repro_md as md;
pub use repro_mpisim as mpisim;
pub use repro_obs as obs;
pub use repro_runtime as runtime;
pub use repro_select as select;
pub use repro_solver as solver;
pub use repro_stats as stats;
pub use repro_sum as sum;
pub use repro_tree as tree;

/// The common imports for application code.
pub mod prelude {
    pub use repro_fp::{abs_error, condition_number, dynamic_range, exact_sum, Superaccumulator};
    pub use repro_runtime::{MergeOrder, ReductionPlan, Runtime, RuntimeStats};
    pub use repro_select::{AdaptiveReducer, Selector, Tolerance};
    pub use repro_sum::{Accumulator, Algorithm, BinnedSum, CompositeSum, KahanSum, StandardSum};
    pub use repro_tree as tree;
    pub use repro_tree::TreeShape;
}
