//! Property tests for the collectives across world sizes: correctness on
//! exact data, agreement across topologies, and the reproducibility
//! contracts under scheduling nondeterminism.

use proptest::prelude::*;
use repro_mpisim::{collectives, ReduceConfig, ReduceTopology, World};
use repro_sum::{Accumulator, Algorithm, BinnedSum};

fn chunks(values: &[f64], size: usize, rank: usize) -> &[f64] {
    let per = values.len().div_ceil(size);
    &values[(rank * per).min(values.len())..((rank + 1) * per).min(values.len())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Integer-valued data reduces exactly on every topology and world size.
    #[test]
    fn reduce_is_exact_on_integers(
        ints in prop::collection::vec(-1_000_000i64..1_000_000, 1..400),
        size in 1usize..9,
        topo_idx in 0usize..3,
    ) {
        let values: Vec<f64> = ints.iter().map(|&i| i as f64).collect();
        let expected: i64 = ints.iter().sum();
        let topo = [
            ReduceTopology::Binomial,
            ReduceTopology::FlatArrival,
            ReduceTopology::Chain,
        ][topo_idx];
        let cfg = ReduceConfig { topology: topo, ..Default::default() };
        let out = World::run(size, |c| {
            collectives::reduce_sum(c, chunks(&values, c.size(), c.rank()), Algorithm::Standard, 0, &cfg)
        });
        prop_assert_eq!(out[0], Some(expected as f64));
        prop_assert!(out[1..].iter().all(|o| o.is_none()));
    }

    /// allreduce_max returns the true maximum on every rank.
    #[test]
    fn allreduce_max_is_the_maximum(
        values in prop::collection::vec(-1e12f64..1e12, 1..32),
    ) {
        let size = values.len();
        let expected = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let out = World::run(size, |c| collectives::allreduce_max(c, values[c.rank()]));
        prop_assert!(out.iter().all(|&m| m == expected));
    }

    /// Scan prefixes telescope: rank r's scan equals rank r-1's scan merged
    /// with rank r's contribution (exact-integer case).
    #[test]
    fn scan_telescopes(
        ints in prop::collection::vec(-1_000i64..1_000, 1..16),
    ) {
        let size = ints.len();
        let out = World::run(size, |c| {
            let mut acc = Algorithm::Standard.new_accumulator();
            acc.add(ints[c.rank()] as f64);
            collectives::scan_accumulator(c, acc).finalize()
        });
        let mut running = 0i64;
        for (r, &got) in out.iter().enumerate() {
            running += ints[r];
            prop_assert_eq!(got, running as f64, "rank {}", r);
        }
    }

    /// PR reductions agree bitwise across all three topologies AND with the
    /// single-threaded reduction, for any chunking.
    #[test]
    fn binned_topology_quorum(
        seed in any::<u64>(),
        size in 2usize..8,
    ) {
        let values = repro_gen::zero_sum_with_range(2_000, 24, seed);
        let reference = BinnedSum::sum_slice(&values, 3);
        for topo in [
            ReduceTopology::Binomial,
            ReduceTopology::FlatArrival,
            ReduceTopology::Chain,
        ] {
            let cfg = ReduceConfig { topology: topo, ..Default::default() };
            let out = World::run(size, |c| {
                collectives::reduce_sum(c, chunks(&values, c.size(), c.rank()), Algorithm::PR, 0, &cfg)
            });
            prop_assert_eq!(out[0].unwrap().to_bits(), reference.to_bits(), "{:?}", topo);
        }
    }

    /// Broadcast delivers the root's value everywhere for any root.
    #[test]
    fn broadcast_from_any_root(size in 1usize..10, root_idx in any::<prop::sample::Index>(), payload in any::<u64>()) {
        let root = root_idx.index(size);
        let out = World::run(size, move |c| {
            collectives::broadcast(c, root, (c.rank() == root).then_some(payload))
        });
        prop_assert!(out.iter().all(|&v| v == payload));
    }

    /// Gather returns rank-ordered contributions on the root only.
    #[test]
    fn gather_orders_by_rank(size in 1usize..10, root_idx in any::<prop::sample::Index>()) {
        let root = root_idx.index(size);
        let out = World::run(size, move |c| collectives::gather(c, c.rank() as u64 * 3, root));
        let expected: Vec<u64> = (0..size as u64).map(|r| r * 3).collect();
        prop_assert_eq!(out[root].clone(), Some(expected));
        for (r, o) in out.iter().enumerate() {
            if r != root {
                prop_assert!(o.is_none());
            }
        }
    }
}
