//! Ranks, mailboxes, and typed point-to-point messaging — with timed
//! receives and an optional deterministic fault plane.
//!
//! Two transport modes share one code path:
//!
//! * [`World::run`] — the benign world: no faults, blocking receives,
//!   panics on protocol violations (unchanged legacy behaviour);
//! * [`World::run_report`] — the chaos world: a [`FaultPlan`] injects
//!   drops/delays/duplicates/reorders/kills, receives carry deadlines and
//!   bounded exponential backoff, dead ranks are reaped instead of
//!   deadlocking the join, and the run returns a structured
//!   [`WorldReport`] with per-rank outcomes plus fault/recovery counters.

use crate::fault::{ConfigError, FaultCounters, FaultError, FaultPlan, FaultStats};
use repro_fp::rng::DetRng;
use repro_obs::{f, Event, Scope, Trace, Value};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll interval for blocking receives that must still surface withheld
/// (dropped/delayed) envelopes in a fault world.
const DEFAULT_TICK: Duration = Duration::from_millis(25);

/// How long a reordered envelope is held back so later traffic overtakes
/// it in the receiver's visible order.
const REORDER_HOLD_US: u64 = 1_500;

/// An envelope in flight between ranks.
struct Envelope {
    from: usize,
    tag: u64,
    /// Junk duplicate injected by the fault plane; receivers discard it.
    dup: bool,
    /// Earliest instant the receiver may surface this envelope.
    deliver_after: Option<Instant>,
    /// Withheld until the receiver's next retry boundary (drop fault:
    /// a lost packet recovered by retransmission).
    drop_until_retry: bool,
    payload: Box<dyn Any + Send>,
}

/// Payload of a fault-injected duplicate: a type no user receive matches,
/// so the junk copy exercises the discard path without ever being claimed.
struct DupEcho;

/// Per-rank fault state: the plan, this rank's deterministic stream, and
/// the shared world counters.
struct FaultCtx {
    plan: FaultPlan,
    rng: DetRng,
    counters: Arc<FaultCounters>,
    kill_at: Option<u64>,
    ops: u64,
    killed_at: Option<u64>,
}

/// How long a receive may wait.
#[derive(Clone, Copy)]
enum WaitPolicy {
    /// Block until a match arrives (legacy `recv`).
    Forever,
    /// First attempt waits `base`, then `retries` more attempts doubling
    /// the wait each time (`recv_timeout`).
    Backoff { base: Duration, retries: u32 },
    /// Wait until an absolute deadline (`recv_deadline`).
    Until(Instant),
}

/// The communicator handed to each rank's closure: its identity plus the
/// wiring to every peer.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet claimed, bucketed by tag so a receive
    /// scans only envelopes that can possibly match instead of rescanning
    /// the whole out-of-order buffer (the old `Vec` was O(pending²) across
    /// a burst of mismatched tags).
    pending: HashMap<u64, Vec<Envelope>>,
    /// Envelopes the fault plane is holding back from this receiver.
    withheld: Vec<Envelope>,
    /// SPMD operation counter: every rank performs collectives in the same
    /// sequence, so equal counters identify the same collective instance.
    op_counter: u64,
    fault: Option<FaultCtx>,
    /// This rank's observability scope (`rank<N>`). Disabled unless the
    /// world was started traced; each rank records into its own per-thread
    /// buffer, concatenated in rank order after the join — events are
    /// never interleaved live, which is what keeps a traced run
    /// byte-identical for deterministic communication scripts.
    obs: Scope,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether this rank is recording observability events.
    pub fn tracing(&self) -> bool {
        self.obs.enabled()
    }

    /// Record a custom event into this rank's scope (no-op untraced).
    /// Communication scripts use this to narrate application-level steps —
    /// merges, heals, checkpoints — alongside the transport's own
    /// send/recv/fault events, under the same logical clock.
    pub fn trace_event(&mut self, kind: &str, fields: Vec<(String, Value)>) {
        self.obs.event(kind, fields);
    }

    /// Fresh tag for one collective operation; advances identically on all
    /// ranks (SPMD discipline).
    pub(crate) fn next_op_tag(&mut self) -> u64 {
        self.op_counter += 1;
        // High bit namespace separates collective tags from user tags.
        self.op_counter | (1 << 63)
    }

    /// `(base wait, extra attempts)` for timed receives on this rank.
    pub(crate) fn budget(&self) -> (Duration, u32) {
        match &self.fault {
            Some(ctx) => (ctx.plan.base_timeout, ctx.plan.max_retries),
            None => {
                let d = FaultPlan::default();
                (d.base_timeout, d.max_retries)
            }
        }
    }

    /// Total wall time one [`Comm::recv_timeout`] may spend across all
    /// backoff attempts.
    pub fn link_budget(&self) -> Duration {
        match &self.fault {
            Some(ctx) => ctx.plan.link_budget(),
            None => FaultPlan::default().link_budget(),
        }
    }

    /// Whether the fault plan has killed this rank.
    pub fn is_killed(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|ctx| ctx.killed_at.is_some())
    }

    /// Count one communication operation against this rank's kill point.
    /// Past the kill point every fault-aware operation fails.
    fn fault_tick(&mut self) -> Result<(), FaultError> {
        let rank = self.rank;
        if let Some(ctx) = &mut self.fault {
            if let Some(at_op) = ctx.killed_at {
                return Err(FaultError::Killed { rank, at_op });
            }
            ctx.ops += 1;
            if ctx.kill_at.is_some_and(|k| ctx.ops >= k) {
                ctx.killed_at = Some(ctx.ops);
                FaultCounters::bump(&ctx.counters.killed);
                let at_op = ctx.ops;
                // The kill point is an op count from the seeded plan, so
                // this event lands at the same logical timestamp every run.
                self.obs.event("kill", vec![f("at_op", at_op)]);
                // A rank death is an incident: flight-record it and flush
                // the rings so even an untraced chaos run leaves a
                // post-mortem behind (when a dump directory is configured).
                repro_obs::flight::record_with("mpisim", "kill", || {
                    vec![f("rank", rank as u64), f("at_op", at_op)]
                });
                repro_obs::flight::incident("mpisim.kill");
                return Err(FaultError::Killed { rank, at_op });
            }
        }
        Ok(())
    }

    /// Record one healing round (called by the root of a fault-tolerant
    /// collective when it re-plans over survivors).
    pub(crate) fn note_heal(&mut self) {
        if let Some(ctx) = &self.fault {
            FaultCounters::bump(&ctx.counters.heals);
        }
        self.obs.event("heal", vec![]);
        // Heals ride the flight ring too: a post-mortem that shows a kill
        // without the matching heal is itself diagnostic.
        repro_obs::flight::record_with("mpisim", "heal", || vec![f("rank", self.rank as u64)]);
        repro_obs::flight::incident("mpisim.heal");
    }

    fn note_retry(&self) {
        if let Some(ctx) = &self.fault {
            FaultCounters::bump(&ctx.counters.retries);
        }
    }

    /// Send `value` to rank `to` under `tag` (non-blocking, unbounded
    /// buffering). In a benign world a send to a terminated rank panics;
    /// under a fault plan it is silently discarded (and counted), because
    /// dying peers are exactly what the plan is simulating.
    pub fn send<T: Any + Send>(&mut self, to: usize, tag: u64, value: T) {
        self.raw_send(to, tag, Box::new(value));
    }

    /// Fault-aware send: counts against this rank's kill point and returns
    /// [`FaultError::Killed`] once the rank is dead.
    pub fn try_send<T: Any + Send>(
        &mut self,
        to: usize,
        tag: u64,
        value: T,
    ) -> Result<(), FaultError> {
        self.fault_tick()?;
        self.raw_send(to, tag, Box::new(value));
        Ok(())
    }

    fn raw_send(&mut self, to: usize, tag: u64, payload: Box<dyn Any + Send>) {
        let mut env = Envelope {
            from: self.rank,
            tag,
            dup: false,
            deliver_after: None,
            drop_until_retry: false,
            payload,
        };
        let mut duplicate = false;
        let mut fault_flags = None;
        if let Some(ctx) = &mut self.fault {
            // Fixed draw order keeps the per-rank stream replayable
            // regardless of which faults are enabled.
            let drop = ctx.rng.random_bool(ctx.plan.drop);
            let delay = ctx.rng.random_bool(ctx.plan.delay);
            let delay_us = ctx.rng.below(ctx.plan.max_delay_us.max(1));
            duplicate = ctx.rng.random_bool(ctx.plan.duplicate);
            let reorder = ctx.rng.random_bool(ctx.plan.reorder);
            if drop {
                env.drop_until_retry = true;
                FaultCounters::bump(&ctx.counters.dropped);
            } else if delay {
                env.deliver_after = Some(Instant::now() + Duration::from_micros(delay_us));
                FaultCounters::bump(&ctx.counters.delayed);
            } else if reorder {
                env.deliver_after = Some(Instant::now() + Duration::from_micros(REORDER_HOLD_US));
                FaultCounters::bump(&ctx.counters.reordered);
            }
            if duplicate {
                FaultCounters::bump(&ctx.counters.duplicated);
            }
            fault_flags = Some((drop, delay, duplicate, reorder));
        }
        if self.obs.enabled() {
            // Fault decisions come from the seeded per-rank stream keyed to
            // this rank's send sequence, so the flags — not just the send —
            // replay identically from the seed.
            let mut fields = vec![f("to", to), f("tag", tag)];
            if let Some((drop, delay, dup, reorder)) = fault_flags {
                fields.push(f("drop", drop));
                fields.push(f("delay", delay));
                fields.push(f("dup", dup));
                fields.push(f("reorder", reorder));
            }
            self.obs.event("send", fields);
        }
        let delivered = self.senders[to].send(env).is_ok();
        if delivered && duplicate {
            let _ = self.senders[to].send(Envelope {
                from: self.rank,
                tag,
                dup: true,
                deliver_after: None,
                drop_until_retry: false,
                payload: Box::new(DupEcho),
            });
        }
        if !delivered {
            match &self.fault {
                Some(ctx) => FaultCounters::bump(&ctx.counters.sends_to_dead),
                None => panic!("receiver rank terminated with messages in flight"),
            }
        }
    }

    /// Receive the next message of type `T` with `tag` from rank `from`
    /// (blocking; unrelated messages are buffered, not dropped).
    pub fn recv<T: Any + Send>(&mut self, from: usize, tag: u64) -> T {
        match self.recv_policy::<T>(tag, Some(from), WaitPolicy::Forever) {
            Ok((_, v)) => v,
            Err(FaultError::WorldTornDown) => {
                panic!("world torn down while rank still receiving")
            }
            Err(e) => panic!("recv failed: {e}"),
        }
    }

    /// Receive the next message of type `T` with `tag` from **any** rank, in
    /// genuine arrival order. Returns `(source_rank, value)`.
    pub fn recv_any<T: Any + Send>(&mut self, tag: u64) -> (usize, T) {
        match self.recv_policy::<T>(tag, None, WaitPolicy::Forever) {
            Ok(hit) => hit,
            Err(FaultError::WorldTornDown) => {
                panic!("world torn down while rank still receiving")
            }
            Err(e) => panic!("recv_any failed: {e}"),
        }
    }

    /// Timed receive with bounded retry: the first attempt waits the
    /// plan's base timeout, each retry doubles it (exponential backoff up
    /// to `max_retries` extra attempts). Each expired attempt releases
    /// drop-withheld envelopes — the retransmission that heals transient
    /// message loss.
    pub fn recv_timeout<T: Any + Send>(&mut self, from: usize, tag: u64) -> Result<T, FaultError> {
        self.fault_tick()?;
        let (base, retries) = self.budget();
        self.recv_policy::<T>(tag, Some(from), WaitPolicy::Backoff { base, retries })
            .map(|(_, v)| v)
    }

    /// Timed any-source receive with the same backoff schedule as
    /// [`Comm::recv_timeout`].
    pub fn recv_any_timeout<T: Any + Send>(&mut self, tag: u64) -> Result<(usize, T), FaultError> {
        self.fault_tick()?;
        let (base, retries) = self.budget();
        self.recv_policy::<T>(tag, None, WaitPolicy::Backoff { base, retries })
    }

    /// Receive with an absolute deadline (any source when `from` is
    /// `None`). Used by collectives whose wait budget spans several link
    /// timeouts, e.g. collecting membership pings.
    pub fn recv_deadline<T: Any + Send>(
        &mut self,
        from: Option<usize>,
        tag: u64,
        deadline: Instant,
    ) -> Result<(usize, T), FaultError> {
        self.fault_tick()?;
        self.recv_policy::<T>(tag, from, WaitPolicy::Until(deadline))
    }

    /// Every receive variant funnels through here, so recording at this
    /// single point covers them all. Outcomes are recorded, attempts are
    /// not: retry counts depend on thread timing, and the event stream must
    /// stay deterministic for deterministic communication scripts.
    fn recv_policy<T: Any + Send>(
        &mut self,
        tag: u64,
        from: Option<usize>,
        policy: WaitPolicy,
    ) -> Result<(usize, T), FaultError> {
        let result = self.recv_policy_inner::<T>(tag, from, policy);
        if self.obs.enabled() {
            match &result {
                Ok((src, _)) => self.obs.event("recv", vec![f("tag", tag), f("src", *src)]),
                Err(FaultError::Timeout { .. }) => {
                    let mut fields = vec![f("tag", tag)];
                    if let Some(from) = from {
                        fields.push(f("from", from));
                    }
                    self.obs.event("timeout", fields);
                }
                // Killed/torn-down outcomes are narrated elsewhere (the
                // `kill` event, the world's reap records).
                Err(_) => {}
            }
        }
        result
    }

    fn recv_policy_inner<T: Any + Send>(
        &mut self,
        tag: u64,
        from: Option<usize>,
        policy: WaitPolicy,
    ) -> Result<(usize, T), FaultError> {
        if let Some(hit) = self.claim::<T>(tag, from) {
            return Ok(hit);
        }
        let tick = match policy {
            WaitPolicy::Backoff { base, .. } => base,
            _ => DEFAULT_TICK,
        };
        let mut attempts_left = match policy {
            WaitPolicy::Backoff { retries, .. } => retries,
            _ => u32::MAX,
        };
        let hard_deadline = match policy {
            WaitPolicy::Until(d) => Some(d),
            _ => None,
        };
        let mut attempt_wait = tick;
        let mut boundary = Instant::now() + attempt_wait;
        let mut disconnected = false;
        loop {
            self.release_due_withheld();
            if let Some(hit) = self.claim::<T>(tag, from) {
                return Ok(hit);
            }
            if disconnected && self.withheld.is_empty() {
                return Err(FaultError::WorldTornDown);
            }
            let now = Instant::now();
            if hard_deadline.is_some_and(|d| now >= d) {
                return Err(FaultError::Timeout { from, tag });
            }
            let mut until = boundary;
            if let Some(d) = hard_deadline {
                until = until.min(d);
            }
            if let Some(w) = self.next_withheld_release() {
                until = until.min(w);
            }
            let wait = until
                .saturating_duration_since(now)
                .max(Duration::from_micros(50));
            if disconnected {
                // No live senders: nothing new can arrive, just let the
                // withheld queue drain on schedule.
                std::thread::sleep(wait.min(tick));
            } else {
                match self.inbox.recv_timeout(wait) {
                    Ok(e) => {
                        self.ingest(e);
                        continue;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        continue;
                    }
                }
            }
            if Instant::now() >= boundary {
                // Retry boundary: model retransmission by releasing every
                // drop-withheld envelope to this receiver.
                self.release_dropped();
                if let WaitPolicy::Backoff { .. } = policy {
                    if let Some(hit) = self.claim::<T>(tag, from) {
                        self.note_retry();
                        return Ok(hit);
                    }
                    if attempts_left == 0 {
                        return Err(FaultError::Timeout { from, tag });
                    }
                    attempts_left -= 1;
                    self.note_retry();
                    attempt_wait *= 2;
                }
                boundary = Instant::now() + attempt_wait;
            }
        }
    }

    /// Claim the first matching envelope from the `tag` bucket. The bucket
    /// map means a receive only ever scans envelopes sharing its tag, and
    /// the claim itself is `Vec::swap_remove` — O(1) instead of shifting.
    fn claim<T: Any + Send>(&mut self, tag: u64, from: Option<usize>) -> Option<(usize, T)> {
        let bucket = self.pending.get_mut(&tag)?;
        let idx = bucket
            .iter()
            .position(|e| from.map_or(true, |f| f == e.from) && e.payload.is::<T>())?;
        let e = bucket.swap_remove(idx);
        let matched = match e.payload.downcast::<T>() {
            Ok(v) => Some((e.from, *v)),
            // The position() predicate already type-checked the payload, so
            // this arm is unreachable in practice — but a claim must never
            // be able to panic the rank thread (which would poison the
            // whole world join), so the envelope goes back instead.
            Err(payload) => {
                bucket.push(Envelope {
                    from: e.from,
                    tag: e.tag,
                    dup: e.dup,
                    deliver_after: e.deliver_after,
                    drop_until_retry: e.drop_until_retry,
                    payload,
                });
                None
            }
        };
        if self.pending.get(&tag).is_some_and(|b| b.is_empty()) {
            self.pending.remove(&tag);
        }
        matched
    }

    fn ingest(&mut self, e: Envelope) {
        if e.dup {
            // Junk duplicate: the transport guarantees exactly-once
            // delivery by discarding flagged copies.
            return;
        }
        if e.drop_until_retry || e.deliver_after.is_some_and(|t| t > Instant::now()) {
            self.withheld.push(e);
        } else {
            self.pending.entry(e.tag).or_default().push(e);
        }
    }

    /// Surface withheld envelopes whose hold time has passed.
    fn release_due_withheld(&mut self) {
        if self.withheld.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < self.withheld.len() {
            let e = &self.withheld[i];
            if !e.drop_until_retry && e.deliver_after.map_or(true, |t| t <= now) {
                let mut e = self.withheld.swap_remove(i);
                e.deliver_after = None;
                self.pending.entry(e.tag).or_default().push(e);
            } else {
                i += 1;
            }
        }
    }

    /// Surface every drop-withheld envelope (the receiver hit a retry
    /// boundary, i.e. the sender "retransmitted").
    fn release_dropped(&mut self) {
        let mut i = 0;
        while i < self.withheld.len() {
            if self.withheld[i].drop_until_retry {
                let mut e = self.withheld.swap_remove(i);
                e.drop_until_retry = false;
                e.deliver_after = None;
                self.pending.entry(e.tag).or_default().push(e);
            } else {
                i += 1;
            }
        }
    }

    fn next_withheld_release(&self) -> Option<Instant> {
        self.withheld
            .iter()
            .filter(|e| !e.drop_until_retry)
            .filter_map(|e| e.deliver_after)
            .min()
    }
}

/// Outcome of a fault-injected world run: per-rank results plus the
/// fault/recovery counters needed to understand — and replay — the run.
#[derive(Debug)]
pub struct WorldReport<R> {
    /// Per-rank outcome in rank order.
    pub results: Vec<Result<R, FaultError>>,
    /// Ranks that finished their closure successfully.
    pub completed: usize,
    /// Ranks that returned a [`FaultError`] (killed, excluded, timed out).
    pub failed: usize,
    /// Timed-receive retry attempts across all ranks.
    pub retries: u64,
    /// Healing rounds performed by fault-tolerant collectives.
    pub heals: u64,
    /// Injected-fault totals.
    pub faults: FaultStats,
}

impl<R> WorldReport<R> {
    /// Ranks whose closure completed successfully, in rank order.
    pub fn survivors(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_ok())
            .map(|(i, _)| i)
            .collect()
    }

    /// One-line human summary (used by the CLI and the smoke script).
    pub fn summary(&self) -> String {
        format!(
            "completed={} failed={} retries={} heals={} {}",
            self.completed, self.failed, self.retries, self.heals, self.faults
        )
    }
}

/// The world: spawns `size` ranks as threads and runs the same closure on
/// each (SPMD), returning the per-rank results in rank order.
///
/// ```
/// use repro_mpisim::World;
///
/// let doubled = World::run(4, |comm| comm.rank() * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6]);
/// ```
pub struct World;

impl World {
    /// Run `f` on `size` ranks. Panics in any rank propagate.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        assert!(size >= 1, "world needs at least one rank");
        Self::spawn(size, |_| None, false, &f).0
    }

    /// Like [`World::run`] but rejects impossible worlds with an `Err`
    /// instead of panicking.
    pub fn try_run<R, F>(size: usize, f: F) -> Result<Vec<R>, ConfigError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        if size == 0 {
            return Err(ConfigError("world needs at least one rank".into()));
        }
        Ok(Self::spawn(size, |_| None, false, &f).0)
    }

    /// Run `f` on `size` ranks under a [`FaultPlan`]. Rank closures return
    /// `Result`, dead ranks are reaped (their error is recorded, nothing
    /// hangs), and the run yields a [`WorldReport`] of outcomes plus
    /// fault/recovery counters.
    pub fn run_report<R, F>(
        size: usize,
        plan: &FaultPlan,
        f: F,
    ) -> Result<WorldReport<R>, ConfigError>
    where
        R: Send,
        F: Fn(&mut Comm) -> Result<R, FaultError> + Sync,
    {
        Self::run_report_traced(size, plan, false, f).map(|(report, _)| report)
    }

    /// [`World::run_report`] with per-rank observability: when `traced`,
    /// every rank records its transport events (sends with fault flags,
    /// receive outcomes, timeouts, kills, heals) plus anything the closure
    /// adds via [`Comm::trace_event`] into a `rank<N>` scope, and the world
    /// appends one `reap` record per failed rank under the `world` scope.
    ///
    /// Events are buffered per rank thread and concatenated **in rank
    /// order** after the join, so for a communication script whose sends
    /// and directed receives are data-independent of thread timing, the
    /// returned event sequence is a pure function of `(size, plan seed,
    /// script)` — two runs are byte-identical.
    pub fn run_report_traced<R, F>(
        size: usize,
        plan: &FaultPlan,
        traced: bool,
        f: F,
    ) -> Result<(WorldReport<R>, Vec<Event>), ConfigError>
    where
        R: Send,
        F: Fn(&mut Comm) -> Result<R, FaultError> + Sync,
    {
        if size == 0 {
            return Err(ConfigError("world needs at least one rank".into()));
        }
        plan.validate()?;
        let counters = Arc::new(FaultCounters::default());
        let (results, mut events) = Self::spawn(
            size,
            |rank| {
                Some(FaultCtx {
                    plan: plan.clone(),
                    rng: plan.rng_for_rank(rank),
                    counters: Arc::clone(&counters),
                    kill_at: plan.kill_at(rank),
                    ops: 0,
                    killed_at: None,
                })
            },
            traced,
            &f,
        );
        let completed = results.iter().filter(|r| r.is_ok()).count();
        let failed = results.len() - completed;
        if traced {
            // Reap records: derived from per-rank outcomes in rank order,
            // after every rank thread has joined — deterministic given the
            // outcomes themselves are.
            let (world_trace, world_sink) = Trace::to_memory();
            let mut world = world_trace.scope("world");
            for (rank, result) in results.iter().enumerate() {
                if let Err(e) = result {
                    world.event(
                        "reap",
                        vec![
                            repro_obs::f("rank", rank),
                            repro_obs::f("error", e.to_string()),
                        ],
                    );
                }
            }
            events.extend(world_sink.drain());
        }
        Ok((
            WorldReport {
                results,
                completed,
                failed,
                retries: counters.retries.load(Ordering::Relaxed),
                heals: counters.heals.load(Ordering::Relaxed),
                faults: counters.snapshot(),
            },
            events,
        ))
    }

    fn spawn<R, F, C>(size: usize, ctx_for_rank: C, traced: bool, f: &F) -> (Vec<R>, Vec<Event>)
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
        C: Fn(usize) -> Option<FaultCtx> + Sync,
    {
        let mut senders = Vec::with_capacity(size);
        let mut inboxes = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            inboxes.push(rx);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                let ctx_for_rank = &ctx_for_rank;
                handles.push(scope.spawn(move || {
                    let sink = if traced {
                        let (trace, sink) = Trace::to_memory();
                        Some((trace.scope(format!("rank{rank}")), sink))
                    } else {
                        None
                    };
                    let (obs, sink) = match sink {
                        Some((scope, sink)) => (scope, Some(sink)),
                        None => (Scope::disabled(), None),
                    };
                    let mut comm = Comm {
                        rank,
                        size,
                        senders,
                        inbox,
                        pending: HashMap::new(),
                        withheld: Vec::new(),
                        op_counter: 0,
                        fault: ctx_for_rank(rank),
                        obs,
                    };
                    let result = f(&mut comm);
                    drop(comm);
                    (result, sink.map(|s| s.drain()).unwrap_or_default())
                }));
            }
            // Drop the root copies so channels close when ranks finish.
            drop(senders);
            let mut results = Vec::with_capacity(size);
            let mut events = Vec::new();
            for h in handles {
                let (r, rank_events) = h.join().expect("rank panicked");
                results.push(r);
                events.extend(rank_events);
            }
            (results, events)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_every_rank() {
        let ranks = World::run(8, |c| c.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_round_trip() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 42.5f64);
                c.recv::<String>(1, 8)
            } else {
                let x: f64 = c.recv(0, 7);
                c.send(0, 8, format!("got {x}"));
                "done".to_string()
            }
        });
        assert_eq!(out[0], "got 42.5");
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                // Send in one order ...
                c.send(1, 1, 10i64);
                c.send(1, 2, 20i64);
                0
            } else {
                // ... receive in the other.
                let b: i64 = c.recv(0, 2);
                let a: i64 = c.recv(0, 1);
                a + 2 * b
            }
        });
        assert_eq!(out[1], 50);
    }

    #[test]
    fn typed_matching_distinguishes_payload_types() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, 1.5f64);
                c.send(1, 5, 99u32);
                0u32
            } else {
                // Claim the u32 first even though the f64 arrived first.
                let n: u32 = c.recv(0, 5);
                let x: f64 = c.recv(0, 5);
                n + x as u32
            }
        });
        assert_eq!(out[1], 100);
    }

    #[test]
    fn recv_any_reports_source() {
        let out = World::run(4, |c| {
            if c.rank() == 0 {
                let mut sum = 0usize;
                for _ in 0..3 {
                    let (src, v): (usize, usize) = c.recv_any(9);
                    assert_eq!(src, v);
                    sum += v;
                }
                sum
            } else {
                c.send(0, 9, c.rank());
                0
            }
        });
        assert_eq!(out[0], 6);
    }

    /// Regression test for the O(pending²) rescan: 10k messages received
    /// in fully reversed tag order must complete quickly because each
    /// receive only touches its own tag bucket.
    #[test]
    fn ten_thousand_out_of_order_messages() {
        const N: u64 = 10_000;
        let start = Instant::now();
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..N {
                    c.send(1, i, i as i64);
                }
                0
            } else {
                let mut sum = 0i64;
                for i in (0..N).rev() {
                    sum += c.recv::<i64>(0, i);
                }
                sum
            }
        });
        assert_eq!(out[1], (0..N as i64).sum::<i64>());
        // Generous bound: the old quadratic buffer took tens of seconds.
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "out-of-order receive too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn try_run_rejects_zero_rank_world() {
        let err = World::try_run(0, |c| c.rank()).unwrap_err();
        assert!(err.0.contains("at least one rank"));
        assert_eq!(World::try_run(1, |c| c.rank()).unwrap(), vec![0]);
    }

    #[test]
    fn run_report_rejects_zero_rank_world_and_bad_plan() {
        let plan = FaultPlan::new(1);
        assert!(World::run_report(0, &plan, |c| Ok(c.rank())).is_err());
        let bad = FaultPlan::new(1).with_drop(2.0);
        assert!(World::run_report(2, &bad, |c| Ok(c.rank())).is_err());
    }

    #[test]
    fn dropped_messages_recover_on_retry() {
        // Every envelope is dropped; retransmission at the first retry
        // boundary must still deliver it.
        let plan = FaultPlan::new(7)
            .with_drop(1.0)
            .with_timeouts(Duration::from_millis(5), 3);
        let report = World::run_report(2, &plan, |c| {
            if c.rank() == 0 {
                c.try_send(1, 3, 1234u32)?;
                Ok(0)
            } else {
                c.recv_timeout::<u32>(0, 3)
            }
        })
        .unwrap();
        assert_eq!(report.failed, 0);
        assert_eq!(*report.results[1].as_ref().unwrap(), 1234);
        assert!(report.retries >= 1, "drop recovery must count a retry");
        assert!(report.faults.dropped >= 1);
    }

    #[test]
    fn duplicates_are_discarded_and_delays_met_within_budget() {
        let plan = FaultPlan::new(9).with_duplicate(1.0).with_delay(0.5, 2_000);
        let report = World::run_report(2, &plan, |c| {
            if c.rank() == 0 {
                for i in 0..5u64 {
                    c.try_send(1, 10 + i, i)?;
                }
                Ok(0)
            } else {
                let mut sum = 0;
                for i in 0..5u64 {
                    sum += c.recv_timeout::<u64>(0, 10 + i)?;
                }
                Ok(sum)
            }
        })
        .unwrap();
        assert_eq!(report.failed, 0);
        assert_eq!(*report.results[1].as_ref().unwrap(), 10);
        assert!(report.faults.duplicated >= 5);
    }

    #[test]
    fn killed_rank_is_reaped_not_hung() {
        let plan = FaultPlan::new(3)
            .with_kill(1, 1)
            .with_timeouts(Duration::from_millis(5), 2);
        let report = World::run_report(2, &plan, |c| {
            if c.rank() == 0 {
                // The peer dies before sending; we must time out, not hang.
                match c.recv_timeout::<u32>(1, 1) {
                    Err(FaultError::Timeout { .. }) => Ok(0u32),
                    other => panic!("expected timeout, got {other:?}"),
                }
            } else {
                c.try_send(0, 1, 42u32)?;
                Ok(1)
            }
        })
        .unwrap();
        assert_eq!(report.faults.killed, 1);
        assert!(matches!(
            report.results[1],
            Err(FaultError::Killed { rank: 1, .. })
        ));
        assert_eq!(report.completed, 1);
    }

    /// A deterministic communication script (fixed per-rank send sequence,
    /// directed receives in fixed order) traced twice must yield the exact
    /// same event sequence: logical clocks, fault flags, reap records and
    /// all. This is the transport-level half of the byte-identical-trace
    /// guarantee; the CLI test asserts it end to end on the JSONL text.
    #[test]
    fn traced_chaos_script_replays_identically() {
        let run = || {
            let plan = FaultPlan::new(4242)
                .with_drop(0.4)
                .with_duplicate(0.4)
                .with_kill(2, 3)
                .with_timeouts(Duration::from_millis(5), 3);
            World::run_report_traced(3, &plan, true, |c| {
                if c.rank() == 0 {
                    let mut got = 0u64;
                    for src in 1..c.size() {
                        for s in 0..4u64 {
                            match c.recv_timeout::<u64>(src, (src as u64) << 8 | s) {
                                Ok(v) => got += v,
                                Err(FaultError::Timeout { .. }) => break,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    c.trace_event("gather_done", vec![f("got", got)]);
                    Ok(got)
                } else {
                    for s in 0..4u64 {
                        c.try_send(0, (c.rank() as u64) << 8 | s, s + 10)?;
                    }
                    Ok(0)
                }
            })
            .unwrap()
        };
        let (report_a, events_a) = run();
        let (report_b, events_b) = run();
        assert_eq!(report_a.faults, report_b.faults);
        assert_eq!(events_a, events_b);
        let text = repro_obs::render_jsonl(&events_a);
        let summary = repro_obs::validate_trace(&text).unwrap();
        assert_eq!(summary.events, events_a.len());
        // Rank 2 was killed at its third op: its kill event and the
        // world's reap record are part of the deterministic stream.
        assert!(events_a
            .iter()
            .any(|e| e.sub == "rank2" && e.kind == "kill"));
        assert!(events_a
            .iter()
            .any(|e| e.sub == "world" && e.kind == "reap"));
        // Untraced worlds record nothing.
        let plan = FaultPlan::new(4242);
        let (_, none) = World::run_report_traced(2, &plan, false, |c| Ok(c.rank())).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn fault_injection_is_replayable() {
        let run = || {
            let plan = FaultPlan::new(1234)
                .with_drop(0.3)
                .with_delay(0.3, 1_000)
                .with_duplicate(0.3)
                .with_reorder(0.3)
                .with_timeouts(Duration::from_millis(5), 3);
            World::run_report(3, &plan, |c| {
                if c.rank() == 0 {
                    let mut sum = 0;
                    for _ in 0..8 {
                        let (_, v) = c.recv_any_timeout::<u64>(77)?;
                        sum += v;
                    }
                    Ok(sum)
                } else {
                    for i in 0..4u64 {
                        c.try_send(0, 77, i + c.rank() as u64)?;
                    }
                    Ok(0)
                }
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        // Injection decisions are drawn per sent envelope from the seeded
        // per-rank stream, so the fault schedule is identical across runs
        // (retry counts may differ — they depend on thread timing).
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.results[0], b.results[0]);
    }
}
