//! Ranks, mailboxes, and typed point-to-point messaging.

use std::any::Any;
use std::sync::mpsc::{channel, Receiver, Sender};

/// An envelope in flight between ranks.
struct Envelope {
    from: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// The communicator handed to each rank's closure: its identity plus the
/// wiring to every peer.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet claimed (out-of-order buffering).
    pending: Vec<Envelope>,
    /// SPMD operation counter: every rank performs collectives in the same
    /// sequence, so equal counters identify the same collective instance.
    op_counter: u64,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Fresh tag for one collective operation; advances identically on all
    /// ranks (SPMD discipline).
    pub(crate) fn next_op_tag(&mut self) -> u64 {
        self.op_counter += 1;
        // High bit namespace separates collective tags from user tags.
        self.op_counter | (1 << 63)
    }

    /// Send `value` to rank `to` under `tag` (non-blocking, unbounded
    /// buffering).
    pub fn send<T: Any + Send>(&self, to: usize, tag: u64, value: T) {
        self.senders[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload: Box::new(value),
            })
            .expect("receiver rank terminated with messages in flight");
    }

    /// Receive the next message of type `T` with `tag` from rank `from`
    /// (blocking; unrelated messages are buffered, not dropped).
    pub fn recv<T: Any + Send>(&mut self, from: usize, tag: u64) -> T {
        self.recv_matching(tag, Some(from)).1
    }

    /// Receive the next message of type `T` with `tag` from **any** rank, in
    /// genuine arrival order. Returns `(source_rank, value)`.
    pub fn recv_any<T: Any + Send>(&mut self, tag: u64) -> (usize, T) {
        self.recv_matching(tag, None)
    }

    fn recv_matching<T: Any + Send>(&mut self, tag: u64, from: Option<usize>) -> (usize, T) {
        let matches = |e: &Envelope| {
            e.tag == tag && from.map_or(true, |f| f == e.from) && e.payload.is::<T>()
        };
        if let Some(idx) = self.pending.iter().position(matches) {
            let e = self.pending.swap_remove(idx);
            return (e.from, *e.payload.downcast::<T>().expect("checked"));
        }
        loop {
            let e = self
                .inbox
                .recv()
                .expect("world torn down while rank still receiving");
            if matches(&e) {
                return (e.from, *e.payload.downcast::<T>().expect("checked"));
            }
            self.pending.push(e);
        }
    }
}

/// The world: spawns `size` ranks as threads and runs the same closure on
/// each (SPMD), returning the per-rank results in rank order.
///
/// ```
/// use repro_mpisim::World;
///
/// let doubled = World::run(4, |comm| comm.rank() * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6]);
/// ```
pub struct World;

impl World {
    /// Run `f` on `size` ranks. Panics in any rank propagate.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        assert!(size >= 1, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut inboxes = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            inboxes.push(rx);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut comm = Comm {
                        rank,
                        size,
                        senders,
                        inbox,
                        pending: Vec::new(),
                        op_counter: 0,
                    };
                    f(&mut comm)
                }));
            }
            // Drop the root copies so channels close when ranks finish.
            drop(senders);
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_every_rank() {
        let ranks = World::run(8, |c| c.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_round_trip() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 42.5f64);
                c.recv::<String>(1, 8)
            } else {
                let x: f64 = c.recv(0, 7);
                c.send(0, 8, format!("got {x}"));
                "done".to_string()
            }
        });
        assert_eq!(out[0], "got 42.5");
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                // Send in one order ...
                c.send(1, 1, 10i64);
                c.send(1, 2, 20i64);
                0
            } else {
                // ... receive in the other.
                let b: i64 = c.recv(0, 2);
                let a: i64 = c.recv(0, 1);
                a + 2 * b
            }
        });
        assert_eq!(out[1], 50);
    }

    #[test]
    fn typed_matching_distinguishes_payload_types() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, 1.5f64);
                c.send(1, 5, 99u32);
                0u32
            } else {
                // Claim the u32 first even though the f64 arrived first.
                let n: u32 = c.recv(0, 5);
                let x: f64 = c.recv(0, 5);
                n + x as u32
            }
        });
        assert_eq!(out[1], 100);
    }

    #[test]
    fn recv_any_reports_source() {
        let out = World::run(4, |c| {
            if c.rank() == 0 {
                let mut sum = 0usize;
                for _ in 0..3 {
                    let (src, v): (usize, usize) = c.recv_any(9);
                    assert_eq!(src, v);
                    sum += v;
                }
                sum
            } else {
                c.send(0, 9, c.rank());
                0
            }
        });
        assert_eq!(out[0], 6);
    }
}
