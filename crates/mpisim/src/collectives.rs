//! Collectives: barrier, broadcast, allreduce-max, and accumulator
//! reduction with pluggable topologies.

use crate::comm::Comm;
use crate::fault::{ConfigError, FaultError};
use repro_fp::rng::DetRng;
use repro_runtime::{MergeOrder, ReductionPlan, Runtime};
use repro_select::{DataProfile, HeuristicSelector, Selector, Tolerance};
use repro_sum::{Accumulator, AlgoAccumulator, Algorithm};
use repro_tree::topology::{heal, HealedTree};
use std::any::Any;
use std::time::{Duration, Instant};

/// Reduce this rank's chunk on the shared runtime pool, merging chunk
/// partials along the plan's fixed tree. The plan depends only on the
/// chunk length, so the local partial is deterministic for every worker
/// count — rank-local parallelism never becomes another nondeterminism
/// source on top of the message schedule.
fn local_accumulate(values: &[f64], algorithm: Algorithm) -> AlgoAccumulator {
    let plan = ReductionPlan::for_len(values.len());
    Runtime::global().accumulate_planned(
        values,
        &plan,
        || algorithm.new_accumulator(),
        MergeOrder::Plan,
    )
}

/// The communication pattern of a reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceTopology {
    /// Binomial tree (recursive halving): `log₂ size` rounds, the pattern
    /// MPI implementations favour; merge order fixed by rank arithmetic.
    Binomial,
    /// Every rank sends straight to the root, which merges **in arrival
    /// order** — the nondeterministic pattern of an opportunistic runtime.
    FlatArrival,
    /// Rank `size−1 → … → 1 → 0` daisy chain: the "completely unbalanced"
    /// tree of the paper's Figure 1b, distributed.
    Chain,
}

/// Knobs for one reduction.
#[derive(Clone, Copy, Debug)]
pub struct ReduceConfig {
    /// Communication pattern.
    pub topology: ReduceTopology,
    /// If nonzero, each rank sleeps a seeded-random duration up to this
    /// many microseconds before contributing — scrambling arrival order
    /// (the "intermittent faults and inconsistently available resources"
    /// of the paper, in miniature).
    pub jitter_us: u64,
    /// Seed for the jitter draw.
    pub jitter_seed: u64,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        Self {
            topology: ReduceTopology::Binomial,
            jitter_us: 0,
            jitter_seed: 0,
        }
    }
}

/// Largest jitter a [`ReduceConfig`] accepts (10 seconds): anything above
/// is a typo'd unit, and would previously only surface as a hung worker
/// thread.
pub const MAX_JITTER_US: u64 = 10_000_000;

impl ReduceConfig {
    /// Build a validated configuration, rejecting out-of-range jitter with
    /// a proper `Err` instead of letting a worker thread stall on a
    /// ten-minute sleep.
    pub fn validated(
        topology: ReduceTopology,
        jitter_us: u64,
        jitter_seed: u64,
    ) -> Result<Self, ConfigError> {
        let cfg = Self {
            topology,
            jitter_us,
            jitter_seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check the configuration's bounds.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.jitter_us > MAX_JITTER_US {
            return Err(ConfigError(format!(
                "jitter_us {} exceeds the {MAX_JITTER_US}µs (10s) cap",
                self.jitter_us
            )));
        }
        Ok(())
    }
}

fn apply_jitter(cfg: &ReduceConfig, rank: usize) {
    if cfg.jitter_us > 0 {
        let mut rng =
            DetRng::seed_from_u64(cfg.jitter_seed ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15));
        std::thread::sleep(Duration::from_micros(rng.random_range(0..cfg.jitter_us)));
    }
}

/// Block until every rank has arrived (dissemination barrier).
pub fn barrier(comm: &mut Comm) {
    let tag = comm.next_op_tag();
    let size = comm.size();
    if size == 1 {
        return;
    }
    let mut round = 1usize;
    while round < size {
        let to = (comm.rank() + round) % size;
        let from = (comm.rank() + size - round) % size;
        let round_tag = tag ^ ((round as u64) << 32);
        comm.send(to, round_tag, ());
        let () = comm.recv(from, round_tag);
        round <<= 1;
    }
}

/// Broadcast `value` from `root` to every rank (binomial tree).
pub fn broadcast<T: Any + Send + Clone>(comm: &mut Comm, root: usize, value: Option<T>) -> T {
    let tag = comm.next_op_tag();
    let size = comm.size();
    // Rotate so the root is virtual rank 0.
    let vrank = (comm.rank() + size - root) % size;
    let mut have: Option<T> = if vrank == 0 {
        Some(value.expect("root must supply the broadcast value"))
    } else {
        None
    };
    // MPICH-style binomial broadcast over virtual ranks: receive from the
    // parent at the lowest set bit, then forward to children below it.
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let src = (vrank - mask + root) % size;
            have = Some(comm.recv(src, tag));
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        let child = vrank + mask;
        if child < size {
            let v = have.clone().expect("value present before forwarding");
            comm.send((child + root) % size, tag, v);
        }
        mask >>= 1;
    }
    have.expect("broadcast did not reach this rank")
}

/// Allreduce-max of one scalar: reduce to rank 0 over a chain-free binomial
/// tree, then broadcast back. Exact (max is associative/commutative), so
/// topology does not matter for the value.
pub fn allreduce_max(comm: &mut Comm, x: f64) -> f64 {
    let tag = comm.next_op_tag();
    let size = comm.size();
    let rank = comm.rank();
    let mut acc = x;
    // Reduce up the binomial tree.
    let mut mask = 1usize;
    while mask < size {
        if rank & mask != 0 {
            comm.send(rank & !mask, tag, acc);
            break;
        }
        let peer = rank | mask;
        if peer < size {
            let other: f64 = comm.recv(peer, tag);
            acc = acc.max(other);
        }
        mask <<= 1;
    }
    broadcast(comm, 0, if rank == 0 { Some(acc) } else { None })
}

/// Reduce per-rank accumulators to `root` with the configured topology.
/// Returns `Some(merged)` on the root, `None` elsewhere.
pub fn reduce_accumulator<A>(
    comm: &mut Comm,
    local: A,
    root: usize,
    cfg: &ReduceConfig,
) -> Option<A>
where
    A: Accumulator + Any,
{
    let tag = comm.next_op_tag();
    let size = comm.size();
    let rank = comm.rank();
    apply_jitter(cfg, rank);
    match cfg.topology {
        ReduceTopology::FlatArrival => {
            if rank == root {
                let mut acc = local;
                for _ in 0..size - 1 {
                    let (_, partial): (usize, A) = comm.recv_any(tag);
                    acc.merge(&partial);
                }
                Some(acc)
            } else {
                comm.send(root, tag, local);
                None
            }
        }
        ReduceTopology::Chain => {
            // Virtual chain with root at position 0.
            let vrank = (rank + size - root) % size;
            let mut acc = local;
            if vrank + 1 < size {
                let src = (vrank + 1 + root) % size;
                let upstream: A = comm.recv(src, tag);
                acc.merge(&upstream);
            }
            if vrank > 0 {
                let dst = (vrank - 1 + root) % size;
                comm.send(dst, tag, acc);
                None
            } else {
                Some(acc)
            }
        }
        ReduceTopology::Binomial => {
            let vrank = (rank + size - root) % size;
            let mut acc = local;
            let mut mask = 1usize;
            while mask < size {
                if vrank & mask != 0 {
                    let dst = (vrank - mask + root) % size;
                    comm.send(dst, tag, acc);
                    return None;
                }
                let peer = vrank | mask;
                if peer < size {
                    let src = (peer + root) % size;
                    let partial: A = comm.recv(src, tag);
                    acc.merge(&partial);
                }
                mask <<= 1;
            }
            Some(acc)
        }
    }
}

/// Allreduce: reduce the accumulators to rank 0, broadcast the finalized
/// scalar back. Every rank returns the same value (bitwise).
pub fn allreduce_sum_acc<A>(comm: &mut Comm, local: A, cfg: &ReduceConfig) -> f64
where
    A: Accumulator + Any,
{
    let merged = reduce_accumulator(comm, local, 0, cfg).map(|a| a.finalize());
    broadcast(comm, 0, merged)
}

/// Gather one value per rank to `root`, in rank order. Returns
/// `Some(values)` on the root, `None` elsewhere.
pub fn gather<T: Any + Send>(comm: &mut Comm, value: T, root: usize) -> Option<Vec<T>> {
    let tag = comm.next_op_tag();
    if comm.rank() == root {
        let size = comm.size();
        let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
        slots[root] = Some(value);
        for _ in 0..size - 1 {
            let (from, v): (usize, T) = comm.recv_any(tag);
            debug_assert!(slots[from].is_none(), "duplicate gather contribution");
            slots[from] = Some(v);
        }
        Some(
            slots
                .into_iter()
                .map(|s| s.expect("all ranks contribute"))
                .collect(),
        )
    } else {
        comm.send(root, tag, value);
        None
    }
}

/// Distributed intelligent reduction — the paper's advocated system, in its
/// natural habitat: every rank profiles its local chunk, the partial
/// profiles reduce and broadcast (one cheap collective), every rank then
/// **deterministically selects the same operator** from the global profile,
/// and the reduction runs with it.
///
/// Returns `(sum, chosen_algorithm)` on the root, `None` elsewhere; the
/// selection itself is visible on all ranks via the returned algorithm in
/// the root's tuple (ranks needing it can broadcast).
pub fn adaptive_reduce_sum(
    comm: &mut Comm,
    local_values: &[f64],
    tolerance: Tolerance,
    root: usize,
    cfg: &ReduceConfig,
) -> Option<(f64, Algorithm)> {
    // 1. Profile locally (chunk-parallel on the runtime pool);
    // 2. allreduce the profile (binomial up, bcast down).
    let local = repro_select::profile_parallel(local_values);
    let tag = comm.next_op_tag();
    let size = comm.size();
    let rank = comm.rank();
    let mut acc = local;
    let mut mask = 1usize;
    while mask < size {
        if rank & mask != 0 {
            comm.send(rank & !mask, tag, acc);
            break;
        }
        let peer = rank | mask;
        if peer < size {
            let other: DataProfile = comm.recv(peer, tag);
            acc.merge(&other);
        }
        mask <<= 1;
    }
    let global: DataProfile = broadcast(comm, 0, (rank == 0).then_some(acc));
    // 3. Same profile + same deterministic selector = same choice everywhere.
    let algorithm = HeuristicSelector::default().choose(&global, tolerance);
    // 4. Reduce with the chosen operator, local chunk on the runtime pool.
    let local_acc = local_accumulate(local_values, algorithm);
    reduce_accumulator(comm, local_acc, root, cfg).map(|a| (a.finalize(), algorithm))
}

/// Inclusive prefix scan (`MPI_Scan`): rank `r` returns the reduction of
/// ranks `0..=r`'s accumulators, computed with the Hillis–Steele doubling
/// schedule (`⌈log₂ size⌉` rounds).
///
/// Prefix semantics are inherently rank-ordered, so unlike `reduce` there is
/// no arrival-order variant — but the *merge association* still differs
/// between schedules, so only reproducible operators give schedule-stable
/// prefixes (see the `scan_*` tests).
pub fn scan_accumulator<A>(comm: &mut Comm, local: A) -> A
where
    A: Accumulator + Any + Clone,
{
    let tag = comm.next_op_tag();
    let size = comm.size();
    let rank = comm.rank();
    let mut acc = local;
    let mut dist = 1usize;
    let mut round = 0u64;
    while dist < size {
        let round_tag = tag ^ (round << 32);
        if rank + dist < size {
            comm.send(rank + dist, round_tag, acc.clone());
        }
        if rank >= dist {
            let incoming: A = comm.recv(rank - dist, round_tag);
            // Prefix order: the incoming partial covers lower ranks.
            let mut merged = incoming;
            merged.merge(&acc);
            acc = merged;
        }
        dist <<= 1;
        round += 1;
    }
    acc
}

/// All-to-all personalized exchange: rank `r` supplies one value per
/// destination and receives one value per source, in source-rank order.
pub fn alltoall<T: Any + Send>(comm: &mut Comm, outgoing: Vec<T>) -> Vec<T> {
    let tag = comm.next_op_tag();
    let size = comm.size();
    assert_eq!(outgoing.len(), size, "one outgoing value per rank required");
    let me = comm.rank();
    let mut keep: Option<T> = None;
    for (to, v) in outgoing.into_iter().enumerate() {
        if to == me {
            keep = Some(v);
        } else {
            comm.send(to, tag, v);
        }
    }
    let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
    slots[me] = keep;
    for _ in 0..size - 1 {
        let (from, v): (usize, T) = comm.recv_any(tag);
        debug_assert!(slots[from].is_none());
        slots[from] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every rank contributes"))
        .collect()
}

/// Healing rounds a fault-tolerant collective attempts before giving up.
/// Every failed round is caused by a rank dying after the membership
/// snapshot (permanent — the set shrinks next round) or by transient
/// slowness (resolved by retrying with fresh tags), so the bound is never
/// reached in practice; it guarantees termination regardless.
const MAX_HEAL_ROUNDS: u64 = 16;

/// Sub-tag for `(round, phase)` of a fault-tolerant collective. Base op
/// tags keep their entropy in the low bits, so the high nibbles are free
/// to namespace rounds and phases without collisions.
fn phase_tag(base: u64, round: u64, phase: u64) -> u64 {
    base ^ (round << 40) ^ (phase << 36)
}

/// Outcome of one fault-tolerant collective on one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct FtOutcome<T> {
    /// The collective's result: `Some` on the root (and on every survivor
    /// for allreduce variants), `None` on non-root ranks of a reduce.
    pub value: Option<T>,
    /// The sorted survivor set the result was computed over.
    pub survivors: Vec<usize>,
    /// Rounds the collective took (1 = no healing needed).
    pub rounds: u64,
}

/// One attempt at reducing over the healed tree. A `Timeout` error means a
/// link on this rank's path died mid-round (round failure, root will
/// re-plan); other errors are terminal for this rank.
fn reduce_round<A>(
    comm: &mut Comm,
    tree: &HealedTree,
    local: A,
    topology: ReduceTopology,
    tag: u64,
    budget: Duration,
) -> Result<Option<A>, FaultError>
where
    A: Accumulator + Any,
{
    let rank = comm.rank();
    let m = tree.len();
    let v = tree.vrank_of(rank).expect("caller verified membership");
    let mut acc = local;
    match topology {
        ReduceTopology::FlatArrival => {
            if v == 0 {
                let deadline = Instant::now() + budget.saturating_mul(2);
                for _ in 1..m {
                    let (_, partial): (usize, A) = comm.recv_deadline(None, tag, deadline)?;
                    acc.merge(&partial);
                }
                Ok(Some(acc))
            } else {
                comm.try_send(tree.rank_of(0), tag, acc)?;
                Ok(None)
            }
        }
        ReduceTopology::Chain => {
            if v + 1 < m {
                let upstream: A = comm.recv_timeout(tree.rank_of(v + 1), tag)?;
                acc.merge(&upstream);
            }
            if v > 0 {
                comm.try_send(tree.rank_of(v - 1), tag, acc)?;
                Ok(None)
            } else {
                Ok(Some(acc))
            }
        }
        ReduceTopology::Binomial => {
            let mut mask = 1usize;
            while mask < m {
                if v & mask != 0 {
                    comm.try_send(tree.rank_of(v & !mask), tag, acc)?;
                    return Ok(None);
                }
                let child = v | mask;
                if child < m {
                    let partial: A = comm.recv_timeout(tree.rank_of(child), tag)?;
                    acc.merge(&partial);
                }
                mask <<= 1;
            }
            Ok(Some(acc))
        }
    }
}

/// Self-healing reduction of per-rank accumulators to `root`.
///
/// Each round: (1) live ranks ping the root; (2) the root snapshots the
/// **sorted** survivor set and distributes it; (3) everyone derives the
/// same [`HealedTree`] from that set and reduces over it with timed links,
/// each rank restarting from its original local accumulator. A dead or
/// timed-out child anywhere blocks exactly one partial's path to the root,
/// so the root itself observes the failure as a timeout, re-plans, and
/// retries — a healing round, counted in [`crate::WorldReport::heals`].
///
/// Because the merge association is a pure function of the final survivor
/// set (never of arrival order or of which ranks died first), reproducible
/// operators yield results **bitwise identical** to a fault-free run over
/// the same survivor set — the paper's reproducibility contract extended
/// to degraded mode.
///
/// Errors: [`FaultError::Killed`] if this rank dies, [`FaultError::Excluded`]
/// if it is alive but missed the membership snapshot,
/// [`FaultError::RootUnreachable`] if the root dies.
pub fn ft_reduce_accumulator<A>(
    comm: &mut Comm,
    local: A,
    root: usize,
    cfg: &ReduceConfig,
) -> Result<FtOutcome<A>, FaultError>
where
    A: Accumulator + Any,
{
    cfg.validate()?;
    let base = comm.next_op_tag();
    let size = comm.size();
    let rank = comm.rank();
    assert!(root < size, "root must be a valid rank");
    apply_jitter(cfg, rank);
    if size == 1 {
        return Ok(FtOutcome {
            value: Some(local),
            survivors: vec![rank],
            rounds: 1,
        });
    }
    let budget = comm.link_budget();
    for round in 0..MAX_HEAL_ROUNDS {
        let t_ping = phase_tag(base, round, 0);
        let t_member = phase_tag(base, round, 1);
        let t_part = phase_tag(base, round, 2);
        let t_out = phase_tag(base, round, 3);

        // Phase 1+2: membership. The root collects pings until the budget
        // expires (each expired wait also releases drop-withheld traffic,
        // so transiently lost pings still count), sorts the survivor set,
        // and distributes it.
        let survivors: Vec<usize> = if rank == root {
            let mut alive = vec![root];
            let deadline = Instant::now() + budget;
            while alive.len() < size {
                match comm.recv_deadline::<usize>(None, t_ping, deadline) {
                    Ok((from, _)) => {
                        if !alive.contains(&from) {
                            alive.push(from);
                        }
                    }
                    Err(FaultError::Timeout { .. }) => break,
                    Err(e) => return Err(e),
                }
            }
            alive.sort_unstable();
            for &s in &alive {
                if s != root {
                    comm.try_send(s, t_member, alive.clone())?;
                }
            }
            alive
        } else {
            comm.try_send(root, t_ping, rank)?;
            let deadline = Instant::now() + budget.saturating_mul(3);
            match comm.recv_deadline::<Vec<usize>>(Some(root), t_member, deadline) {
                Ok((_, v)) => v,
                Err(FaultError::Timeout { .. }) => {
                    return Err(FaultError::RootUnreachable { root })
                }
                Err(e) => return Err(e),
            }
        };
        if !survivors.contains(&rank) {
            return Err(FaultError::Excluded { rank });
        }

        // Phase 3: reduce over the healed tree, restarting from the
        // original local accumulator so the final association depends only
        // on the final survivor set.
        let tree = heal(&survivors, root);
        let attempt = match reduce_round(comm, &tree, local.clone(), cfg.topology, t_part, budget) {
            Ok(v) => Some(v),
            Err(FaultError::Timeout { .. }) => None,
            Err(e) => return Err(e),
        };

        // Phase 4: outcome. Root success ⇒ every partial arrived (a failure
        // anywhere blocks a path to the root); root failure ⇒ heal and
        // retry with fresh tags.
        if rank == root {
            match attempt {
                Some(value) => {
                    for &s in &survivors {
                        if s != root {
                            comm.try_send(s, t_out, true)?;
                        }
                    }
                    return Ok(FtOutcome {
                        value,
                        survivors,
                        rounds: round + 1,
                    });
                }
                None => {
                    for &s in &survivors {
                        if s != root {
                            comm.try_send(s, t_out, false)?;
                        }
                    }
                    comm.note_heal();
                }
            }
        } else {
            // The root may still be cascading through its own timeouts;
            // scale the wait with the tree depth plus slack.
            let depth = usize::BITS - survivors.len().leading_zeros() + 3;
            let deadline = Instant::now() + budget.saturating_mul(depth);
            match comm.recv_deadline::<bool>(Some(root), t_out, deadline) {
                Ok((_, true)) => {
                    return Ok(FtOutcome {
                        value: None,
                        survivors,
                        rounds: round + 1,
                    })
                }
                Ok((_, false)) => {} // heal: next round
                Err(FaultError::Timeout { .. }) => {
                    return Err(FaultError::RootUnreachable { root })
                }
                Err(e) => return Err(e),
            }
        }
    }
    Err(FaultError::TooManyRounds {
        rounds: MAX_HEAL_ROUNDS as usize,
    })
}

/// Self-healing [`reduce_sum`]: local chunk on the runtime pool, global
/// reduction via [`ft_reduce_accumulator`].
pub fn ft_reduce_sum(
    comm: &mut Comm,
    local_values: &[f64],
    algorithm: Algorithm,
    root: usize,
    cfg: &ReduceConfig,
) -> Result<FtOutcome<f64>, FaultError> {
    let acc = local_accumulate(local_values, algorithm);
    let out = ft_reduce_accumulator(comm, acc, root, cfg)?;
    Ok(FtOutcome {
        value: out.value.map(|a| a.finalize()),
        survivors: out.survivors,
        rounds: out.rounds,
    })
}

/// Self-healing allreduce: reduce to rank 0, then flat-broadcast the
/// finalized scalar to every survivor. Every survivor returns the same
/// value bitwise; if rank 0 dies the collective fails with
/// [`FaultError::RootUnreachable`] (the root is the membership authority).
pub fn ft_allreduce_sum_acc<A>(
    comm: &mut Comm,
    local: A,
    cfg: &ReduceConfig,
) -> Result<FtOutcome<f64>, FaultError>
where
    A: Accumulator + Any,
{
    let out = ft_reduce_accumulator(comm, local, 0, cfg)?;
    let tag = comm.next_op_tag();
    if comm.rank() == 0 {
        let sum = out
            .value
            .as_ref()
            .expect("root holds the merged accumulator")
            .finalize();
        for &s in &out.survivors {
            if s != 0 {
                comm.try_send(s, tag, sum)?;
            }
        }
        Ok(FtOutcome {
            value: Some(sum),
            survivors: out.survivors,
            rounds: out.rounds,
        })
    } else {
        let deadline = Instant::now() + comm.link_budget().saturating_mul(2);
        match comm.recv_deadline::<f64>(Some(0), tag, deadline) {
            Ok((_, sum)) => Ok(FtOutcome {
                value: Some(sum),
                survivors: out.survivors,
                rounds: out.rounds,
            }),
            Err(FaultError::Timeout { .. }) => Err(FaultError::RootUnreachable { root: 0 }),
            Err(e) => Err(e),
        }
    }
}

/// Self-healing [`adaptive_reduce_sum`]: the root gathers whatever data
/// profiles arrive within the link budget, selects once, flat-broadcasts
/// the choice, and the reduction runs fault-tolerantly with the chosen
/// operator. Profiling degrades gracefully — a missing profile can only
/// make the selection more conservative for the data actually summed.
pub fn ft_adaptive_reduce_sum(
    comm: &mut Comm,
    local_values: &[f64],
    tolerance: Tolerance,
    root: usize,
    cfg: &ReduceConfig,
) -> Result<FtOutcome<(f64, Algorithm)>, FaultError> {
    cfg.validate()?;
    let profile = repro_select::profile_parallel(local_values);
    let base = comm.next_op_tag();
    let t_prof = phase_tag(base, 0, 0);
    let t_choice = phase_tag(base, 0, 1);
    let size = comm.size();
    let rank = comm.rank();
    let algorithm = if rank == root {
        let mut global = profile;
        let deadline = Instant::now() + comm.link_budget();
        let mut got = 1;
        while got < size {
            match comm.recv_deadline::<DataProfile>(None, t_prof, deadline) {
                Ok((_, p)) => {
                    global.merge(&p);
                    got += 1;
                }
                Err(FaultError::Timeout { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        let choice = HeuristicSelector::default().choose(&global, tolerance);
        for s in 0..size {
            if s != root {
                comm.try_send(s, t_choice, choice)?;
            }
        }
        choice
    } else {
        comm.try_send(root, t_prof, profile)?;
        let deadline = Instant::now() + comm.link_budget().saturating_mul(3);
        match comm.recv_deadline::<Algorithm>(Some(root), t_choice, deadline) {
            Ok((_, a)) => a,
            Err(FaultError::Timeout { .. }) => return Err(FaultError::RootUnreachable { root }),
            Err(e) => return Err(e),
        }
    };
    let acc = local_accumulate(local_values, algorithm);
    let out = ft_reduce_accumulator(comm, acc, root, cfg)?;
    Ok(FtOutcome {
        value: out.value.map(|a| (a.finalize(), algorithm)),
        survivors: out.survivors,
        rounds: out.rounds,
    })
}

/// The paper's Section IV-C pattern in one call: each rank reduces its local
/// chunk with `algorithm`, then the partials are globally reduced. Returns
/// the final sum on the root, `None` elsewhere.
pub fn reduce_sum(
    comm: &mut Comm,
    local_values: &[f64],
    algorithm: Algorithm,
    root: usize,
    cfg: &ReduceConfig,
) -> Option<f64> {
    let acc = local_accumulate(local_values, algorithm);
    reduce_accumulator(comm, acc, root, cfg).map(|a| a.finalize())
}

/// An accumulator that carries an exact shadow next to the real operator:
/// the correctly-rounded sum (for exact ulp deviations) and the exact
/// absolute-value sum plus element count (for the Higham bound
/// `n·u·Σ|xᵢ|`). The shadow travels **inside** the collective's payload,
/// so distributed telemetry needs no second communication round — and
/// because [`repro_fp::Superaccumulator`] merges exactly, the shadow is
/// topology- and arrival-order-invariant even when the inner operator is
/// not.
#[derive(Clone)]
pub struct ShadowedAcc<A> {
    /// The real operator under observation.
    pub inner: A,
    /// Correctly rounded exact sum of everything absorbed.
    pub exact: repro_fp::Superaccumulator,
    /// Exact sum of absolute values.
    pub abs: repro_fp::Superaccumulator,
    /// Elements absorbed.
    pub n: usize,
}

impl<A: Accumulator> ShadowedAcc<A> {
    /// Wrap `inner` (already holding `values`' reduction) with the exact
    /// shadow of the same `values`.
    pub fn over(inner: A, values: &[f64]) -> Self {
        let mut exact = repro_fp::Superaccumulator::new();
        let mut abs = repro_fp::Superaccumulator::new();
        exact.add_slice(values);
        abs.add_slice_abs(values);
        ShadowedAcc {
            inner,
            exact,
            abs,
            n: values.len(),
        }
    }

    /// The Higham bound `n·u·Σ|xᵢ|` over everything absorbed so far.
    pub fn bound(&self) -> f64 {
        repro_fp::higham_bound(self.n, self.abs.to_f64())
    }
}

impl<A: Accumulator> Accumulator for ShadowedAcc<A> {
    fn add(&mut self, x: f64) {
        self.inner.add(x);
        self.exact.add(x);
        self.abs.add(x.abs());
        self.n += 1;
    }

    fn merge(&mut self, other: &Self) {
        self.inner.merge(&other.inner);
        self.exact.merge(&other.exact);
        self.abs.merge(&other.abs);
        self.n += other.n;
    }

    fn finalize(&self) -> f64 {
        self.inner.finalize()
    }
}

/// Emit one `node` telemetry event into this rank's trace scope: the
/// distributed counterpart of the runtime engine's per-node records, with
/// the same field schema so `trace diff` aligns them uniformly.
fn emit_node<A: Accumulator>(
    comm: &mut Comm,
    telemetry: &repro_obs::TelemetryConfig,
    ordinal: u64,
    node: String,
    start: usize,
    shadow: &ShadowedAcc<A>,
) {
    use repro_obs::f;
    let partial = shadow.inner.finalize();
    let mut fields = vec![
        f("node", node),
        f("start", start),
        f("len", shadow.n),
        f("sum_bits", format!("{:016x}", partial.to_bits())),
        f("bound", shadow.bound()),
    ];
    if telemetry.sample_exact(ordinal) {
        let exact = shadow.exact.to_f64();
        fields.push(f("ulps", repro_fp::ulp_distance(partial, exact)));
        fields.push(f("exact_bits", format!("{:016x}", exact.to_bits())));
    }
    comm.trace_event("node", fields);
}

/// [`reduce_sum`] with numerical-accuracy telemetry: each rank emits one
/// `node` event for its local partial (id `leaf.r{rank}`, interval
/// `[global_start, global_start + len)` in the **global** element space the
/// caller distributes), and the root emits one `node` event for the merged
/// result (id `root`, interval `[0, global_len)`). Exact shadows ride
/// inside the collective payload via [`ShadowedAcc`], so the root's Higham
/// bound and ulp deviation cover the whole distributed input. Sampling
/// ordinals are `rank + 1` for leaves and `0` for the root, so any nonzero
/// sampling period always measures the root exactly.
///
/// With telemetry disabled this is byte-for-byte [`reduce_sum`]: no extra
/// events, no shadow payloads, no extra messages.
#[allow(clippy::too_many_arguments)]
pub fn reduce_sum_telemetry(
    comm: &mut Comm,
    local_values: &[f64],
    global_start: usize,
    global_len: usize,
    algorithm: Algorithm,
    root: usize,
    cfg: &ReduceConfig,
    telemetry: repro_obs::TelemetryConfig,
) -> Option<f64> {
    if !telemetry.enabled() {
        return reduce_sum(comm, local_values, algorithm, root, cfg);
    }
    let inner = local_accumulate(local_values, algorithm);
    let local = ShadowedAcc::over(inner, local_values);
    let rank = comm.rank();
    emit_node(
        comm,
        &telemetry,
        rank as u64 + 1,
        format!("leaf.r{rank}"),
        global_start,
        &local,
    );
    let merged = reduce_accumulator(comm, local, root, cfg)?;
    debug_assert_eq!(merged.n, global_len, "global_len must cover all ranks");
    emit_node(comm, &telemetry, 0, "root".to_string(), 0, &merged);
    Some(merged.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use repro_sum::BinnedSum;

    fn chunks(values: &[f64], size: usize, rank: usize) -> &[f64] {
        let per = values.len().div_ceil(size);
        let lo = (rank * per).min(values.len());
        let hi = ((rank + 1) * per).min(values.len());
        &values[lo..hi]
    }

    #[test]
    fn barrier_completes() {
        let out = World::run(7, |c| {
            barrier(c);
            barrier(c);
            c.rank()
        });
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn broadcast_reaches_all_ranks_any_root() {
        for root in [0usize, 1, 5] {
            let out = World::run(6, move |c| {
                let v = broadcast(
                    c,
                    root,
                    (c.rank() == root).then(|| format!("payload-{root}")),
                );
                v
            });
            assert!(
                out.iter().all(|v| v == &format!("payload-{root}")),
                "root {root}"
            );
        }
    }

    #[test]
    fn allreduce_max_agrees_everywhere() {
        let out = World::run(9, |c| allreduce_max(c, (c.rank() as f64 * 7.3) % 5.0));
        let expected = (0..9)
            .map(|r| (r as f64 * 7.3) % 5.0)
            .fold(f64::MIN, f64::max);
        assert!(out.iter().all(|&m| m == expected), "{out:?} vs {expected}");
    }

    #[test]
    fn all_topologies_reduce_exact_data_identically() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        for topo in [
            ReduceTopology::Binomial,
            ReduceTopology::FlatArrival,
            ReduceTopology::Chain,
        ] {
            let cfg = ReduceConfig {
                topology: topo,
                ..Default::default()
            };
            let out = World::run(5, |c| {
                let mine = chunks(&values, c.size(), c.rank());
                reduce_sum(c, mine, Algorithm::Standard, 0, &cfg)
            });
            assert_eq!(out[0], Some(499_500.0), "{topo:?}");
            assert!(out[1..].iter().all(|o| o.is_none()));
        }
    }

    #[test]
    fn binned_reduction_is_bitwise_stable_under_jitter() {
        let values = repro_gen::zero_sum_with_range(20_000, 32, 55);
        let reference = {
            let mut acc = BinnedSum::new(3);
            acc.add_slice(&values);
            acc.finalize()
        };
        for seed in 0..5 {
            let cfg = ReduceConfig {
                topology: ReduceTopology::FlatArrival,
                jitter_us: 300,
                jitter_seed: seed,
            };
            let out = World::run(8, |c| {
                let mine = chunks(&values, c.size(), c.rank());
                reduce_sum(c, mine, Algorithm::PR, 0, &cfg)
            });
            let got = out[0].unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "jitter seed {seed}");
        }
    }

    #[test]
    fn nonzero_root_receives_the_result() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let cfg = ReduceConfig {
            topology: ReduceTopology::Chain,
            ..Default::default()
        };
        let out = World::run(4, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            reduce_sum(c, mine, Algorithm::Composite, 2, &cfg)
        });
        assert!(out[2].is_some());
        assert_eq!(out[2].unwrap(), repro_fp::exact_sum(&values));
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
    }

    #[test]
    fn adaptive_reduce_selects_consistently_and_correctly() {
        // Hostile global data: every rank's chunk is benign-looking in
        // isolation except for the cancellation across ranks; the GLOBAL
        // profile sees k = inf and escalates.
        let values = repro_gen::zero_sum_with_range(20_000, 24, 5);
        let cfg = ReduceConfig {
            topology: ReduceTopology::Binomial,
            ..Default::default()
        };
        let out = World::run(8, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            adaptive_reduce_sum(c, mine, Tolerance::AbsoluteSpread(1e-10), 0, &cfg)
        });
        let (sum, alg) = out[0].unwrap();
        assert!(out[1..].iter().all(|o| o.is_none()));
        assert!(
            alg.cost_rank() > Algorithm::Standard.cost_rank(),
            "global profile must escalate: chose {alg}"
        );
        assert!(repro_fp::abs_error(sum, &values) <= 1e-9);

        // Benign data keeps the cheap operator.
        let benign: Vec<f64> = (1..=20_000).map(|i| i as f64).collect();
        let out = World::run(8, |c| {
            let mine = chunks(&benign, c.size(), c.rank());
            adaptive_reduce_sum(c, mine, Tolerance::AbsoluteSpread(1e-4), 0, &cfg)
        });
        let (sum, alg) = out[0].unwrap();
        assert_eq!(alg, Algorithm::Standard);
        assert_eq!(sum, repro_fp::exact_sum(&benign));
    }

    #[test]
    fn adaptive_reduce_bitwise_is_jitter_stable() {
        let values = repro_gen::zero_sum_with_range(10_000, 32, 9);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4 {
            let cfg = ReduceConfig {
                topology: ReduceTopology::FlatArrival,
                jitter_us: 200,
                jitter_seed: seed,
            };
            let out = World::run(6, |c| {
                let mine = chunks(&values, c.size(), c.rank());
                adaptive_reduce_sum(c, mine, Tolerance::Bitwise, 0, &cfg)
            });
            let (sum, alg) = out[0].unwrap();
            assert!(alg.is_reproducible());
            seen.insert(sum.to_bits());
        }
        assert_eq!(seen.len(), 1, "bitwise tolerance must survive jitter");
    }

    #[test]
    fn scan_produces_rank_prefixes() {
        let out = World::run(7, |c| {
            let mut acc = Algorithm::Standard.new_accumulator();
            acc.add((c.rank() + 1) as f64);
            scan_accumulator(c, acc).finalize()
        });
        // Prefix of 1..=r+1 is the triangular number.
        let expect: Vec<f64> = (1..=7).map(|r| (r * (r + 1)) as f64 / 2.0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn scan_with_binned_is_schedule_stable() {
        // Each rank holds an ill-conditioned chunk; the doubling schedule
        // associates merges differently per rank, but the binned prefix of
        // rank r must equal the sequential reduction of chunks 0..=r, bitwise.
        let values = repro_gen::zero_sum_with_range(8_192, 24, 77);
        let ranks = 8;
        let out = World::run(ranks, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            let mut acc = BinnedSum::new(3);
            acc.add_slice(mine);
            scan_accumulator(c, acc).finalize()
        });
        for (r, &got) in out.iter().enumerate() {
            let hi = ((r + 1) * values.len().div_ceil(ranks)).min(values.len());
            let mut want = BinnedSum::new(3);
            want.add_slice(&values[..hi]);
            assert_eq!(got.to_bits(), want.finalize().to_bits(), "rank {r}");
        }
    }

    #[test]
    fn allreduce_sum_agrees_bitwise_on_every_rank() {
        let values = repro_gen::zero_sum_with_range(5_000, 16, 3);
        let cfg = ReduceConfig {
            topology: ReduceTopology::FlatArrival,
            ..Default::default()
        };
        let out = World::run(6, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            let mut acc = BinnedSum::new(3);
            acc.add_slice(mine);
            allreduce_sum_acc(c, acc, &cfg)
        });
        let first = out[0].to_bits();
        assert!(out.iter().all(|v| v.to_bits() == first), "{out:?}");
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::run(5, |c| gather(c, c.rank() * 10, 2));
        assert_eq!(out[2], Some(vec![0, 10, 20, 30, 40]));
        assert!(out[0].is_none() && out[4].is_none());
    }

    #[test]
    fn alltoall_transposes_the_exchange_matrix() {
        // Rank r sends r*10 + to; it must receive from*10 + r.
        let out = World::run(5, |c| {
            let outgoing: Vec<u64> = (0..c.size())
                .map(|to| (c.rank() * 10 + to) as u64)
                .collect();
            alltoall(c, outgoing)
        });
        for (r, incoming) in out.iter().enumerate() {
            let expected: Vec<u64> = (0..5).map(|from| (from * 10 + r) as u64).collect();
            assert_eq!(incoming, &expected, "rank {r}");
        }
    }

    #[test]
    fn alltoall_single_rank() {
        let out = World::run(1, |c| alltoall(c, vec![99u8]));
        assert_eq!(out[0], vec![99]);
    }

    #[test]
    fn single_rank_world() {
        let cfg = ReduceConfig::default();
        let out = World::run(1, |c| {
            barrier(c);
            let m = allreduce_max(c, 3.5);
            let s = reduce_sum(c, &[1.0, 2.0], Algorithm::Kahan, 0, &cfg);
            (m, s)
        });
        assert_eq!(out[0], (3.5, Some(3.0)));
    }

    #[test]
    fn reduce_config_validation() {
        assert!(ReduceConfig::validated(ReduceTopology::Binomial, 500, 1).is_ok());
        let err = ReduceConfig::validated(ReduceTopology::Chain, MAX_JITTER_US + 1, 0);
        assert!(err.is_err());
        assert!(err.unwrap_err().0.contains("jitter_us"));
    }

    #[test]
    fn shadowed_acc_is_transparent_and_exact() {
        let values = repro_gen::zero_sum_with_range(4_000, 24, 99);
        let mut plain = BinnedSum::new(3);
        plain.add_slice(&values);
        let mut shadowed = ShadowedAcc::over(BinnedSum::new(3), &[]);
        shadowed.add_slice(&values);
        assert_eq!(shadowed.finalize().to_bits(), plain.finalize().to_bits());
        assert_eq!(shadowed.n, values.len());
        // Exact shadow of zero-sum data is exactly zero.
        assert_eq!(shadowed.exact.to_f64(), 0.0);
        assert!(shadowed.bound() > 0.0);
    }

    #[test]
    fn telemetry_reduce_emits_aligned_node_records() {
        let values = repro_gen::zero_sum_with_range(6_400, 20, 7);
        let ranks = 4;
        let cfg = ReduceConfig::default();
        let per = values.len().div_ceil(ranks);
        let run = || {
            let plan = crate::fault::FaultPlan::new(0);
            let (report, events) = World::run_report_traced(ranks, &plan, true, |c| {
                let mine = chunks(&values, c.size(), c.rank());
                Ok(reduce_sum_telemetry(
                    c,
                    mine,
                    c.rank() * per,
                    values.len(),
                    Algorithm::PR,
                    0,
                    &cfg,
                    repro_obs::TelemetryConfig::full(),
                ))
            })
            .unwrap();
            (report, repro_obs::render_jsonl(&events))
        };
        let (report, text) = run();
        let sum = report.results[0].as_ref().unwrap().unwrap();

        let nodes = repro_obs::forensics::collect_nodes(&text).unwrap();
        // One leaf per rank plus the root record.
        assert_eq!(nodes.len(), ranks + 1);
        let root = nodes.iter().find(|n| n.node == "root").unwrap();
        assert_eq!((root.start, root.len as usize), (0, values.len()));
        assert_eq!(root.sum_bits, sum.to_bits());
        // PR is correctly rounded on this data: zero ulps from exact.
        assert_eq!(root.ulps, Some(0));
        for r in 0..ranks {
            let leaf = nodes
                .iter()
                .find(|n| n.node == format!("leaf.r{r}"))
                .unwrap();
            assert_eq!(leaf.start as usize, r * per);
            assert_eq!(leaf.sub, format!("rank{r}"));
        }
        // Same seed, same plan: the telemetry replays byte-identically,
        // and a trace diff of the two runs is clean.
        let (_, again) = run();
        assert_eq!(text, again);
        let report = repro_obs::forensics::diff_traces(&text, &again).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.aligned, ranks + 1);
    }

    #[test]
    fn telemetry_off_reduce_sum_emits_no_node_events() {
        let values: Vec<f64> = (0..800).map(|i| i as f64).collect();
        let cfg = ReduceConfig::default();
        let plan = crate::fault::FaultPlan::new(0);
        let (_, events) = World::run_report_traced(3, &plan, true, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            let per = values.len().div_ceil(c.size());
            Ok(reduce_sum_telemetry(
                c,
                mine,
                c.rank() * per,
                values.len(),
                Algorithm::Standard,
                0,
                &cfg,
                repro_obs::TelemetryConfig::off(),
            ))
        })
        .unwrap();
        let text = repro_obs::render_jsonl(&events);
        assert!(!text.contains("\"kind\":\"node\""), "{text}");
    }

    #[test]
    fn ft_reduce_matches_plain_reduce_without_faults() {
        let values = repro_gen::zero_sum_with_range(10_000, 24, 11);
        for topo in [
            ReduceTopology::Binomial,
            ReduceTopology::FlatArrival,
            ReduceTopology::Chain,
        ] {
            let cfg = ReduceConfig {
                topology: topo,
                ..Default::default()
            };
            let plan = crate::fault::FaultPlan::new(0);
            let report = World::run_report(6, &plan, |c| {
                let mine = chunks(&values, c.size(), c.rank());
                ft_reduce_sum(c, mine, Algorithm::PR, 0, &cfg)
            })
            .unwrap();
            assert_eq!(report.failed, 0, "{topo:?}");
            let out = report.results[0].as_ref().unwrap();
            assert_eq!(out.survivors, (0..6).collect::<Vec<_>>());
            assert_eq!(out.rounds, 1);
            let reference = {
                let mut acc = BinnedSum::new(3);
                acc.add_slice(&values);
                acc.finalize()
            };
            assert_eq!(
                out.value.unwrap().to_bits(),
                reference.to_bits(),
                "{topo:?}"
            );
        }
    }

    #[test]
    fn ft_reduce_heals_around_a_killed_rank_bitwise() {
        let values = repro_gen::zero_sum_with_range(12_000, 24, 21);
        let ranks = 6;
        for topo in [
            ReduceTopology::Binomial,
            ReduceTopology::FlatArrival,
            ReduceTopology::Chain,
        ] {
            let cfg = ReduceConfig {
                topology: topo,
                ..Default::default()
            };
            // Rank 4 dies on its very first communication op: it never
            // pings, so round one already excludes it.
            let plan = crate::fault::FaultPlan::new(5)
                .with_kill(4, 1)
                .with_timeouts(Duration::from_millis(10), 2);
            let report = World::run_report(ranks, &plan, |c| {
                let mine = chunks(&values, c.size(), c.rank());
                ft_reduce_sum(c, mine, Algorithm::PR, 0, &cfg)
            })
            .unwrap();
            let out = report.results[0].as_ref().unwrap();
            assert_eq!(out.survivors, vec![0, 1, 2, 3, 5], "{topo:?}");
            // Survivor-set reproducibility contract: bitwise identical to
            // a sequential fault-free sum over the survivors' inputs.
            let mut reference = BinnedSum::new(3);
            for &r in &out.survivors {
                reference.add_slice(chunks(&values, ranks, r));
            }
            assert_eq!(
                out.value.unwrap().to_bits(),
                reference.finalize().to_bits(),
                "{topo:?}"
            );
            assert!(matches!(
                report.results[4],
                Err(FaultError::Killed { rank: 4, .. })
            ));
        }
    }

    #[test]
    fn ft_reduce_mid_collective_kill_triggers_heal_rounds() {
        let values = repro_gen::zero_sum_with_range(8_000, 16, 33);
        let ranks = 8;
        let cfg = ReduceConfig::default();
        // Rank 3 pings (op 1), receives membership (op 2), then dies on a
        // later op — the first reduce round must fail and heal.
        let plan = crate::fault::FaultPlan::new(6)
            .with_kill(3, 3)
            .with_timeouts(Duration::from_millis(10), 2);
        let report = World::run_report(ranks, &plan, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            ft_reduce_sum(c, mine, Algorithm::PR, 0, &cfg)
        })
        .unwrap();
        let out = report.results[0].as_ref().unwrap();
        assert!(out.rounds >= 2, "kill after membership must cost a round");
        assert!(report.heals >= 1);
        assert!(!out.survivors.contains(&3));
        let mut reference = BinnedSum::new(3);
        for &r in &out.survivors {
            reference.add_slice(chunks(&values, ranks, r));
        }
        assert_eq!(out.value.unwrap().to_bits(), reference.finalize().to_bits());
    }

    #[test]
    fn ft_allreduce_survivors_agree_bitwise() {
        let values = repro_gen::zero_sum_with_range(6_000, 16, 44);
        let ranks = 5;
        let plan = crate::fault::FaultPlan::new(8)
            .with_kill(2, 1)
            .with_timeouts(Duration::from_millis(10), 2);
        let cfg = ReduceConfig::default();
        let report = World::run_report(ranks, &plan, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            let mut acc = BinnedSum::new(3);
            acc.add_slice(mine);
            ft_allreduce_sum_acc(c, acc, &cfg)
        })
        .unwrap();
        let bits: Vec<u64> = report
            .survivors()
            .iter()
            .map(|&r| report.results[r].as_ref().unwrap().value.unwrap().to_bits())
            .collect();
        assert!(bits.len() >= ranks - 1);
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "{bits:?}");
    }

    #[test]
    fn ft_adaptive_reduce_survives_a_dead_profiler() {
        let values = repro_gen::zero_sum_with_range(10_000, 24, 13);
        let ranks = 6;
        let plan = crate::fault::FaultPlan::new(9)
            .with_kill(5, 1)
            .with_timeouts(Duration::from_millis(10), 2);
        let cfg = ReduceConfig::default();
        let report = World::run_report(ranks, &plan, |c| {
            let mine = chunks(&values, c.size(), c.rank());
            ft_adaptive_reduce_sum(c, mine, Tolerance::Bitwise, 0, &cfg)
        })
        .unwrap();
        let out = report.results[0].as_ref().unwrap();
        let (sum, alg) = out.value.unwrap();
        assert!(alg.is_reproducible());
        assert!(!out.survivors.contains(&5));
        // The chosen reproducible operator over the survivor inputs,
        // sequentially, must match bitwise.
        let mut reference = alg.new_accumulator();
        for &r in &out.survivors {
            reference.add_slice(chunks(&values, ranks, r));
        }
        assert_eq!(sum.to_bits(), reference.finalize().to_bits());
    }
}
