//! # `repro-mpisim` — a miniature message-passing runtime
//!
//! The paper benchmarks its reduction operators as MPI custom operators
//! ("we globally reduce the local sums by using MPI Reduce with custom
//! reduction operators for Kahan, composite precision, and prerounded
//! summations"). This crate is the MPI stand-in: a typed message-passing
//! world where
//!
//! * every **rank** is a thread ([`World::run`]),
//! * point-to-point [`Comm::send`]/[`Comm::recv`] carry any `Send + 'static`
//!   value (accumulators included) with tag matching and out-of-order
//!   buffering,
//! * [`collectives`] provides `barrier`, `broadcast`, `allreduce_max`, and
//!   `reduce_accumulator` over any [`repro_sum::Accumulator`] with three
//!   topologies: binomial tree, chain, and **flat arrival-order** — the
//!   last merging partials in genuine run-time arrival order, which is the
//!   nondeterminism the paper says exascale cannot avoid,
//! * [`collectives::ReduceConfig::jitter_us`] injects per-rank random delays
//!   to scramble arrival order on demand,
//! * [`fault`] makes failure a first-class input: a seeded [`FaultPlan`]
//!   kills ranks and drops/delays/duplicates/reorders envelopes,
//!   [`World::run_report`] reaps dead ranks into a structured
//!   [`WorldReport`], and the `ft_*` collectives **self-heal** — they
//!   re-plan the reduction tree over the sorted survivor set
//!   ([`repro_tree::topology::heal`]) so reproducible operators stay
//!   bitwise identical to a fault-free run over the same survivors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod fault;

pub use collectives::{
    adaptive_reduce_sum, allreduce_sum_acc, alltoall, ft_adaptive_reduce_sum, ft_allreduce_sum_acc,
    ft_reduce_accumulator, ft_reduce_sum, gather, reduce_sum, reduce_sum_telemetry,
    scan_accumulator, FtOutcome, ReduceConfig, ReduceTopology, ShadowedAcc, MAX_JITTER_US,
};
pub use comm::{Comm, World, WorldReport};
pub use fault::{ConfigError, FaultError, FaultPlan, FaultStats, Kill};
