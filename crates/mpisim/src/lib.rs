//! # `repro-mpisim` — a miniature message-passing runtime
//!
//! The paper benchmarks its reduction operators as MPI custom operators
//! ("we globally reduce the local sums by using MPI Reduce with custom
//! reduction operators for Kahan, composite precision, and prerounded
//! summations"). This crate is the MPI stand-in: a typed message-passing
//! world where
//!
//! * every **rank** is a thread ([`World::run`]),
//! * point-to-point [`Comm::send`]/[`Comm::recv`] carry any `Send + 'static`
//!   value (accumulators included) with tag matching and out-of-order
//!   buffering,
//! * [`collectives`] provides `barrier`, `broadcast`, `allreduce_max`, and
//!   `reduce_accumulator` over any [`repro_sum::Accumulator`] with three
//!   topologies: binomial tree, chain, and **flat arrival-order** — the
//!   last merging partials in genuine run-time arrival order, which is the
//!   nondeterminism the paper says exascale cannot avoid,
//! * [`collectives::ReduceConfig::jitter_us`] injects per-rank random delays
//!   to scramble arrival order on demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;

pub use collectives::{
    adaptive_reduce_sum, allreduce_sum_acc, alltoall, gather, reduce_sum, scan_accumulator,
    ReduceConfig, ReduceTopology,
};
pub use comm::{Comm, World};
