//! Deterministic fault injection for the message-passing world.
//!
//! A [`FaultPlan`] is a *seeded* description of everything that may go
//! wrong in a run: ranks killed after a given number of communication
//! operations, and envelopes dropped, delayed, duplicated, or reordered in
//! flight. Every decision is drawn from [`repro_fp::rng::DetRng`] forked
//! per rank, so a chaos run is completely replayable from
//! `(seed, world size, plan parameters)` — the failure report printed by
//! the CLI is enough to reproduce the exact same fault schedule.
//!
//! Faults are injected at the transport layer ([`crate::Comm`]):
//!
//! * **drop** — the envelope is withheld from the receiver until the
//!   receiver's first retry boundary, modelling a lost packet recovered by
//!   retransmission;
//! * **delay** — the envelope becomes visible only after a bounded,
//!   deterministic hold time;
//! * **duplicate** — an extra junk copy of the envelope travels the wire
//!   and must be discarded by the receiver's dedup logic;
//! * **reorder** — the envelope is briefly held back so later envelopes
//!   overtake it in the receiver's visible order;
//! * **kill** — after `at_op` communication operations the rank's every
//!   subsequent operation returns [`FaultError::Killed`], modelling a
//!   crashed process that peers can only observe through timeouts.

use repro_fp::rng::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Golden-ratio increment used to fork per-rank fault RNG streams.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Kill a specific rank once it has performed `at_op` communication
/// operations (sends, timed receives, fault-tolerant collective steps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kill {
    /// The rank to kill.
    pub rank: usize,
    /// Operation count at which the rank dies (1 = before its first op
    /// completes is impossible; the rank dies *entering* op `at_op`).
    pub at_op: u64,
}

/// A seeded, replayable description of the faults injected into a world.
///
/// Probabilities are per-envelope; kills are exact. The same plan with the
/// same world size always produces the same fault schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Master seed; per-rank streams are forked deterministically from it.
    pub seed: u64,
    /// Probability an envelope is dropped (recovered at the receiver's
    /// first retry boundary).
    pub drop: f64,
    /// Probability an envelope is delayed.
    pub delay: f64,
    /// Maximum injected delay in microseconds (uniform in `0..max`).
    pub max_delay_us: u64,
    /// Probability an envelope is duplicated on the wire.
    pub duplicate: f64,
    /// Probability an envelope is held back so later traffic overtakes it.
    pub reorder: f64,
    /// Exact rank kills.
    pub kills: Vec<Kill>,
    /// Base receive timeout for the first attempt of
    /// [`crate::Comm::recv_timeout`]; attempt `i` waits `base << i`.
    pub base_timeout: Duration,
    /// Number of *additional* attempts after the first times out.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            delay: 0.0,
            max_delay_us: 2_000,
            duplicate: 0.0,
            reorder: 0.0,
            kills: Vec::new(),
            base_timeout: Duration::from_millis(15),
            max_retries: 3,
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given replay seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the envelope drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the envelope delay probability and maximum delay.
    pub fn with_delay(mut self, p: f64, max_delay_us: u64) -> Self {
        self.delay = p;
        self.max_delay_us = max_delay_us;
        self
    }

    /// Set the envelope duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Set the envelope reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Kill `rank` once it has performed `at_op` communication operations.
    pub fn with_kill(mut self, rank: usize, at_op: u64) -> Self {
        self.kills.push(Kill { rank, at_op });
        self
    }

    /// Derive `count` distinct kills from the plan seed, never touching
    /// `protected` (usually the reduction root). Kill points land early in
    /// the op sequence (ops 2..40) so collectives actually observe them.
    pub fn with_random_kills(mut self, size: usize, count: usize, protected: usize) -> Self {
        let mut rng = DetRng::seed_from_u64(self.seed ^ 0x6B11_5D4A_7C15_9E37);
        let mut victims: Vec<usize> = Vec::new();
        let eligible: Vec<usize> = (0..size).filter(|&r| r != protected).collect();
        let count = count.min(eligible.len());
        while victims.len() < count {
            let r = eligible[rng.below(eligible.len() as u64) as usize];
            if !victims.contains(&r) {
                victims.push(r);
            }
        }
        for rank in victims {
            let at_op = 2 + rng.below(38);
            self.kills.push(Kill { rank, at_op });
        }
        self
    }

    /// Override receive timeout budgets.
    pub fn with_timeouts(mut self, base: Duration, max_retries: u32) -> Self {
        self.base_timeout = base;
        self.max_retries = max_retries;
        self
    }

    /// Validate rates and bounds; returns a descriptive [`ConfigError`]
    /// instead of panicking later inside a worker thread.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, p) in [
            ("drop", self.drop),
            ("delay", self.delay),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError(format!(
                    "fault rate `{name}` must be in [0, 1], got {p}"
                )));
            }
        }
        if self.max_delay_us > 10_000_000 {
            return Err(ConfigError(format!(
                "max_delay_us {} exceeds the 10s sanity cap",
                self.max_delay_us
            )));
        }
        if self.base_timeout.is_zero() {
            return Err(ConfigError("base_timeout must be non-zero".into()));
        }
        Ok(())
    }

    /// The kill point for `rank`, if any (earliest wins when duplicated).
    pub fn kill_at(&self, rank: usize) -> Option<u64> {
        self.kills
            .iter()
            .filter(|k| k.rank == rank)
            .map(|k| k.at_op)
            .min()
    }

    /// Total wall time one [`crate::Comm::recv_timeout`] may spend across
    /// all backoff attempts: `base * (2^(retries+1) - 1)`.
    pub fn link_budget(&self) -> Duration {
        let factor = (1u32 << (self.max_retries + 1)).saturating_sub(1);
        self.base_timeout.saturating_mul(factor)
    }

    /// Fork the deterministic fault stream for one rank.
    pub(crate) fn rng_for_rank(&self, rank: usize) -> DetRng {
        DetRng::seed_from_u64(self.seed ^ (rank as u64).wrapping_mul(PHI).wrapping_add(PHI))
    }
}

/// A communication failure observed by a rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// No matching message arrived within the full backoff budget.
    Timeout {
        /// Expected source rank, if the receive was rank-specific.
        from: Option<usize>,
        /// Tag that was awaited.
        tag: u64,
    },
    /// This rank was killed by the fault plan and must stop communicating.
    Killed {
        /// The rank that died.
        rank: usize,
        /// Operation count at which it died.
        at_op: u64,
    },
    /// The collective's root could not be reached; without the root there
    /// is no membership authority, so the rank gives up.
    RootUnreachable {
        /// The unreachable root rank.
        root: usize,
    },
    /// This rank is alive but was excluded from the survivor set (its
    /// membership ping arrived too late).
    Excluded {
        /// The excluded rank.
        rank: usize,
    },
    /// The collective exceeded its healing-round bound without settling on
    /// a stable survivor set.
    TooManyRounds {
        /// Rounds attempted before giving up.
        rounds: usize,
    },
    /// All peer channels closed while a receive was still outstanding.
    WorldTornDown,
    /// The fault plan or reduce configuration was invalid.
    Config(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Timeout { from: Some(r), tag } => {
                write!(f, "timeout waiting for rank {r} on tag {tag:#x}")
            }
            FaultError::Timeout { from: None, tag } => {
                write!(f, "timeout waiting for any rank on tag {tag:#x}")
            }
            FaultError::Killed { rank, at_op } => {
                write!(f, "rank {rank} killed by fault plan at op {at_op}")
            }
            FaultError::RootUnreachable { root } => write!(f, "root rank {root} unreachable"),
            FaultError::Excluded { rank } => {
                write!(f, "rank {rank} excluded from survivor set")
            }
            FaultError::TooManyRounds { rounds } => {
                write!(f, "no stable survivor set after {rounds} healing rounds")
            }
            FaultError::WorldTornDown => write!(f, "world torn down mid-receive"),
            FaultError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// An invalid builder input, reported before any rank thread starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for FaultError {
    fn from(e: ConfigError) -> Self {
        FaultError::Config(e.0)
    }
}

/// Shared fault/recovery counters, incremented by every rank's transport.
#[derive(Debug, Default)]
pub(crate) struct FaultCounters {
    pub dropped: AtomicU64,
    pub delayed: AtomicU64,
    pub duplicated: AtomicU64,
    pub reordered: AtomicU64,
    pub retries: AtomicU64,
    pub heals: AtomicU64,
    pub killed: AtomicU64,
    pub sends_to_dead: AtomicU64,
}

impl FaultCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            killed: self.killed.load(Ordering::Relaxed),
            sends_to_dead: self.sends_to_dead.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of injected-fault totals for one world run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Envelopes withheld until a retry boundary (drop fault).
    pub dropped: u64,
    /// Envelopes held back by a bounded delay.
    pub delayed: u64,
    /// Junk duplicate envelopes discarded by receivers.
    pub duplicated: u64,
    /// Envelopes overtaken by later traffic (reorder fault).
    pub reordered: u64,
    /// Ranks killed by the plan.
    pub killed: u64,
    /// Sends silently discarded because the receiver was already dead.
    pub sends_to_dead: u64,
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dropped={} delayed={} duplicated={} reordered={} killed={} sends_to_dead={}",
            self.dropped,
            self.delayed,
            self.duplicated,
            self.reordered,
            self.killed,
            self.sends_to_dead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_kills_are_deterministic_and_protect_root() {
        let a = FaultPlan::new(42).with_random_kills(8, 3, 0);
        let b = FaultPlan::new(42).with_random_kills(8, 3, 0);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.kills.len(), 3);
        assert!(a.kills.iter().all(|k| k.rank != 0));
        let distinct: std::collections::HashSet<usize> = a.kills.iter().map(|k| k.rank).collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn validate_rejects_bad_rates_and_delays() {
        assert!(FaultPlan::new(1).with_drop(1.5).validate().is_err());
        assert!(FaultPlan::new(1)
            .with_delay(0.1, 20_000_000)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1)
            .with_timeouts(Duration::ZERO, 1)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1).with_drop(0.3).validate().is_ok());
    }

    #[test]
    fn kill_at_takes_earliest() {
        let p = FaultPlan::new(0).with_kill(2, 9).with_kill(2, 4);
        assert_eq!(p.kill_at(2), Some(4));
        assert_eq!(p.kill_at(1), None);
    }

    #[test]
    fn link_budget_sums_backoff() {
        let p = FaultPlan::new(0).with_timeouts(Duration::from_millis(10), 2);
        // 10 + 20 + 40 = 70ms
        assert_eq!(p.link_budget(), Duration::from_millis(70));
    }
}
