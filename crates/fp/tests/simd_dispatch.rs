//! Dispatch-equivalence property tests: every SIMD tier this machine
//! supports, at every accumulator-chain width, must produce results
//! **bit-identical** to the portable scalar kernel — on hostile data
//! (subnormals, signed zeros, non-finites, mixed exponents, adversarial
//! cancellation) and at awkward lengths (odd widths, short tails below one
//! SIMD block, exact block multiples).
//!
//! These are the tests the CI `simd` job runs once per `REPRO_SIMD` tier;
//! running them under one process here additionally cross-checks tiers
//! against each other directly through the explicit-tier entry points.

use proptest::prelude::*;
use repro_fp::simd::{self, SimdTier};
use repro_fp::Superaccumulator;

/// Sum on an explicit tier and chain width, returning the full-precision
/// readout (`to_dd` exposes the sub-ulp residual, so a divergence anywhere
/// in the top ~106 bits of the register is caught, not just in the rounded
/// result).
fn sum_with(values: &[f64], tier: SimdTier, lanes: usize) -> (u64, u64, u64) {
    let mut acc = Superaccumulator::new();
    acc.add_slice_dispatch(values, tier, lanes);
    let dd = acc.to_dd();
    (acc.to_f64().to_bits(), dd.hi.to_bits(), dd.lo.to_bits())
}

/// Scalar-tier per-element reference: the definitional semantics.
fn reference(values: &[f64]) -> (u64, u64, u64) {
    let mut acc = Superaccumulator::new();
    for &x in values {
        acc.add(x);
    }
    let dd = acc.to_dd();
    (acc.to_f64().to_bits(), dd.hi.to_bits(), dd.lo.to_bits())
}

fn assert_all_dispatches_match(values: &[f64], label: &str) {
    let expect = reference(values);
    for &tier in simd::supported_tiers() {
        for lanes in [1usize, 2, 3, 4, 7, 8] {
            let got = sum_with(values, tier, lanes);
            assert_eq!(
                got,
                expect,
                "{label}: tier {tier} lanes {lanes} diverged (n = {})",
                values.len()
            );
        }
    }
}

/// Hostile mix: wide exponent spread, subnormals, signed zeros.
fn hostile() -> impl Strategy<Value = f64> {
    prop_oneof![
        12 => (any::<u64>(), -300i32..300).prop_map(|(m, e)| (m as i64 as f64) * (e as f64).exp2()),
        2 => any::<u64>().prop_map(|b| f64::from_bits(b % 4096)), // subnormals
        2 => any::<u64>().prop_map(|b| -f64::from_bits(b % 4096)),
        1 => Just(0.0),
        1 => Just(-0.0),
        2 => (-1022i32..1023).prop_map(|e| (e as f64).exp2()),
    ]
}

proptest! {
    /// All tiers × all chain widths, random lengths (including short tails
    /// under one SIMD block and under one staging chunk).
    #[test]
    fn tiers_and_lane_widths_are_bitwise_identical(
        values in prop::collection::vec(hostile(), 0..600),
    ) {
        assert_all_dispatches_match(&values, "hostile mix");
    }

    /// Adversarial cancellation: every value appears with its negation, in
    /// an interleave the extraction kernel sees as same-window blocks. The
    /// exact total is zero; any tier that loses a bit anywhere misses it.
    #[test]
    fn cancellation_to_zero_on_every_tier(
        base in prop::collection::vec((1u64..(1 << 52), -200i32..200), 1..200),
    ) {
        let mut values = Vec::with_capacity(base.len() * 2);
        for &(m, e) in &base {
            let v = (m as f64) * (e as f64).exp2();
            values.push(v);
            values.push(-v);
        }
        assert_all_dispatches_match(&values, "cancellation");
        for &tier in simd::supported_tiers() {
            let mut acc = Superaccumulator::new();
            acc.add_slice_dispatch(&values, tier, 8);
            prop_assert!(acc.is_zero(), "tier {} missed exact zero", tier);
        }
    }

    /// Non-finites poison every tier identically, wherever they sit.
    #[test]
    fn nonfinites_poison_all_tiers_identically(
        n in 0usize..300,
        pos in 0usize..300,
        which in 0usize..3,
    ) {
        let mut values: Vec<f64> = (0..n).map(|i| (i as f64 - 7.5) * 1.25).collect();
        let special = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        values.insert(pos.min(values.len()), special);
        let expect_nan = special.is_nan();
        let expect = reference(&values);
        for &tier in simd::supported_tiers() {
            for lanes in [1usize, 4, 8] {
                let mut acc = Superaccumulator::new();
                acc.add_slice_dispatch(&values, tier, lanes);
                if expect_nan {
                    prop_assert!(acc.to_f64().is_nan(), "tier {tier} lanes {lanes}");
                } else {
                    prop_assert_eq!(
                        acc.to_f64().to_bits(), expect.0,
                        "tier {} lanes {}", tier, lanes
                    );
                }
            }
        }
    }
}

/// Deterministic sweep of the length edge cases around every internal
/// granularity: the 8-element SIMD group, the 64-element staging chunk, the
/// 1024-element deposit group, and the 2048-element spill block.
#[test]
fn block_boundary_widths_are_bitwise_identical() {
    let mut rng = repro_fp::rng::DetRng::seed_from_u64(2015);
    for n in [
        0usize, 1, 2, 3, 5, 7, 8, 9, 15, 17, 63, 64, 65, 127, 255, 1023, 1024, 1025, 2047, 2048,
        2049, 4095, 4096, 4097,
    ] {
        let values: Vec<f64> = (0..n)
            .map(|i| match i % 13 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::from_bits(rng.next_u64() % 512 + 1),
                3 => -f64::from_bits(rng.next_u64() % 512 + 1),
                4 => (rng.next_f64() - 0.5) * 2f64.powi(900), // near-overflow
                _ => (rng.next_f64() - 0.5) * 2f64.powi((rng.next_u64() % 600) as i32 - 300),
            })
            .collect();
        assert_all_dispatches_match(&values, "boundary sweep");
    }
}

/// Same-window data (the extraction kernel's fast path) at every tier and
/// width: locally-similar exponents are exactly the case the SSE2/AVX2
/// kernels accelerate, so pin them hardest.
#[test]
fn extraction_fast_path_is_bitwise_identical() {
    let mut rng = repro_fp::rng::DetRng::seed_from_u64(7);
    for digit_exp in [-300i32, -40, 0, 40, 300] {
        for n in [1usize, 31, 256, 1000, 2048, 5000] {
            let values: Vec<f64> = (0..n)
                .map(|_| {
                    let m = rng.next_f64() + 0.5; // [0.5, 1.5): same binade band
                    let s = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                    s * m * 2f64.powi(digit_exp + (rng.next_u64() % 8) as i32)
                })
                .collect();
            assert_all_dispatches_match(&values, "fast path");
        }
    }
}

/// `lanes_n`-style worker counts over the public exact APIs stay bitwise
/// identical (the repro-sum façade is exercised in its own crate; this
/// pins the fp-level primitive it builds on).
#[test]
fn chain_widths_compose_with_slicing() {
    let mut rng = repro_fp::rng::DetRng::seed_from_u64(99);
    let values: Vec<f64> = (0..10_000)
        .map(|_| (rng.next_f64() - 0.5) * 2f64.powi((rng.next_u64() % 200) as i32 - 100))
        .collect();
    let expect = reference(&values);
    for lanes in [1usize, 2, 4, 8] {
        // Feed in two unequal pieces to exercise mid-stream state carry.
        for split in [1usize, 513, 2048, 9_999] {
            let mut acc = Superaccumulator::new();
            acc.add_slice_lanes(&values[..split], lanes);
            acc.add_slice_lanes(&values[split..], lanes);
            let dd = acc.to_dd();
            assert_eq!(
                (acc.to_f64().to_bits(), dd.hi.to_bits(), dd.lo.to_bits()),
                expect,
                "lanes {lanes} split {split}"
            );
        }
    }
}
