//! Property-based tests for the floating-point substrate.
//!
//! These pin down the *exactness contracts* that the rest of the workspace
//! leans on: error-free transforms are error-free, the superaccumulator is
//! order-independent and correctly rounded, and double-double addition is
//! faithful far beyond f64.

use proptest::prelude::*;
use repro_fp::eft::{two_prod, two_prod_dekker, two_sum};
use repro_fp::ulp::{decompose, exponent, next_down, next_up, pow2, ulp};
use repro_fp::{DoubleDouble, Superaccumulator};

/// Finite, non-extreme f64s: magnitudes in ~[1e-150, 1e150] plus zero.
/// Extreme exponents are covered by dedicated unit tests; keeping products
/// away from overflow lets the two_prod identity hold unconditionally.
fn moderate() -> impl Strategy<Value = f64> {
    prop_oneof![
        9 => (-150.0f64..150.0).prop_map(|e| e.exp2()),
        9 => (-150.0f64..150.0).prop_map(|e| -e.exp2()),
        1 => Just(0.0),
        3 => -1e6f64..1e6,
    ]
}

fn moderate_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(moderate(), 0..max_len)
}

proptest! {
    /// two_sum is an error-free transform: a + b == s + e exactly,
    /// verified in the exact accumulator.
    #[test]
    fn two_sum_is_error_free(a in moderate(), b in moderate()) {
        let (s, e) = two_sum(a, b);
        let mut acc = Superaccumulator::new();
        acc.add(a);
        acc.add(b);
        acc.sub(s);
        acc.sub(e);
        prop_assert!(acc.is_zero(), "a+b != s+e for a={a:e}, b={b:e}");
    }

    /// two_prod (FMA) and Dekker's splitting-based product agree bit-for-bit.
    #[test]
    fn two_prod_matches_dekker(a in moderate(), b in moderate()) {
        let (p1, e1) = two_prod(a, b);
        let (p2, e2) = two_prod_dekker(a, b);
        prop_assert_eq!(p1.to_bits(), p2.to_bits());
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
    }

    /// The superaccumulator result is invariant under shuffling.
    #[test]
    fn superacc_is_order_independent(mut values in moderate_vec(64), seed in any::<u64>()) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let reference = Superaccumulator::from_values(values.iter().copied()).to_f64();
        let mut rng = StdRng::seed_from_u64(seed);
        values.shuffle(&mut rng);
        let shuffled = Superaccumulator::from_values(values.iter().copied()).to_f64();
        prop_assert_eq!(reference.to_bits(), shuffled.to_bits());
    }

    /// Correct rounding: the residual after subtracting the rounded result is
    /// at most half an ulp of that result (and the tie goes to even).
    #[test]
    fn superacc_rounds_to_nearest(values in moderate_vec(64)) {
        let acc = Superaccumulator::from_values(values.iter().copied());
        let r = acc.to_f64();
        let dd = acc.to_dd();
        prop_assert_eq!(dd.hi.to_bits(), r.to_bits());
        if r.is_finite() && r != 0.0 {
            prop_assert!(dd.lo.abs() <= 0.5 * ulp(r),
                "residual {:e} exceeds half ulp of {:e}", dd.lo, r);
        }
    }

    /// Splitting a vector anywhere and merging the two accumulators is
    /// identical to accumulating the whole vector.
    #[test]
    fn superacc_merge_is_concatenation(values in moderate_vec(64), split in any::<prop::sample::Index>()) {
        let cut = if values.is_empty() { 0 } else { split.index(values.len()) };
        let (left, right) = values.split_at(cut);
        let mut a = Superaccumulator::from_values(left.iter().copied());
        let b = Superaccumulator::from_values(right.iter().copied());
        a.merge(&b);
        let whole = Superaccumulator::from_values(values.iter().copied());
        prop_assert_eq!(a.to_f64().to_bits(), whole.to_f64().to_bits());
    }

    /// For integer-valued inputs the exact sum matches i128 integer math.
    #[test]
    fn superacc_matches_integer_arithmetic(ints in prop::collection::vec(-1_000_000_000i64..1_000_000_000, 0..64)) {
        let values: Vec<f64> = ints.iter().map(|&i| i as f64).collect();
        let exact: i128 = ints.iter().map(|&i| i as i128).sum();
        let computed = Superaccumulator::from_values(values.iter().copied()).to_f64();
        prop_assert_eq!(computed, exact as f64);
    }

    /// decompose() reconstructs the value exactly.
    #[test]
    fn decompose_round_trips(x in moderate()) {
        prop_assume!(x != 0.0);
        let (s, m, sh) = decompose(x);
        let rebuilt = (s as f64) * (m as f64) * pow2(sh);
        prop_assert_eq!(rebuilt.to_bits(), x.to_bits());
    }

    /// The binary exponent satisfies 2^e <= |x| < 2^(e+1).
    #[test]
    fn exponent_brackets_magnitude(x in moderate()) {
        prop_assume!(x != 0.0);
        let e = exponent(x).unwrap();
        prop_assert!(pow2(e) <= x.abs());
        if e < 1023 {
            prop_assert!(x.abs() < pow2(e + 1));
        }
    }

    /// next_up/next_down step exactly one representable value.
    #[test]
    fn neighbours_are_adjacent(x in moderate()) {
        let up = next_up(x);
        prop_assert!(up > x);
        prop_assert_eq!(next_down(up).to_bits(), x.to_bits());
        // Nothing representable lies strictly between.
        let mid = x / 2.0 + up / 2.0;
        prop_assert!(mid == x || mid == up || (x < 0.0) != (up < 0.0));
    }

    /// Double-double addition of many terms stays within 2^-100 of exact.
    #[test]
    fn dd_sum_is_faithful_beyond_f64(values in moderate_vec(64)) {
        let mut dd = DoubleDouble::ZERO;
        for &v in &values {
            dd = dd.add_f64(v);
        }
        let mut exact = Superaccumulator::from_values(values.iter().copied());
        exact.sub(dd.hi);
        exact.sub(dd.lo);
        let err = exact.to_f64().abs();
        let scale = repro_fp::exact_abs_sum(&values).max(f64::MIN_POSITIVE);
        prop_assert!(err <= scale * 2f64.powi(-96),
            "dd sum error {err:e} too large for scale {scale:e}");
    }

    /// DoubleDouble normalization invariant: hi absorbs lo under rounding.
    #[test]
    fn dd_stays_normalized(a in moderate(), b in moderate(), c in moderate()) {
        let s = DoubleDouble::exact_add_f64(a, b).add_f64(c);
        prop_assert_eq!(s.hi, s.hi + s.lo);
    }
}
