//! Property tests for the hex-float text format: round-trip identity over
//! the entire bit space of `f64`, including subnormals, both zeros, and
//! specials.

use proptest::prelude::*;
use repro_fp::hexfloat::{format_hex, parse_hex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every representable f64 (drawn uniformly over the BIT space, hence
    /// heavy on subnormals and weird exponents) round-trips bit-exactly.
    #[test]
    fn roundtrip_over_bit_space(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        let text = format_hex(x);
        let back = parse_hex(&text).expect("own output parses");
        if x.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), x.to_bits(), "{}", text);
        }
    }

    /// Canonical text is unique per value: equal bits <-> equal text.
    #[test]
    fn canonical_text_is_injective(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        prop_assume!(!x.is_nan() && !y.is_nan());
        let same_bits = x.to_bits() == y.to_bits();
        let same_text = format_hex(x) == format_hex(y);
        prop_assert_eq!(same_bits, same_text);
    }

    /// Scaling by powers of two only shifts the printed exponent: the
    /// mantissa text is scale-invariant (for normal results).
    #[test]
    fn mantissa_text_is_scale_invariant(x in 1.0f64..2.0, shift in -500i32..500) {
        let scaled = x * repro_fp::ulp::pow2(shift);
        prop_assume!(scaled.is_normal());
        let a = format_hex(x);
        let b = format_hex(scaled);
        let mant = |s: &str| s.split('p').next().unwrap().to_string();
        prop_assert_eq!(mant(&a), mant(&b));
    }
}
