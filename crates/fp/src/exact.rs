//! Exact dataset measurements derived from the superaccumulator.
//!
//! The paper characterizes a set of summands by two intrinsic quantities:
//!
//! * the **sum condition number** `k = Σ|xᵢ| / |Σxᵢ|`, and
//! * the **dynamic range** `dr = exp(max|xᵢ|) − exp(min|xᵢ|)`,
//!
//! both independent of any ordering. Because we can sum exactly, we compute
//! these *exactly* (each rounded once at the end), rather than estimating
//! them with the very floating-point arithmetic under study.

use crate::superacc::Superaccumulator;
use crate::ulp::exponent;

/// The exact sum of `values`, rounded to `f64` once (round-to-nearest-even).
///
/// ```
/// use repro_fp::exact_sum;
/// assert_eq!(exact_sum(&[1e16, 1.0, -1e16]), 1.0);
/// ```
pub fn exact_sum(values: &[f64]) -> f64 {
    exact_sum_acc(values).to_f64()
}

/// The exact sum as a [`Superaccumulator`], for callers that need to keep
/// full precision (e.g. to measure errors below one ulp of the sum).
/// Slices take the batched [`Superaccumulator::add_slice`] hot path.
pub fn exact_sum_acc(values: &[f64]) -> Superaccumulator {
    let mut acc = Superaccumulator::new();
    acc.add_slice(values);
    acc
}

/// The exact absolute-value sum `Σ|xᵢ|`, rounded once.
pub fn exact_abs_sum(values: &[f64]) -> f64 {
    let mut acc = Superaccumulator::new();
    acc.add_slice_abs(values);
    acc.to_f64()
}

/// Exact sum condition number `k = Σ|xᵢ| / |Σxᵢ|`.
///
/// Returns `f64::INFINITY` when the exact sum is zero (the paper's `k = ∞`
/// case) and `f64::NAN` for empty input or non-finite values.
pub fn condition_number(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return f64::NAN;
    }
    let mut sum = exact_sum_acc(values);
    if sum.is_zero() {
        return f64::INFINITY;
    }
    // Form the quotient in double-double to avoid an avoidable half-ulp loss
    // in each operand; a single rounding when converting at the end.
    let mut abs = Superaccumulator::new();
    abs.add_slice_abs(values);
    let q = abs.to_dd().div_dd(sum.to_dd().abs());
    q.to_f64()
}

/// Decimal exponent of a finite nonzero value: `floor(log10 |x|)`,
/// the exponent `E` of the scientific notation `m × 10^E` with `1 ≤ m < 10`.
///
/// Computed with a correction loop so values at decade boundaries classify
/// correctly despite `log10` rounding. Returns `None` for zero / non-finite.
pub fn decimal_exponent(x: f64) -> Option<i32> {
    if x == 0.0 || !x.is_finite() {
        return None;
    }
    let a = x.abs();
    let mut e = a.log10().floor() as i32;
    // log10 can be off by one ulp near decade boundaries; nudge into place.
    while pow10(e) > a {
        e -= 1;
    }
    while pow10(e + 1) <= a {
        e += 1;
    }
    Some(e)
}

/// Correctly rounded `10^e` with saturation outside f64 range (for decade
/// comparisons). `powi` accumulates rounding error over repeated squarings,
/// which mis-classifies values sitting exactly on a decade literal like
/// `1e100`; parsing gives the correctly rounded decade the same way literals
/// are rounded.
fn pow10(e: i32) -> f64 {
    use std::sync::OnceLock;
    static DECADES: OnceLock<Vec<f64>> = OnceLock::new();
    if e > 308 {
        return f64::INFINITY;
    }
    if e < -323 {
        return 0.0;
    }
    let table = DECADES.get_or_init(|| {
        (-323..=308)
            .map(|k| format!("1e{k}").parse::<f64>().expect("decade literal"))
            .collect()
    });
    table[(e + 323) as usize]
}

/// Dynamic range `dr = exp(max|xᵢ|) − exp(min|xᵢ|)` over the nonzero values,
/// in **decimal** exponents — the convention of the paper's Table I, where
/// `{2.37e+16, 3.41e+8, 4.32e+8, 8.14e+16}` has `dr = 8`.
///
/// Zeros are ignored (they have no exponent); returns `0` when no nonzero
/// value is present, and `None` if any value is non-finite.
pub fn dynamic_range(values: &[f64]) -> Option<i32> {
    let mut min_e = i32::MAX;
    let mut max_e = i32::MIN;
    for &v in values {
        if !v.is_finite() {
            return None;
        }
        if let Some(e) = decimal_exponent(v) {
            min_e = min_e.min(e);
            max_e = max_e.max(e);
        }
    }
    if min_e == i32::MAX {
        Some(0) // all zeros
    } else {
        Some(max_e - min_e)
    }
}

/// Dynamic range in **binary** (IEEE-754) exponents — the literal reading of
/// the paper's definition via the stored exponent field. `dr_binary ≈
/// dr_decimal × log₂10 ≈ 3.32 × dr_decimal`.
pub fn dynamic_range_binary(values: &[f64]) -> Option<i32> {
    let mut min_e = i32::MAX;
    let mut max_e = i32::MIN;
    for &v in values {
        if !v.is_finite() {
            return None;
        }
        if let Some(e) = exponent(v) {
            min_e = min_e.min(e);
            max_e = max_e.max(e);
        }
    }
    if min_e == i32::MAX {
        Some(0)
    } else {
        Some(max_e - min_e)
    }
}

/// Exact absolute error of a computed sum: `|computed − Σxᵢ|`, where the
/// subtraction happens inside the exact accumulator and is rounded once.
pub fn abs_error(computed: f64, values: &[f64]) -> f64 {
    let mut acc = exact_sum_acc(values);
    acc.sub(computed);
    acc.to_f64().abs()
}

/// Exact absolute error against a *precomputed* exact accumulator, for tight
/// loops that evaluate many computed sums of the same data (permutation
/// studies): clones the reference, subtracts, rounds once.
pub fn abs_error_vs(reference: &Superaccumulator, computed: f64) -> f64 {
    let mut acc = reference.clone();
    acc.sub(computed);
    acc.to_f64().abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sum_of_classic_absorption_case() {
        assert_eq!(exact_sum(&[1e9, -1e9, 1e-9]), 1e-9);
    }

    #[test]
    fn condition_number_of_same_sign_sets_is_one() {
        // k = 1 exactly for all-positive and all-negative sets.
        assert_eq!(condition_number(&[1.0, 2.0, 3.5]), 1.0);
        assert_eq!(condition_number(&[-1.0, -2.0, -3.5]), 1.0);
    }

    #[test]
    fn condition_number_of_zero_sum_is_infinite() {
        assert_eq!(
            condition_number(&[3.14e8, 1.59e8, -3.14e8, -1.59e8]),
            f64::INFINITY
        );
    }

    #[test]
    fn condition_number_of_paper_table1_row() {
        // {2.505e+2, 2.5e+2, -2.495e+2, -2.5e+2}: Σ|x| = 999.5, Σx ≈ 1.0
        // => k ≈ 1000 (the paper's k = 1000 row).
        let k = condition_number(&[2.505e2, 2.5e2, -2.495e2, -2.5e2]);
        assert!((k - 999.5).abs() < 1.0, "k = {k}");
    }

    #[test]
    fn condition_number_empty_and_nonfinite() {
        assert!(condition_number(&[]).is_nan());
        assert!(condition_number(&[1.0, f64::NAN]).is_nan());
        assert!(condition_number(&[1.0, f64::INFINITY]).is_nan());
    }

    #[test]
    fn decimal_exponent_at_decade_boundaries() {
        assert_eq!(decimal_exponent(1.0), Some(0));
        assert_eq!(decimal_exponent(9.999999), Some(0));
        assert_eq!(decimal_exponent(10.0), Some(1));
        assert_eq!(decimal_exponent(0.1), Some(-1));
        assert_eq!(decimal_exponent(1e100), Some(100));
        assert_eq!(decimal_exponent(-2.37e16), Some(16));
        assert_eq!(decimal_exponent(0.0), None);
        assert_eq!(decimal_exponent(f64::NAN), None);
    }

    #[test]
    fn dynamic_range_of_table1_rows() {
        // Paper Table I: each row's measured dr must match its label.
        assert_eq!(
            dynamic_range(&[1.23e32, 1.35e32, 2.37e32, 3.54e32]),
            Some(0)
        );
        assert_eq!(dynamic_range(&[2.37e16, 3.41e8, 4.32e8, 8.14e16]), Some(8));
        assert_eq!(
            dynamic_range(&[3.14e32, 1.59e16, 2.65e18, 3.58e24]),
            Some(16)
        );
        assert_eq!(
            dynamic_range(&[3.14e4, 1.59e-4, -3.14e4, -1.59e-4]),
            Some(8)
        );
        assert_eq!(
            dynamic_range(&[3.14e8, 1.59e-8, -3.14e8, -1.59e-8]),
            Some(16)
        );
    }

    #[test]
    fn dynamic_range_ignores_zeros() {
        assert_eq!(dynamic_range(&[0.0, 400.0, 0.0, 1.0]), Some(2));
        assert_eq!(dynamic_range(&[0.0, 0.0]), Some(0));
        assert_eq!(dynamic_range(&[]), Some(0));
        assert_eq!(dynamic_range(&[1.0, f64::INFINITY]), None);
    }

    #[test]
    fn binary_dynamic_range_scales_by_log2_of_10() {
        let vals = [1e16, 1e8];
        let dec = dynamic_range(&vals).unwrap();
        let bin = dynamic_range_binary(&vals).unwrap();
        assert_eq!(dec, 8);
        // 8 decades is 26..27 binades.
        assert!((26..=27).contains(&bin), "bin = {bin}");
    }

    #[test]
    fn abs_error_measures_sub_ulp_differences() {
        let values = [1.0, 2f64.powi(-80)];
        // Plain f64 summation loses the tiny term entirely.
        let computed = 1.0 + 2f64.powi(-80);
        assert_eq!(computed, 1.0);
        assert_eq!(abs_error(computed, &values), 2f64.powi(-80));
        // The correctly rounded sum has error equal to the dropped residual,
        // not zero -- and we can see that, because the reference is exact.
        assert_eq!(abs_error(exact_sum(&values), &values), 2f64.powi(-80));
    }

    #[test]
    fn abs_error_vs_reference_matches_direct() {
        let values = [0.1, 0.2, 0.3, -0.4];
        let reference = exact_sum_acc(&values);
        let computed: f64 = values.iter().sum();
        assert_eq!(
            abs_error_vs(&reference, computed),
            abs_error(computed, &values)
        );
    }
}
