//! Runtime-dispatched SIMD kernels for the batched superaccumulator.
//!
//! [`crate::Superaccumulator::add_slice`] spends essentially all of its time
//! in two loops: the branch-free [`window_digit`] scan that qualifies a block
//! for the fast kernel, and the Rump–Ogita–Oishi two-part extraction that
//! splits every qualified value onto the digit grid. Both are pure
//! data-parallel streams, so this module provides explicit SSE2 and AVX2
//! implementations next to the portable scalar ones, selected **once per
//! process**:
//!
//! * `REPRO_SIMD=scalar|sse2|avx2` forces a tier (mirroring the
//!   `REPRO_RUNTIME_WORKERS` / `REPRO_SCALE` env knobs). Forcing a tier the
//!   CPU lacks, or a value that parses to no tier, is a [`TierError`] —
//!   surfaced by [`try_active_tier`], which front ends (the `repro-reduce`
//!   binary validates at startup) turn into a diagnostic and a nonzero
//!   exit. Library hot paths keep working on the best supported tier; a CI
//!   dispatch matrix cannot "pass" silently because it probes tiers through
//!   `repro-reduce simd --check` first, and the process-init check refuses
//!   to run at all under a bad override.
//! * `REPRO_SIMD=auto` (or unset) picks the best tier
//!   [`std::arch::is_x86_feature_detected!`] reports.
//!
//! # Why every tier produces identical bits
//!
//! The extraction kernel only ever performs **exact** floating-point
//! additions: each value `x` in digit window `d` splits as `x = q + r` with
//! `q = (x + C) - C` a multiple of the grid `2^g` and `r = x - q` exact
//! (see [`crate::Superaccumulator`]'s kernel docs), and partial sums of `q`s
//! and `r`s stay far inside the `2^53` exact-integer range in grid units as
//! long as no accumulator chain folds more than 1024 elements between
//! deposits ([`SUB_BLOCK`]). Exact additions are associative, so *any*
//! chain count, vector width, or fold order yields the same real number —
//! and therefore bit-identical deposits into the exact register. The lane
//! count below is purely an instruction-level-parallelism knob (how many
//! independent FP dependency chains the CPU can overlap), never a semantic
//! one. The [`window_digit`] scan is integer classification with the same
//! lane-invariance argument (bitwise OR is associative and commutative).

// The crate is `deny(unsafe_code)`; the `std::arch` intrinsics live behind
// `#[target_feature]` functions in this module only, each reachable solely
// through the runtime-dispatch checks below.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// A dispatch tier for the batched exact-summation kernels.
///
/// Ordered from most portable to most specialized; [`active_tier`] selects
/// the highest supported tier unless `REPRO_SIMD` forces one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SimdTier {
    /// Portable Rust, the verbatim batched kernel every target builds.
    Scalar,
    /// 128-bit `std::arch` kernels (baseline on `x86_64`).
    Sse2,
    /// 256-bit `std::arch` kernels (runtime-detected).
    Avx2,
}

impl SimdTier {
    /// The env-knob / CLI spelling of the tier.
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// Parse a `REPRO_SIMD` tier name (`auto` is handled by the caller).
    pub fn parse(s: &str) -> Option<SimdTier> {
        match s {
            "scalar" => Some(SimdTier::Scalar),
            "sse2" => Some(SimdTier::Sse2),
            "avx2" => Some(SimdTier::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The tiers this build + CPU can actually run, lowest first.
/// [`SimdTier::Scalar`] is always present.
pub fn supported_tiers() -> &'static [SimdTier] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &[SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2]
        } else {
            // SSE2 is part of the x86_64 baseline.
            &[SimdTier::Scalar, SimdTier::Sse2]
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[SimdTier::Scalar]
    }
}

/// `true` if [`active_tier`]/`add_slice` can execute `tier` on this machine.
pub fn tier_supported(tier: SimdTier) -> bool {
    supported_tiers().contains(&tier)
}

/// Why tier resolution rejected a `REPRO_SIMD` override.
///
/// Returned (never panicked) by [`try_active_tier`] / [`resolve_tier`]:
/// selection of a dispatch tier is library code and must stay panic-free —
/// front ends map this to a diagnostic and a nonzero exit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TierError {
    /// The override named no tier (`REPRO_SIMD` was not one of
    /// `scalar|sse2|avx2|auto`). Carries the offending value.
    Unparsable(String),
    /// The override forced a tier this CPU cannot execute.
    Unsupported(SimdTier),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Unparsable(v) => {
                write!(f, "REPRO_SIMD={v:?} is not one of scalar|sse2|avx2|auto")
            }
            TierError::Unsupported(tier) => write!(
                f,
                "REPRO_SIMD={} forces a tier this CPU does not support (supported: {})",
                tier.label(),
                supported_tiers()
                    .iter()
                    .map(|t| t.label())
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        }
    }
}

impl std::error::Error for TierError {}

/// Resolve a `REPRO_SIMD`-style override (`None` = unset) to a dispatch
/// tier plus a human-readable provenance label. Pure — the env read happens
/// once in [`try_active_tier`] — so the validation is unit-testable without
/// touching process state.
pub fn resolve_tier(env: Option<&str>) -> Result<(SimdTier, &'static str), TierError> {
    let best = *supported_tiers().last().expect("scalar always supported");
    match env {
        None => Ok((best, "auto (REPRO_SIMD unset)")),
        Some(v) if v.is_empty() || v == "auto" => Ok((best, "auto (REPRO_SIMD=auto)")),
        Some(v) => match SimdTier::parse(v) {
            Some(tier) if tier_supported(tier) => Ok((tier, "forced by REPRO_SIMD")),
            Some(tier) => Err(TierError::Unsupported(tier)),
            None => Err(TierError::Unparsable(v.to_string())),
        },
    }
}

static DISPATCH: OnceLock<Result<(SimdTier, &'static str), TierError>> = OnceLock::new();

fn dispatch() -> &'static Result<(SimdTier, &'static str), TierError> {
    DISPATCH.get_or_init(|| {
        let var = std::env::var("REPRO_SIMD").ok();
        resolve_tier(var.as_deref())
    })
}

/// The dispatch tier the `REPRO_SIMD` environment resolves to, or the
/// [`TierError`] explaining why the override is invalid — resolved once per
/// process and cached either way. Front ends call this at startup and turn
/// an `Err` into a clean diagnostic + nonzero exit (`repro-reduce` does);
/// library paths that cannot propagate an error use [`active_tier`].
pub fn try_active_tier() -> Result<SimdTier, TierError> {
    dispatch().as_ref().map(|&(t, _)| t).map_err(Clone::clone)
}

/// The tier every `add_slice` in this process uses, resolved once from
/// `REPRO_SIMD` and CPU feature detection.
///
/// Infallible by design — kernels deep inside a reduction have no error
/// channel: an invalid `REPRO_SIMD` falls back to the best supported tier
/// here (numerically indistinguishable; every tier is bit-identical).
/// Validation belongs at process init via [`try_active_tier`], which still
/// sees the structured [`TierError`].
pub fn active_tier() -> SimdTier {
    match dispatch() {
        Ok((tier, _)) => *tier,
        Err(_) => *supported_tiers().last().expect("scalar always supported"),
    }
}

/// How [`active_tier`] was chosen (for `repro-reduce simd` diagnostics).
pub fn dispatch_source() -> &'static str {
    match dispatch() {
        Ok((_, source)) => source,
        Err(_) => "auto (invalid REPRO_SIMD ignored; validate with try_active_tier)",
    }
}

/// Elements per deposit group of the extraction kernels. Every accumulator
/// chain folds at most this many elements before collapsing into one `hi`
/// and one `lo` deposit, which keeps the folded sums exact: `hi` stays below
/// `1024 * (2^42 + 1) = 2^52 + 2^10` grid units and `lo` below `2^51`, both
/// inside the `2^53` exact-integer range (see [`crate::Superaccumulator`]'s
/// kernel docs for the per-element bounds).
pub const SUB_BLOCK: usize = 1024;

/// One scalar element of the [`window_digit`] classification.
#[inline]
fn scan_one(x: f64, lo: u64) -> u64 {
    // In-window iff (raw_exponent - 1) - 32d < 32 as an unsigned value;
    // zeros and subnormals (raw = 0) wrap negative, infinities and NaNs
    // (raw = 0x7ff) land far above.
    let p = ((x.to_bits() >> 52) & 0x7ff).wrapping_sub(1);
    p.wrapping_sub(lo) & !31u64
}

fn scan_scalar(block: &[f64], lo: u64) -> u64 {
    let mut bad = 0u64;
    for &x in block {
        bad |= scan_one(x, lo);
    }
    bad
}

/// Branch-free scan deciding whether a block qualifies for the
/// error-free-extraction kernel, on an explicit dispatch `tier`.
///
/// Returns `Some(d)` when every element is a **normal, finite** number
/// whose mantissa's least significant bit lies in digit window `d` (bit
/// positions `[32d, 32d + 32)`), with `d <= 62` so the extraction constant
/// stays representable. The biased-exponent range test folds zero,
/// subnormal, and non-finite rejection into one wrapping compare — three
/// integer ops per element, which the SSE2/AVX2 tiers run 2/4 elements at
/// a time.
pub fn window_digit(tier: SimdTier, block: &[f64]) -> Option<usize> {
    let first = block.first()?;
    let raw0 = (first.to_bits() >> 52) & 0x7ff;
    if raw0 == 0 || raw0 == 0x7ff {
        return None;
    }
    // Digit of the mantissa's LSB: p = raw - 1 for normal numbers.
    let d = ((raw0 - 1) >> 5) as usize;
    if d > 62 {
        return None;
    }
    let lo = (d as u64) << 5;
    let bad = match tier {
        SimdTier::Scalar => scan_scalar(block, lo),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers only pass tiers from `supported_tiers()` /
        // `active_tier()`, so the required CPU features are present.
        SimdTier::Sse2 => unsafe { scan_sse2(block, lo) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 was runtime-detected.
        SimdTier::Avx2 => unsafe { scan_avx2(block, lo) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scan_scalar(block, lo),
    };
    (bad == 0).then_some(d)
}

/// Portable extraction kernel over one [`SUB_BLOCK`]: `L` independent
/// accumulator chains, staged exactly like the pre-dispatch batched kernel
/// so the auto-vectorizer packs it even at baseline SSE2. Returns the folded
/// `(hi, lo)` grid sums — both exact by the [`SUB_BLOCK`] bound.
fn extract_scalar<const L: usize>(sub: &[f64], c: f64) -> (f64, f64) {
    debug_assert!(sub.len() <= SUB_BLOCK);
    let mut hi = [0.0f64; L];
    let mut lo = [0.0f64; L];
    // Stage the rounded parts through a small stack array: the counted
    // loops over fixed-size arrays are the shape the loop vectorizer packs
    // fully (fusing extraction and accumulation per element defeats it).
    const STAGE: usize = 64;
    let mut chunks = sub.chunks_exact(STAGE);
    for chunk in chunks.by_ref() {
        let mut q = [0.0f64; STAGE];
        for j in 0..STAGE {
            q[j] = (chunk[j] + c) - c;
        }
        for g in 0..STAGE / L {
            for j in 0..L {
                hi[j] += q[g * L + j];
                lo[j] += chunk[g * L + j] - q[g * L + j];
            }
        }
    }
    for &x in chunks.remainder() {
        let q = (x + c) - c;
        hi[0] += q;
        lo[0] += x - q;
    }
    // All chain folds are exact (SUB_BLOCK bound), so order is free.
    (hi.iter().sum(), lo.iter().sum())
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::SUB_BLOCK;
    use std::arch::x86_64::*;

    #[target_feature(enable = "sse2")]
    pub unsafe fn scan_sse2(block: &[f64], lo: u64) -> u64 {
        let lov = _mm_set1_epi64x(lo as i64);
        let expmask = _mm_set1_epi64x(0x7ff);
        let one = _mm_set1_epi64x(1);
        let outside = _mm_set1_epi64x(!31i64);
        let mut badv = _mm_setzero_si128();
        let mut pairs = block.chunks_exact(2);
        for pair in pairs.by_ref() {
            let x = _mm_loadu_si128(pair.as_ptr() as *const __m128i);
            let raw = _mm_and_si128(_mm_srli_epi64(x, 52), expmask);
            let p = _mm_sub_epi64(raw, one);
            badv = _mm_or_si128(badv, _mm_and_si128(_mm_sub_epi64(p, lov), outside));
        }
        let mut folded = [0u64; 2];
        _mm_storeu_si128(folded.as_mut_ptr() as *mut __m128i, badv);
        let mut bad = folded[0] | folded[1];
        for &x in pairs.remainder() {
            bad |= super::scan_one(x, lo);
        }
        bad
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_avx2(block: &[f64], lo: u64) -> u64 {
        let lov = _mm256_set1_epi64x(lo as i64);
        let expmask = _mm256_set1_epi64x(0x7ff);
        let one = _mm256_set1_epi64x(1);
        let outside = _mm256_set1_epi64x(!31i64);
        let mut badv = _mm256_setzero_si256();
        let mut quads = block.chunks_exact(4);
        for quad in quads.by_ref() {
            let x = _mm256_loadu_si256(quad.as_ptr() as *const __m256i);
            let raw = _mm256_and_si256(_mm256_srli_epi64(x, 52), expmask);
            let p = _mm256_sub_epi64(raw, one);
            badv = _mm256_or_si256(badv, _mm256_and_si256(_mm256_sub_epi64(p, lov), outside));
        }
        let mut folded = [0u64; 4];
        _mm256_storeu_si256(folded.as_mut_ptr() as *mut __m256i, badv);
        let mut bad = folded[0] | folded[1] | folded[2] | folded[3];
        for &x in quads.remainder() {
            bad |= super::scan_one(x, lo);
        }
        bad
    }

    /// SSE2 extraction: `L` independent `__m128d` chains (2 sublane
    /// accumulators each). Exactness bound as in [`super::extract_scalar`].
    #[target_feature(enable = "sse2")]
    pub unsafe fn extract_sse2<const L: usize>(sub: &[f64], c: f64) -> (f64, f64) {
        debug_assert!(sub.len() <= SUB_BLOCK);
        let cv = _mm_set1_pd(c);
        let mut hi = [_mm_setzero_pd(); L];
        let mut lo = [_mm_setzero_pd(); L];
        let mut groups = sub.chunks_exact(2 * L);
        for group in groups.by_ref() {
            for j in 0..L {
                let x = _mm_loadu_pd(group.as_ptr().add(2 * j));
                let q = _mm_sub_pd(_mm_add_pd(x, cv), cv);
                hi[j] = _mm_add_pd(hi[j], q);
                lo[j] = _mm_add_pd(lo[j], _mm_sub_pd(x, q));
            }
        }
        let (mut hi_t, mut lo_t) = (0.0f64, 0.0f64);
        let mut sublanes = [0.0f64; 2];
        for j in 0..L {
            _mm_storeu_pd(sublanes.as_mut_ptr(), hi[j]);
            hi_t += sublanes[0] + sublanes[1];
            _mm_storeu_pd(sublanes.as_mut_ptr(), lo[j]);
            lo_t += sublanes[0] + sublanes[1];
        }
        for &x in groups.remainder() {
            let q = (x + c) - c;
            hi_t += q;
            lo_t += x - q;
        }
        (hi_t, lo_t)
    }

    /// AVX2 extraction: `L` independent `__m256d` chains (4 sublane
    /// accumulators each). Exactness bound as in [`super::extract_scalar`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn extract_avx2<const L: usize>(sub: &[f64], c: f64) -> (f64, f64) {
        debug_assert!(sub.len() <= SUB_BLOCK);
        let cv = _mm256_set1_pd(c);
        let mut hi = [_mm256_setzero_pd(); L];
        let mut lo = [_mm256_setzero_pd(); L];
        let mut groups = sub.chunks_exact(4 * L);
        for group in groups.by_ref() {
            for j in 0..L {
                let x = _mm256_loadu_pd(group.as_ptr().add(4 * j));
                let q = _mm256_sub_pd(_mm256_add_pd(x, cv), cv);
                hi[j] = _mm256_add_pd(hi[j], q);
                lo[j] = _mm256_add_pd(lo[j], _mm256_sub_pd(x, q));
            }
        }
        let (mut hi_t, mut lo_t) = (0.0f64, 0.0f64);
        let mut sublanes = [0.0f64; 4];
        for j in 0..L {
            _mm256_storeu_pd(sublanes.as_mut_ptr(), hi[j]);
            hi_t += (sublanes[0] + sublanes[1]) + (sublanes[2] + sublanes[3]);
            _mm256_storeu_pd(sublanes.as_mut_ptr(), lo[j]);
            lo_t += (sublanes[0] + sublanes[1]) + (sublanes[2] + sublanes[3]);
        }
        for &x in groups.remainder() {
            let q = (x + c) - c;
            hi_t += q;
            lo_t += x - q;
        }
        (hi_t, lo_t)
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{extract_avx2, extract_sse2, scan_avx2, scan_sse2};

/// Clamp a requested lane count to the kernel widths we instantiate.
pub(crate) fn clamp_lanes(lanes: usize) -> usize {
    match lanes {
        0..=1 => 1,
        2..=3 => 2,
        4..=7 => 4,
        _ => 8,
    }
}

/// Run the two-part extraction over `block` (every element in digit window
/// anchored by constant `c`) with `lanes` independent accumulator chains on
/// dispatch `tier`, feeding each exact grid-sum to `deposit`.
///
/// Every tier × lane-count combination deposits the same total (all interior
/// additions are exact — see the module docs), so the caller's accumulator
/// ends bit-identical regardless of dispatch.
pub fn extract_deposits(
    tier: SimdTier,
    lanes: usize,
    block: &[f64],
    c: f64,
    deposit: &mut impl FnMut(f64),
) {
    for sub in block.chunks(SUB_BLOCK) {
        let (hi, lo) = extract_sub(tier, clamp_lanes(lanes), sub, c);
        deposit(hi);
        deposit(lo);
    }
}

fn extract_sub(tier: SimdTier, lanes: usize, sub: &[f64], c: f64) -> (f64, f64) {
    match tier {
        SimdTier::Scalar => match lanes {
            1 => extract_scalar::<1>(sub, c),
            2 => extract_scalar::<2>(sub, c),
            4 => extract_scalar::<4>(sub, c),
            _ => extract_scalar::<8>(sub, c),
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers only pass supported tiers (see `window_digit`).
        SimdTier::Sse2 => unsafe {
            match lanes {
                1 => extract_sse2::<1>(sub, c),
                2 => extract_sse2::<2>(sub, c),
                4 => extract_sse2::<4>(sub, c),
                _ => extract_sse2::<8>(sub, c),
            }
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 was runtime-detected.
        SimdTier::Avx2 => unsafe {
            match lanes {
                1 => extract_avx2::<1>(sub, c),
                2 => extract_avx2::<2>(sub, c),
                4 => extract_avx2::<4>(sub, c),
                _ => extract_avx2::<8>(sub, c),
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => match lanes {
            1 => extract_scalar::<1>(sub, c),
            2 => extract_scalar::<2>(sub, c),
            4 => extract_scalar::<4>(sub, c),
            _ => extract_scalar::<8>(sub, c),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn window_values(d: usize, n: usize, seed: u64) -> Vec<f64> {
        // Normal values whose mantissa LSB lands in digit window d:
        // biased exponent raw = 32d + r + 1 for r in [0, 32).
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let raw = (32 * d + (rng.next_u64() % 32) as usize + 1) as u64;
                let mant = rng.next_u64() & ((1 << 52) - 1);
                let sign = (rng.next_u64() & 1) << 63;
                f64::from_bits(sign | (raw << 52) | mant)
            })
            .collect()
    }

    #[test]
    fn tier_labels_round_trip() {
        for &tier in &[SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
            assert_eq!(SimdTier::parse(tier.label()), Some(tier));
        }
        assert_eq!(SimdTier::parse("auto"), None);
        assert_eq!(SimdTier::parse("avx512"), None);
    }

    #[test]
    fn resolve_tier_accepts_auto_and_supported_forces() {
        let best = *supported_tiers().last().unwrap();
        assert_eq!(resolve_tier(None), Ok((best, "auto (REPRO_SIMD unset)")));
        assert_eq!(resolve_tier(Some("")).unwrap().0, best);
        assert_eq!(resolve_tier(Some("auto")).unwrap().0, best);
        for &tier in supported_tiers() {
            assert_eq!(
                resolve_tier(Some(tier.label())),
                Ok((tier, "forced by REPRO_SIMD"))
            );
        }
    }

    #[test]
    fn resolve_tier_rejects_garbage_without_panicking() {
        let err = resolve_tier(Some("bogus")).unwrap_err();
        assert_eq!(err, TierError::Unparsable("bogus".into()));
        assert!(err.to_string().contains("scalar|sse2|avx2|auto"), "{err}");
        // Case matters, like the old panic path.
        assert!(resolve_tier(Some("AVX2")).is_err());
    }

    #[test]
    fn resolve_tier_rejects_unsupported_force_with_tier_named() {
        // Scalar is always supported, so fabricate unsupportedness only
        // where a tier can actually be absent.
        for &tier in &[SimdTier::Sse2, SimdTier::Avx2] {
            if !tier_supported(tier) {
                let err = resolve_tier(Some(tier.label())).unwrap_err();
                assert_eq!(err, TierError::Unsupported(tier));
                assert!(err.to_string().contains("supported:"), "{err}");
            }
        }
    }

    #[test]
    fn try_active_tier_agrees_with_active_tier_in_clean_env() {
        // The test harness never sets an invalid REPRO_SIMD, so the cached
        // resolution must be Ok and the two accessors must agree.
        assert_eq!(try_active_tier(), Ok(active_tier()));
    }

    #[test]
    fn supported_tiers_start_at_scalar_and_contain_active() {
        let tiers = supported_tiers();
        assert_eq!(tiers.first(), Some(&SimdTier::Scalar));
        assert!(tiers.windows(2).all(|w| w[0] < w[1]), "ordered ascending");
        assert!(tiers.contains(&active_tier()));
        assert!(!dispatch_source().is_empty());
    }

    #[test]
    fn window_digit_agrees_across_tiers() {
        let mut blocks: Vec<Vec<f64>> = Vec::new();
        // Clean in-window blocks at assorted digits and odd lengths.
        for (d, n) in [
            (31usize, 0usize),
            (31, 1),
            (31, 5),
            (40, 64),
            (2, 127),
            (62, 31),
        ] {
            blocks.push(window_values(d, n, (d + n) as u64));
        }
        // Poisoned blocks: a zero, a subnormal, a NaN, an infinity, and an
        // out-of-window straggler, each at an awkward position.
        for (i, poison) in [
            0.0,
            f64::from_bits(7),
            f64::NAN,
            f64::INFINITY,
            2f64.powi(300),
        ]
        .into_iter()
        .enumerate()
        {
            let mut b = window_values(31, 67, 99 + i as u64);
            let pos = [0usize, 1, 32, 65, 66][i];
            b[pos] = poison;
            blocks.push(b);
        }
        // Digit window 63 (raw exponent too high for the kernel constant).
        blocks.push(window_values(63, 8, 5));
        for block in &blocks {
            let reference = window_digit(SimdTier::Scalar, block);
            for &tier in supported_tiers() {
                assert_eq!(
                    window_digit(tier, block),
                    reference,
                    "tier {tier} diverged on block of len {}",
                    block.len()
                );
            }
        }
    }

    #[test]
    fn extraction_is_identical_across_tiers_and_lanes() {
        for d in [20usize, 33, 62] {
            let a = 32 * d;
            let c = f64::from_bits((((a as i64 - 980 + 1023) as u64) << 52) | (1 << 51));
            for n in [1usize, 2, 3, 7, 63, 64, 65, 255, 1023, 1024] {
                let sub = window_values(d, n, (3 * d + n) as u64);
                let reference = extract_scalar::<8>(&sub, c);
                for &tier in supported_tiers() {
                    for lanes in [1usize, 2, 4, 8] {
                        let got = extract_sub(tier, lanes, &sub, c);
                        assert_eq!(
                            (got.0.to_bits(), got.1.to_bits()),
                            (reference.0.to_bits(), reference.1.to_bits()),
                            "tier {tier} lanes {lanes} d {d} n {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clamp_lanes_picks_instantiated_widths() {
        assert_eq!(clamp_lanes(0), 1);
        assert_eq!(clamp_lanes(1), 1);
        assert_eq!(clamp_lanes(3), 2);
        assert_eq!(clamp_lanes(4), 4);
        assert_eq!(clamp_lanes(7), 4);
        assert_eq!(clamp_lanes(8), 8);
        assert_eq!(clamp_lanes(100), 8);
    }
}
