//! Worst-case error bounds for floating-point summation.
//!
//! Section IV-A of the paper evaluates two a-priori bounds on the absolute
//! error of summing `n` values:
//!
//! * the **analytical** (deterministic, Higham-style) bound
//!   `n · u · Σ|xᵢ|`, and
//! * the **statistical** bound `√n · u · Σ|xᵢ|`, obtained by modelling the
//!   per-operation roundoffs as independent zero-mean random variables so
//!   their accumulation grows like a random walk.
//!
//! The paper's Figure 2 shows both bounds overestimate observed errors by
//! orders of magnitude — which is one of its arguments that static analysis
//! alone cannot drive algorithm selection.

/// Unit roundoff of IEEE-754 binary64 under round-to-nearest: `u = 2⁻⁵³`.
pub const UNIT_ROUNDOFF: f64 = 1.1102230246251565e-16; // 2^-53

/// The relative-perturbation factor `γₙ = n·u / (1 − n·u)` from Higham's
/// analysis. Valid (and finite) while `n·u < 1`.
///
/// Returns `f64::INFINITY` if `n·u >= 1` (astronomically long sums).
pub fn gamma(n: usize) -> f64 {
    let nu = n as f64 * UNIT_ROUNDOFF;
    if nu >= 1.0 {
        f64::INFINITY
    } else {
        nu / (1.0 - nu)
    }
}

/// Analytical worst-case bound on the absolute error of an `n`-term sum
/// with absolute-value sum `abs_sum = Σ|xᵢ|`, in the simple form the paper
/// states: `n · u · Σ|xᵢ|`.
///
/// (The sharp form uses `(n−1)` and `γₙ₋₁`; the paper's looser `n·u` form is
/// reproduced here because Figure 2 plots it. See [`higham_gamma_bound`] for
/// the sharp variant.)
pub fn higham_bound(n: usize, abs_sum: f64) -> f64 {
    n as f64 * UNIT_ROUNDOFF * abs_sum
}

/// Sharp Higham bound `γ_{n-1} · Σ|xᵢ|` on the absolute error of recursive
/// summation (Higham, *Accuracy of Floating Point Summation*, 1993).
pub fn higham_gamma_bound(n: usize, abs_sum: f64) -> f64 {
    if n <= 1 {
        0.0
    } else {
        gamma(n - 1) * abs_sum
    }
}

/// Statistical (random-walk) error estimate `√n · u · Σ|xᵢ|`.
///
/// Not a guaranteed bound — an estimate of the typical error magnitude under
/// a model where individual roundoffs cancel like independent random steps.
pub fn statistical_bound(n: usize, abs_sum: f64) -> f64 {
    (n as f64).sqrt() * UNIT_ROUNDOFF * abs_sum
}

/// Worst-case bound for *pairwise* (balanced-tree) summation:
/// `γ_{⌈log₂ n⌉} · Σ|xᵢ|`. Included because the reduction trees the paper
/// studies at exascale are balanced; their depth, not their size, drives the
/// deterministic bound.
pub fn pairwise_bound(n: usize, abs_sum: f64) -> f64 {
    if n <= 1 {
        0.0
    } else {
        let depth = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
        gamma(depth as usize) * abs_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundoff_is_two_pow_minus_53() {
        assert_eq!(UNIT_ROUNDOFF, 2f64.powi(-53));
        assert_eq!(UNIT_ROUNDOFF, f64::EPSILON / 2.0);
    }

    #[test]
    fn gamma_small_n() {
        assert_eq!(gamma(0), 0.0);
        assert!(gamma(1) > 0.0 && gamma(1) < 1.2e-16);
        // gamma is increasing in n.
        assert!(gamma(10) < gamma(100));
    }

    #[test]
    fn gamma_saturates_to_infinity() {
        assert_eq!(gamma(1 << 54), f64::INFINITY);
    }

    #[test]
    fn bounds_ordering_statistical_below_analytical() {
        for n in [2usize, 100, 10_000, 1_000_000] {
            let abs_sum = 1e6;
            assert!(
                statistical_bound(n, abs_sum) < higham_bound(n, abs_sum),
                "sqrt(n) < n for n = {n}"
            );
        }
    }

    #[test]
    fn pairwise_bound_beats_recursive_bound() {
        let abs_sum = 1.0;
        for n in [16usize, 1024, 1 << 20] {
            assert!(pairwise_bound(n, abs_sum) < higham_gamma_bound(n, abs_sum));
        }
    }

    #[test]
    fn trivial_sums_have_zero_bound() {
        assert_eq!(higham_gamma_bound(1, 123.0), 0.0);
        assert_eq!(pairwise_bound(1, 123.0), 0.0);
        assert_eq!(higham_bound(0, 123.0), 0.0);
    }

    #[test]
    fn bound_scales_linearly_with_abs_sum() {
        let b1 = higham_bound(1000, 1.0);
        let b2 = higham_bound(1000, 10.0);
        assert!((b2 / b1 - 10.0).abs() < 1e-12);
    }
}
