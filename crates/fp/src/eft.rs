//! Error-free transforms (EFTs).
//!
//! An error-free transform expresses the exact result of a floating-point
//! operation as an *unevaluated sum* of floating-point numbers. For addition,
//! `two_sum(a, b)` returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
//! **exactly**. These identities hold for every pair of finite `f64` inputs
//! (barring overflow) under IEEE-754 round-to-nearest, and are the foundation
//! of Kahan's compensated summation, composite-precision summation,
//! double-double arithmetic, and the binned/prerounded reproducible sums.

/// Knuth's branch-free two-sum.
///
/// Returns `(s, e)` with `s = fl(a + b)` and `s + e == a + b` exactly,
/// for any finite `a`, `b` whose sum does not overflow.
///
/// Costs 6 floating-point operations but places no precondition on the
/// relative magnitudes of `a` and `b`.
///
/// ```
/// use repro_fp::eft::two_sum;
/// let (s, e) = two_sum(1e16, 1.0);
/// assert_eq!(s, 1e16);      // 1.0 is entirely absorbed ...
/// assert_eq!(e, 1.0);       // ... and entirely recovered in the error term.
/// ```
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Dekker's fast two-sum, valid when `|a| >= |b|` (or either is zero).
///
/// Returns `(s, e)` with `s = fl(a + b)` and `s + e == a + b` exactly,
/// in 3 floating-point operations.
///
/// The magnitude precondition is checked with a `debug_assert!`; release
/// builds trust the caller. Prefer [`two_sum`] when the ordering is unknown.
#[inline(always)]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(
        b == 0.0 || a.abs() >= b.abs() || a.abs() == 0.0,
        "fast_two_sum precondition |a| >= |b| violated: a={a:e}, b={b:e}"
    );
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Exact product via fused multiply-add.
///
/// Returns `(p, e)` with `p = fl(a * b)` and `p + e == a * b` exactly
/// (for finite inputs without overflow/underflow into the subnormal range
/// of the error term).
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// Veltkamp splitting constant for `f64`: `2^27 + 1`.
const SPLIT: f64 = 134_217_729.0;

/// Veltkamp's split: decompose `a` into `hi + lo` where both halves have at
/// most 26 significant bits, so products of halves are exact in `f64`.
///
/// Used by [`two_prod_dekker`], the FMA-free exact product. Exposed for
/// testing and for building further FMA-free kernels.
#[inline(always)]
pub fn split(a: f64) -> (f64, f64) {
    let c = SPLIT * a;
    let hi = c - (c - a);
    let lo = a - hi;
    (hi, lo)
}

/// Dekker's exact product without FMA.
///
/// Returns `(p, e)` with `p = fl(a * b)` and `p + e == a * b` exactly, using
/// Veltkamp splitting. Slower than [`two_prod`] on hardware with FMA but
/// bit-identical to it; kept as a cross-checking reference implementation.
#[inline]
pub fn two_prod_dekker(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_recovers_absorbed_term() {
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s + e, 1e16 + 1.0);
        assert_eq!(e, 1.0);
    }

    #[test]
    fn two_sum_exact_identity_small_cases() {
        let cases = [
            (0.1, 0.2),
            (1e300, -1e284),
            (1.5, -1.5),
            (3.0, 4.5e-200),
            (-0.0, 0.0),
            (f64::MIN_POSITIVE, f64::MIN_POSITIVE / 2.0),
        ];
        for (a, b) in cases {
            let (s, e) = two_sum(a, b);
            assert_eq!(s, a + b, "s must equal fl(a+b) for ({a},{b})");
            // The identity s + e == a + b is exact in real arithmetic; we can
            // verify it with the superaccumulator in integration tests. Here
            // we at least require that e is the exact residual whenever the
            // residual is representable.
            if e != 0.0 {
                assert!(e.abs() <= 0.5 * crate::ulp::ulp(s).abs() + f64::MIN_POSITIVE);
            }
        }
    }

    #[test]
    fn fast_two_sum_matches_two_sum_when_ordered() {
        let cases = [
            (1e10, 3.7),
            (5.0, 5.0),
            (-8.0, 1.0),
            (2.0, -2.0),
            (1.0, 0.0),
        ];
        for (a, b) in cases {
            let (s1, e1) = two_sum(a, b);
            let (s2, e2) = fast_two_sum(a, b);
            assert_eq!(s1, s2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn two_prod_exact_for_representable_products() {
        let (p, e) = two_prod(1.0 + 2f64.powi(-30), 1.0 + 2f64.powi(-30));
        // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60; the 2^-60 term is the error.
        assert_eq!(p, 1.0 + 2f64.powi(-29));
        assert_eq!(e, 2f64.powi(-60));
    }

    #[test]
    fn dekker_product_matches_fma_product() {
        let cases = [
            (0.1, 0.3),
            (1e150, 1e-150),
            (-7.25, 9.875),
            (1.0 / 3.0, 3.0),
            (2f64.powi(500), 2f64.powi(-400)),
        ];
        for (a, b) in cases {
            let (p1, e1) = two_prod(a, b);
            let (p2, e2) = two_prod_dekker(a, b);
            assert_eq!(p1, p2, "products differ for ({a},{b})");
            assert_eq!(e1, e2, "error terms differ for ({a},{b})");
        }
    }

    #[test]
    fn split_halves_multiply_exactly() {
        for a in [0.1, 123456789.123456, -3.5e75, 1.0 + 2f64.powi(-50)] {
            let (hi, lo) = split(a);
            assert_eq!(hi + lo, a);
            // Each half has at most 26 significant bits, so hi*hi is exact.
            let exact = hi * hi;
            assert_eq!(exact, hi * hi);
        }
    }
}
