//! A small, deterministic pseudo-random generator (SplitMix64) so that
//! *library* crates need no external `rand` dependency.
//!
//! The workspace's generators, simulators, and selectors all consume
//! randomness through seeds — reproducibility demands that the stream
//! behind a seed is pinned by this repository, not by whatever version of
//! an external crate happens to be in the build graph. [`DetRng`] is that
//! pinned stream: SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), 64 bits of
//! state, passes BigCrush for our purposes, and is trivially portable.
//!
//! The API deliberately mirrors the subset of `rand` the workspace used
//! (`random_range`, `random`, `shuffle`, `choose`), so call sites read the
//! same; `rand` itself remains only as a dev-dependency of the test suites.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator.
///
/// ```
/// use repro_fp::rng::DetRng;
///
/// let mut a = DetRng::seed_from_u64(42);
/// let mut b = DetRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seed the stream. Named after `rand::SeedableRng::seed_from_u64` so
    /// migrated call sites read identically.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed value of `T` (full range for integers,
    /// `[0, 1)` for `f64`, fair coin for `bool`).
    pub fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(-1.0..1.0)`.
    pub fn random_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `u64` below `bound` (unbiased via 128-bit multiply-shift).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift; the modulo bias is at most 2^-64 per
        // draw, far below anything our statistics can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// An independent generator split off from this stream (for per-worker
    /// or per-lane substreams).
    pub fn fork(&mut self) -> Self {
        DetRng::seed_from_u64(self.next_u64())
    }
}

/// Types [`DetRng::random`] can produce.
pub trait StandardUniform {
    /// Draw one value from `rng`.
    fn sample(rng: &mut DetRng) -> Self;
}

impl StandardUniform for f64 {
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_f64()
    }
}

impl StandardUniform for bool {
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u64 {
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`DetRng::random_range`] can sample from.
pub trait UniformRange<T> {
    /// Draw one value of `T` uniformly from `self`.
    fn sample(self, rng: &mut DetRng) -> T;
}

impl UniformRange<f64> for Range<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        debug_assert!(self.start < self.end);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl UniformRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        let (lo, hi) = self.into_inner();
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper's
        // reference implementation.
        let mut rng = DetRng::seed_from_u64(1234567);
        let first = rng.next_u64();
        let mut again = DetRng::seed_from_u64(1234567);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n: usize = rng.random_range(3..17);
            assert!((3..17).contains(&n));
            let i: i32 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = DetRng::seed_from_u64(5);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*rng.choose(&xs).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
