//! Floating-point expansions (Shewchuk, *Adaptive Precision Floating-Point
//! Arithmetic and Fast Robust Geometric Predicates*, 1997).
//!
//! An **expansion** represents a real number exactly as an unevaluated sum
//! of `f64` components, ordered by increasing magnitude and pairwise
//! *nonoverlapping* (each component's bits occupy a disjoint binary range).
//! Expansion arithmetic is error-free: adding a double or another expansion
//! produces a new expansion whose value is exactly the true sum.
//!
//! In this workspace expansions serve as a third independent exact-summation
//! method (after the superaccumulator and `repro-hp`'s `BigFloat`), with a
//! different cost profile: O(size) per add with adaptive size, no fixed-width
//! register, no limbs — and as the substrate for the distillation-style
//! accurate sums in `repro-sum`.

use crate::eft::{fast_two_sum, two_sum};

/// A nonoverlapping, increasing-magnitude expansion: an exact unevaluated
/// sum of `f64` components.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Expansion {
    /// Components, smallest magnitude first, no zeros stored.
    components: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    pub fn new() -> Self {
        Self::default()
    }

    /// An expansion holding exactly `x`.
    pub fn from_f64(x: f64) -> Self {
        assert!(x.is_finite(), "expansions hold finite values");
        let components = if x == 0.0 { vec![] } else { vec![x] };
        Self { components }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the expansion is exactly zero.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The components, smallest magnitude first.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// Shewchuk's `GROW-EXPANSION`: exactly add one `f64`.
    pub fn add_f64(&mut self, b: f64) {
        assert!(b.is_finite(), "expansions hold finite values");
        if b == 0.0 {
            return;
        }
        let mut q = b;
        let mut out = Vec::with_capacity(self.components.len() + 1);
        for &e in &self.components {
            let (sum, err) = two_sum(q, e);
            if err != 0.0 {
                out.push(err);
            }
            q = sum;
        }
        if q != 0.0 {
            out.push(q);
        }
        self.components = out;
    }

    /// Shewchuk's `EXPANSION-SUM` (grow by each component): exactly add
    /// another expansion.
    pub fn add_expansion(&mut self, other: &Expansion) {
        for &c in &other.components {
            self.add_f64(c);
        }
    }

    /// Exactly negate.
    pub fn negate(&mut self) {
        for c in &mut self.components {
            *c = -*c;
        }
    }

    /// Shewchuk's `COMPRESS`: minimize the number of components while
    /// preserving the exact value; afterwards the largest component is a
    /// faithful approximation of the total.
    pub fn compress(&mut self) {
        if self.components.len() <= 1 {
            return;
        }
        // Downward sweep: absorb from largest to smallest.
        let mut g: Vec<f64> = Vec::with_capacity(self.components.len());
        let mut q = *self.components.last().unwrap();
        for &e in self.components.iter().rev().skip(1) {
            let (sum, err) = fast_two_sum(q, e);
            q = sum;
            if err != 0.0 {
                g.push(q);
                q = err;
            }
        }
        g.push(q);
        // g currently holds, from largest-absorbed downward; upward sweep
        // rebuilds a normalized increasing-magnitude expansion.
        let mut h: Vec<f64> = Vec::with_capacity(g.len());
        let mut q = *g.last().unwrap();
        for &e in g.iter().rev().skip(1) {
            let (sum, err) = fast_two_sum(e, q);
            q = sum;
            if err != 0.0 {
                h.push(err);
            }
        }
        if q != 0.0 || h.is_empty() {
            h.push(q);
        }
        if h == [0.0] {
            h.clear();
        }
        self.components = h;
    }

    /// The correctly-rounded-to-nearest `f64` value of the expansion.
    ///
    /// (Implemented via the exact superaccumulator; the conventional
    /// `estimate` — the largest component after compression — is only
    /// faithful, not correctly rounded.)
    pub fn to_f64(&self) -> f64 {
        let mut acc = crate::superacc::Superaccumulator::new();
        for &c in &self.components {
            acc.add(c);
        }
        acc.to_f64()
    }

    /// Shewchuk's `ESTIMATE`: the naive sum of components (faithful after
    /// [`Expansion::compress`], cheap always).
    pub fn estimate(&self) -> f64 {
        self.components.iter().sum()
    }

    /// Verify the nonoverlapping invariant (test support).
    ///
    /// Two components are nonoverlapping when the smaller one's most
    /// significant bit lies strictly below the larger one's least
    /// significant *set* bit.
    pub fn is_nonoverlapping(&self) -> bool {
        use crate::ulp::{decompose, exponent};
        for w in self.components.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo == 0.0 || hi == 0.0 {
                return false; // zeros must not be stored
            }
            if lo.abs() > hi.abs() {
                return false; // must increase in magnitude
            }
            let lo_top = exponent(lo).unwrap();
            let (_, m, shift) = decompose(hi);
            let hi_lsb = shift + m.trailing_zeros() as i32;
            if lo_top >= hi_lsb {
                return false;
            }
        }
        true
    }
}

/// Exactly sum a slice into an expansion (distillation).
pub fn expansion_sum(values: &[f64]) -> Expansion {
    let mut e = Expansion::new();
    for &v in values {
        e.add_f64(v);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_singleton() {
        assert!(Expansion::new().is_empty());
        assert_eq!(Expansion::new().to_f64(), 0.0);
        let e = Expansion::from_f64(3.5);
        assert_eq!(e.len(), 1);
        assert_eq!(e.to_f64(), 3.5);
    }

    #[test]
    fn grow_keeps_exact_value() {
        let mut e = Expansion::new();
        e.add_f64(1e16);
        e.add_f64(1.0);
        e.add_f64(-1e16);
        assert_eq!(e.to_f64(), 1.0);
        // And the estimate agrees after compression.
        e.compress();
        assert_eq!(e.estimate(), 1.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn expansion_matches_superaccumulator_on_hard_sets() {
        let values = [1e300, -1e284, 0.1, 2f64.powi(-60), -1e300, 1e284, 7.25];
        let e = expansion_sum(&values);
        assert_eq!(
            e.to_f64().to_bits(),
            crate::exact::exact_sum(&values).to_bits()
        );
        assert!(e.is_nonoverlapping(), "components: {:?}", e.components());
    }

    #[test]
    fn add_expansion_is_exact_concatenation() {
        let a = expansion_sum(&[0.1, 0.2, 1e10]);
        let b = expansion_sum(&[-1e10, 0.3]);
        let mut merged = a.clone();
        merged.add_expansion(&b);
        let all = [0.1, 0.2, 1e10, -1e10, 0.3];
        assert_eq!(
            merged.to_f64().to_bits(),
            crate::exact::exact_sum(&all).to_bits()
        );
    }

    #[test]
    fn negate_negates_exactly() {
        let mut e = expansion_sum(&[0.1, 1e16, -3.0]);
        let v = e.to_f64();
        e.negate();
        assert_eq!(e.to_f64(), -v);
    }

    #[test]
    fn compress_shrinks_without_changing_value() {
        // Many same-magnitude values grow the expansion; compression should
        // collapse it dramatically.
        let values: Vec<f64> = (0..200)
            .map(|i| 1.0 + (i as f64) * 2f64.powi(-30))
            .collect();
        let mut e = expansion_sum(&values);
        let before = e.to_f64();
        let len_before = e.len();
        e.compress();
        assert_eq!(e.to_f64().to_bits(), before.to_bits());
        assert!(e.len() <= len_before);
        assert!(e.len() <= 3, "compressed length {}", e.len());
        assert!(e.is_nonoverlapping());
    }

    #[test]
    fn cancellation_to_zero_empties_the_expansion() {
        let mut e = expansion_sum(&[1e10, 0.5, -1e10, -0.5]);
        e.compress();
        assert_eq!(e.to_f64(), 0.0);
    }

    #[test]
    fn estimate_is_faithful_after_compress() {
        let values: Vec<f64> = (0..50)
            .map(|i| ((i * 37 % 19) as f64 - 9.0) * 2f64.powi((i % 40) - 20))
            .collect();
        let mut e = expansion_sum(&values);
        e.compress();
        let exact = crate::exact::exact_sum(&values);
        let est = e.estimate();
        // Faithful: within one ulp of the exact sum.
        assert!((est - exact).abs() <= crate::ulp::ulp(exact).abs());
    }
}
