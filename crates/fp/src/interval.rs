//! Interval arithmetic — the paper's Section III-B technique.
//!
//! "Techniques based on interval arithmetic replace floating-point types
//! with custom types representing finite-length intervals of real numbers.
//! The actual value of the reduction is guaranteed to lie within the
//! interval. ... While the techniques are reproducible by design, they also
//! cause large slowdown and are not suitable for applications needing many
//! digits of accuracy."
//!
//! This module implements that technique so the workspace covers the
//! paper's full taxonomy and the ablation benches can quantify both halves
//! of the quoted sentence: the *guarantee* (the exact sum always lies in
//! the interval, for every reduction order) and the *cost* (interval width
//! grows with `n` while compensated methods hold error near one ulp).
//!
//! Rust exposes no rounding-mode control, so outward rounding is emulated
//! with [`crate::ulp::next_up`]/[`crate::ulp::next_down`] after each
//! operation — enclosures are up to one ulp wider per step than
//! hardware-directed rounding would give, which is conservative and
//! therefore still sound.

use crate::ulp::{next_down, next_up};
use std::fmt;

/// A closed interval `[lo, hi]` guaranteed to contain the exact value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (rounded toward −∞).
    pub lo: f64,
    /// Upper bound (rounded toward +∞).
    pub hi: f64,
}

impl Interval {
    /// The degenerate interval `[x, x]` (exact value).
    #[inline]
    pub fn point(x: f64) -> Self {
        assert!(x.is_finite(), "interval endpoints must be finite");
        Self { lo: x, hi: x }
    }

    /// The zero interval.
    pub const ZERO: Self = Self { lo: 0.0, hi: 0.0 };

    /// Construct from bounds (must satisfy `lo <= hi`).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Interval width `hi − lo` (the uncertainty).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint (rounded).
    #[inline]
    pub fn midpoint(&self) -> f64 {
        self.lo / 2.0 + self.hi / 2.0
    }

    /// `true` if `x` lies in the interval.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Outward-rounded addition: the result contains every `a + b` with
    /// `a ∈ self`, `b ∈ other`. (Also available as the `+` operator.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, other: Self) -> Self {
        let lo = down(self.lo + other.lo);
        let hi = up(self.hi + other.hi);
        Self { lo, hi }
    }

    /// Outward-rounded addition of an exact `f64`.
    #[inline]
    pub fn add_f64(self, x: f64) -> Self {
        self.add(Self::point(x))
    }

    /// Exact negation (interval arithmetic is exact under negation).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn neg(self) -> Self {
        Self {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Outward-rounded subtraction.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn sub(self, other: Self) -> Self {
        self.add(other.neg())
    }

    /// Outward-rounded multiplication (all four corner products).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Self) -> Self {
        let corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            lo: down(lo),
            hi: up(hi),
        }
    }

    /// Outward-rounded division. Returns `None` when the divisor interval
    /// contains zero (the quotient would be unbounded). Not an `ops::Div`
    /// impl because the result is fallible.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Self) -> Option<Self> {
        if other.contains(0.0) {
            return None;
        }
        let corners = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            lo: down(lo),
            hi: up(hi),
        })
    }

    /// Hull of two intervals (smallest interval containing both).
    pub fn hull(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Round a computed lower bound toward −∞ (conservative: one ulp past the
/// rounded value unless the operation was exact — we cannot detect
/// exactness cheaply without rounding-mode control, so always step).
#[inline]
fn down(x: f64) -> f64 {
    next_down(x)
}

/// Round a computed upper bound toward +∞.
#[inline]
fn up(x: f64) -> f64 {
    next_up(x)
}

impl std::ops::Add for Interval {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Interval::add(self, rhs)
    }
}

impl std::ops::Sub for Interval {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Interval::sub(self, rhs)
    }
}

impl std::ops::Mul for Interval {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Interval::mul(self, rhs)
    }
}

impl std::ops::Neg for Interval {
    type Output = Self;
    fn neg(self) -> Self {
        Interval::neg(self)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:e}, {:e}]", self.lo, self.hi)
    }
}

/// Sum a slice in interval arithmetic: the result is **guaranteed** to
/// contain the exact sum, for every summation order.
pub fn interval_sum(values: &[f64]) -> Interval {
    let mut acc = Interval::ZERO;
    for &v in values {
        acc = acc.add_f64(v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_intervals_are_tight() {
        let p = Interval::point(3.5);
        assert_eq!(p.width(), 0.0);
        assert!(p.contains(3.5));
        assert!(!p.contains(3.5000001));
    }

    #[test]
    fn addition_encloses_the_exact_sum() {
        let a = Interval::point(0.1);
        let b = Interval::point(0.2);
        let s = a.add(b);
        // The exact real 0.3 is NOT fl(0.1)+fl(0.2); the enclosure must
        // contain the exact sum of the two doubles.
        let exact = crate::exact::exact_sum(&[0.1, 0.2]);
        assert!(s.contains(exact));
        assert!(s.width() > 0.0 && s.width() < 1e-15);
    }

    #[test]
    fn interval_sum_always_contains_exact_for_any_order() {
        let mut values: Vec<f64> = (0..500)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) * 2f64.powi(i % 60 - 30))
            .collect();
        let exact = crate::exact::exact_sum(&values);
        for _ in 0..5 {
            values.reverse();
            values.swap(0, 250);
            let enclosure = interval_sum(&values);
            assert!(
                enclosure.contains(exact),
                "enclosure {enclosure} lost the exact sum {exact:e}"
            );
        }
    }

    #[test]
    fn width_grows_with_n() {
        let small = interval_sum(&vec![0.1; 100]);
        let large = interval_sum(&vec![0.1; 10_000]);
        assert!(large.width() > small.width() * 50.0);
    }

    #[test]
    fn negation_and_subtraction() {
        let a = Interval::new(1.0, 2.0);
        let n = a.neg();
        assert_eq!((n.lo, n.hi), (-2.0, -1.0));
        let d = a.sub(a);
        assert!(d.contains(0.0));
        assert!(
            d.lo < 0.0 && d.hi > 0.0,
            "self-subtraction keeps uncertainty"
        );
    }

    #[test]
    fn multiplication_corners() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-5.0, 1.0);
        let p = a.mul(b);
        // Corners: 10, -2, -15, 3 -> [-15, 10] (outward).
        assert!(p.lo <= -15.0 && p.hi >= 10.0);
        assert!(p.lo > -15.1 && p.hi < 10.1);
    }

    #[test]
    fn division_encloses_and_rejects_zero_divisors() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(4.0, 8.0);
        let q = a.div(b).unwrap();
        // True range: [1/8, 1/2].
        assert!(q.contains(0.125) && q.contains(0.5));
        assert!(q.lo > 0.12 && q.hi < 0.51);
        // Zero-crossing divisor -> None.
        assert!(a.div(Interval::new(-1.0, 1.0)).is_none());
        assert!(a.div(Interval::new(0.0, 1.0)).is_none());
        // Negative divisors flip signs soundly.
        let qn = a.div(Interval::new(-4.0, -2.0)).unwrap();
        assert!(qn.contains(-0.5) && qn.contains(-0.25));
    }

    #[test]
    fn hull_contains_both() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(5.0, 6.0);
        let h = a.hull(b);
        assert_eq!((h.lo, h.hi), (0.0, 6.0));
    }

    #[test]
    fn midpoint_of_symmetric_interval() {
        let a = Interval::new(-1.0, 1.0);
        assert_eq!(a.midpoint(), 0.0);
    }
}
