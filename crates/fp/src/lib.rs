//! # `repro-fp` — floating-point building blocks for reproducible reductions
//!
//! This crate provides the numerical substrate used throughout the
//! `repro-reduce` workspace:
//!
//! * [`eft`] — *error-free transforms*: [`eft::two_sum`], [`eft::fast_two_sum`]
//!   and [`eft::two_prod`], the primitives from which every compensated
//!   summation algorithm is built.
//! * [`dd`] — [`dd::DoubleDouble`], an unevaluated sum of two `f64`s giving
//!   roughly 106 bits of significand. This is the "composite precision"
//!   carrier type of the paper, and the double-double type of He & Ding.
//! * [`ulp`] — exponent extraction, unit-in-the-last-place computation,
//!   neighbour traversal, and sign-aware total-order ulp distances
//!   ([`ulp::ulp_distance`]) for `f64`, including full subnormal handling.
//! * [`superacc`] — [`superacc::Superaccumulator`], a Kulisch-style wide
//!   fixed-point accumulator that adds *any* sequence of finite `f64` values
//!   **exactly** and rounds to `f64` correctly (round-to-nearest-even) exactly
//!   once, at the end. It replaces the paper's GNU MPFR quad-double reference
//!   with something strictly stronger.
//! * [`exact`] — exact-sum-derived dataset measurements: exact sums, exact
//!   absolute sums, sum condition numbers and dynamic ranges, and exact
//!   per-result error measurement.
//! * [`expansion`] — Shewchuk floating-point expansions: a third
//!   independent exact-summation method with an adaptive-size cost profile.
//! * [`interval`] — outward-rounded interval arithmetic (the paper's
//!   Section III-B technique): guaranteed enclosures, growing width.
//! * [`hexfloat`] — C99 `%a`-style hex-float text: bit-exact, round-trip
//!   safe interchange for reproducibility artifacts.
//! * [`bounds`] — the analytical (Higham) and statistical worst-case error
//!   bounds the paper evaluates in its Figure 2.
//! * [`rng`] — [`rng::DetRng`], a deterministic SplitMix64 generator: the
//!   pinned randomness source behind every seeded workload generator and
//!   simulator in the workspace (no external `rand` in library code).
//! * [`simd`] — runtime-dispatched SSE2/AVX2 kernels for the batched
//!   superaccumulator hot path, selected once per process (with a
//!   `REPRO_SIMD` override) and bit-identical to the scalar tier.
//!
//! This crate is `#![deny(unsafe_code)]`, deterministic, and
//! dependency-free; the only `unsafe` lives in [`simd`], confined to
//! `#[target_feature]` intrinsics behind runtime CPU detection.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod dd;
pub mod eft;
pub mod exact;
pub mod expansion;
pub mod hexfloat;
pub mod interval;
pub mod rng;
pub mod simd;
pub mod superacc;
pub mod ulp;

pub use bounds::{higham_bound, statistical_bound, UNIT_ROUNDOFF};
pub use dd::DoubleDouble;
pub use eft::{fast_two_sum, two_prod, two_sum};
pub use exact::{
    abs_error, abs_error_vs, condition_number, decimal_exponent, dynamic_range,
    dynamic_range_binary, exact_abs_sum, exact_sum, exact_sum_acc,
};
pub use expansion::{expansion_sum, Expansion};
pub use hexfloat::{format_hex, parse_hex};
pub use interval::{interval_sum, Interval};
pub use simd::SimdTier;
pub use superacc::Superaccumulator;
pub use ulp::ulp_distance;
