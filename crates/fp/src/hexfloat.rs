//! Hexadecimal floating-point text (C99 `%a` style): **bit-exact**,
//! human-legible representations of `f64`, the right interchange format for
//! a reproducibility toolkit (decimal text needs 17 digits and careful
//! rounding to round-trip; hex floats round-trip by construction).
//!
//! ```
//! use repro_fp::hexfloat::{format_hex, parse_hex};
//!
//! assert_eq!(format_hex(1.0), "0x1p+0");
//! assert_eq!(format_hex(-0.15625), "-0x1.4p-3");
//! let x = 0.1f64;
//! assert_eq!(parse_hex(&format_hex(x)).unwrap().to_bits(), x.to_bits());
//! ```

use crate::ulp::decompose;

/// Format a finite `f64` as a C99-style hex float (`±0x1.fffp±e`), lossless
/// and canonical (normals carry a leading `1.`, subnormals a leading `0.`
/// at exponent −1022, trailing zero nibbles trimmed).
///
/// Specials: `"nan"`, `"inf"`, `"-inf"`, `"0x0p+0"`, `"-0x0p+0"`.
pub fn format_hex(x: f64) -> String {
    if x.is_nan() {
        return "nan".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    let sign = if x.is_sign_negative() { "-" } else { "" };
    if x == 0.0 {
        return format!("{sign}0x0p+0");
    }
    let bits = x.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    let (lead, exp) = if raw_exp != 0 {
        ('1', raw_exp - 1023)
    } else {
        ('0', -1022)
    };
    let mut hex = format!("{frac:013x}");
    while hex.len() > 1 && hex.ends_with('0') {
        hex.pop();
    }
    if frac == 0 {
        format!("{sign}0x{lead}p{exp:+}")
    } else {
        format!("{sign}0x{lead}.{hex}p{exp:+}")
    }
}

/// Parse a hex float back to `f64` (accepts any number of mantissa nibbles
/// and non-canonical leading digits 0..=f; exact while the significand fits
/// 53 bits, correctly rounded RNE beyond that).
///
/// Returns `None` on malformed input.
pub fn parse_hex(text: &str) -> Option<f64> {
    let t = text.trim();
    match t {
        "nan" => return Some(f64::NAN),
        "inf" => return Some(f64::INFINITY),
        "-inf" => return Some(f64::NEG_INFINITY),
        _ => {}
    }
    let (neg, t) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let t = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))?;
    let (mantissa_text, exp_text) = t.split_once(['p', 'P'])?;
    let exp: i32 = exp_text.parse().ok()?;
    let (int_part, frac_part) = match mantissa_text.split_once('.') {
        Some((i, f)) => (i, f),
        None => (mantissa_text, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return None;
    }
    // Accumulate nibbles into a 128-bit significand (tracking sticky bits
    // if the input is absurdly long).
    let mut sig: u128 = 0;
    let mut frac_bits = 0i32;
    let mut sticky = false;
    for c in int_part.chars() {
        let d = c.to_digit(16)? as u128;
        if sig >> 120 != 0 {
            return None; // integer part too large to be sane input
        }
        sig = (sig << 4) | d;
    }
    for c in frac_part.chars() {
        let d = c.to_digit(16)? as u128;
        if sig >> 120 != 0 {
            sticky |= d != 0;
        } else {
            sig = (sig << 4) | d;
            frac_bits += 4;
        }
    }
    if sig == 0 {
        return Some(if neg { -0.0 } else { 0.0 });
    }
    // value = sig · 2^(exp − frac_bits); reduce sig to ≤ 53 bits with RNE.
    let mut e = exp - frac_bits;
    let top = 127 - sig.leading_zeros() as i32;
    if top > 52 {
        let drop = (top - 52) as u32;
        let kept = (sig >> drop) as u64;
        let round = (sig >> (drop - 1)) & 1 == 1;
        let rest = sig & ((1u128 << (drop - 1)) - 1) != 0 || sticky;
        let mut m = kept;
        if round && (rest || m & 1 == 1) {
            m += 1;
        }
        e += drop as i32;
        let v = compose(m, e)?;
        return Some(if neg { -v } else { v });
    }
    let v = compose(sig as u64, e)?;
    Some(if neg { -v } else { v })
}

/// `m · 2^e` exactly (handles subnormal/overflow edges); `m < 2^54`.
fn compose(m: u64, e: i32) -> Option<f64> {
    if m == 0 {
        return Some(0.0);
    }
    let lead = 63 - m.leading_zeros() as i32;
    let value_exp = e + lead; // binade of the value
    if value_exp > 1023 {
        return Some(f64::INFINITY);
    }
    if value_exp < -1075 {
        return Some(0.0);
    }
    // Build via two exact power-of-two scalings to stay in range.
    let half = e / 2;
    let rest = e - half;
    let scale = |k: i32| -> f64 { crate::ulp::pow2(k.clamp(-1074, 1023)) };
    let v = (m as f64) * scale(half) * scale(rest);
    if v.is_finite() {
        Some(v)
    } else {
        Some(f64::INFINITY)
    }
}

/// Convenience: re-create a value from `format_hex` output, panicking on
/// malformed text (which `format_hex` never produces).
pub fn from_hex_unchecked(text: &str) -> f64 {
    parse_hex(text).expect("canonical hex float")
}

/// Decompose-based alternative formatting used in tests as an independent
/// check: `m * 2^e` with decimal m.
pub fn format_exact_parts(x: f64) -> String {
    if x == 0.0 || !x.is_finite() {
        return format_hex(x);
    }
    let (s, m, e) = decompose(x);
    format!("{}{}p{:+}", if s < 0 { "-" } else { "" }, m, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_examples() {
        assert_eq!(format_hex(1.0), "0x1p+0");
        assert_eq!(format_hex(2.0), "0x1p+1");
        assert_eq!(format_hex(1.5), "0x1.8p+0");
        assert_eq!(format_hex(-0.15625), "-0x1.4p-3");
        assert_eq!(format_hex(0.0), "0x0p+0");
        assert_eq!(format_hex(-0.0), "-0x0p+0");
        assert_eq!(format_hex(f64::INFINITY), "inf");
        assert_eq!(format_hex(f64::NAN), "nan");
        assert_eq!(format_hex(f64::MIN_POSITIVE), "0x1p-1022");
        assert_eq!(format_hex(f64::from_bits(1)), "0x0.0000000000001p-1022");
    }

    #[test]
    fn round_trips_are_bit_exact() {
        let cases = [
            0.1,
            -std::f64::consts::PI,
            1e300,
            -1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 1024.0,
            f64::from_bits(1),
            -0.0,
            0.0,
        ];
        for x in cases {
            let text = format_hex(x);
            let back = parse_hex(&text).unwrap_or_else(|| panic!("{text}"));
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn parses_non_canonical_forms() {
        assert_eq!(parse_hex("0x2p+0").unwrap(), 2.0);
        assert_eq!(parse_hex("0x10p-4").unwrap(), 1.0);
        assert_eq!(parse_hex("0x.8p+1").unwrap(), 1.0);
        assert_eq!(parse_hex("0X1.8P0").unwrap(), 1.5);
        assert_eq!(parse_hex("+0x1p+0").unwrap(), 1.0);
    }

    #[test]
    fn long_mantissas_round_to_nearest() {
        // 1 + 2^-53 (half ulp): ties to even -> 1.0.
        assert_eq!(parse_hex("0x1.00000000000008p+0").unwrap(), 1.0);
        // With a sticky nibble beyond: rounds up.
        assert_eq!(
            parse_hex("0x1.000000000000081p+0").unwrap(),
            1.0 + f64::EPSILON
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "0x", "1.5", "0xzp+0", "0x1p", "0x1px", "0x.p+0"] {
            assert!(parse_hex(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn overflow_and_underflow_saturate() {
        assert_eq!(parse_hex("0x1p+2000").unwrap(), f64::INFINITY);
        assert_eq!(parse_hex("0x1p-2000").unwrap(), 0.0);
    }

    #[test]
    fn exact_parts_formatting() {
        assert_eq!(format_exact_parts(1.0), "4503599627370496p-52");
        assert_eq!(format_exact_parts(-0.0), "-0x0p+0");
    }
}
