//! Exact summation via a Kulisch-style superaccumulator.
//!
//! A [`Superaccumulator`] is a wide fixed-point register covering the entire
//! exponent range of `f64` (bit weights `2^-1074` through beyond `2^1088`),
//! so the sum of **any** sequence of finite `f64` values is accumulated with
//! *no rounding at all*. A single correctly-rounded conversion back to `f64`
//! (round-to-nearest-even) happens in [`Superaccumulator::to_f64`].
//!
//! In this workspace the superaccumulator plays the role the paper assigns to
//! GNU MPFR quad-double arithmetic: the accurate reference against which all
//! summation errors are measured. Exact fixed-point accumulation is strictly
//! stronger than quad-double (it is error-free for sums), and — critically for
//! a paper about reproducibility — it is bitwise independent of the order in
//! which values are added.
//!
//! # Representation
//!
//! The register is a little-endian array of [`DIGITS`] base-2³² digits stored
//! in `i64` slots. Bit `p` of the register has weight `2^(p - 1074)`. Between
//! normalizations, digits may hold values outside `[0, 2³²)`; a counter
//! triggers carry propagation long before any `i64` could overflow. The final
//! carry out of the top digit is kept in a sign-extension word, making the
//! whole register a two's-complement fixed-point number:
//!
//! ```text
//! value = sign_ext · 2^(32·DIGITS - 1074) + Σ_i digits[i] · 2^(32·i - 1074)
//! ```

use crate::dd::DoubleDouble;
use crate::simd::{self, SimdTier};
use crate::ulp::decompose;

/// Number of base-2³² digits in the register.
///
/// Bit span = `32 * DIGITS` = 2240 bits, covering weights `2^-1074` up to
/// `2^1166`; sums of up to 2⁷⁸ values of maximal magnitude fit without
/// overflow, far beyond anything a real reduction produces.
pub const DIGITS: usize = 70;

/// Adds between forced normalizations. Each `add` perturbs a digit by less
/// than 2³²; digits start in `[0, 2³²)`, so `2³⁰` adds keep every digit well
/// within `i64` range.
const NORMALIZE_EVERY: u32 = 1 << 30;

const DIGIT_MASK: i64 = 0xffff_ffff;

/// Bit width of the register-resident deposit window used by
/// [`Superaccumulator::add_slice`]: values whose mantissa's least
/// significant bit falls within 64 bits above the window anchor are
/// accumulated as `mantissa << s` in wide lane registers instead of being
/// scattered into the heap-resident digit array. Two digits of coverage is
/// enough for runs of similar-exponent values (the common case the batched
/// kernel targets); everything else takes the direct scalar-style deposit.
const WINDOW_BITS: usize = 64;

/// Independent `i128` lane accumulators interleaved round-robin by the
/// batched kernel. Consecutive same-exponent deposits would otherwise
/// serialize on one read-modify-write chain; four disjoint chains let the
/// CPU overlap them. Integer addition is exact and commutative, so the
/// split cannot change the accumulated value.
const ACC_LANES: usize = 4;

/// Elements per spill block of the batched kernel. At most
/// `BLOCK / ACC_LANES = 512` deposits land in one lane, each below
/// `2^(53 + WINDOW_BITS - 1) = 2^116`, so a lane's magnitude stays under
/// `2^126` — `i128` cannot overflow within a block. The same bound keeps
/// every partial sum of the error-free-extraction kernel exactly
/// representable (see [`Superaccumulator::add_block_extracted`]).
const BLOCK: usize = 2048;

/// Default accumulator-chain count of the error-free-extraction kernel.
/// Independent chains break the one-FP-add-latency-per-element dependency
/// chain; each chain folds at most [`simd::SUB_BLOCK`] elements between
/// deposits, which keeps every partial sum exactly representable (see
/// [`Superaccumulator::add_block_extracted`]). Callers can narrow or widen
/// the chain count through [`Superaccumulator::add_slice_lanes`] — the
/// result is bit-identical either way.
const FP_LANES: usize = 8;

/// A wide fixed-point accumulator that sums `f64` values exactly.
///
/// ```
/// use repro_fp::Superaccumulator;
///
/// let mut acc = Superaccumulator::new();
/// // Catastrophic for plain f64 (absorption), trivial for the register:
/// acc.add(1e16);
/// acc.add(1.0);
/// acc.add(-1e16);
/// assert_eq!(acc.to_f64(), 1.0);
/// ```
#[derive(Clone)]
pub struct Superaccumulator {
    digits: Box<[i64; DIGITS]>,
    /// Two's-complement sign extension beyond the top digit (`0` or `-1`
    /// after normalization, for in-range values).
    sign_ext: i64,
    /// Adds since the last normalization.
    pending: u32,
    /// Saw at least one NaN input (or both +inf and -inf).
    nan: bool,
    /// Saw +infinity / -infinity.
    pos_inf: bool,
    neg_inf: bool,
}

impl Default for Superaccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Superaccumulator {
    /// A fresh, zero-valued accumulator.
    pub fn new() -> Self {
        Self {
            digits: Box::new([0i64; DIGITS]),
            sign_ext: 0,
            pending: 0,
            nan: false,
            pos_inf: false,
            neg_inf: false,
        }
    }

    /// Exactly sum an iterator of values (batched through [`Self::add_slice`]).
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut acc = Self::new();
        acc.extend(values);
        acc
    }

    /// Add a value exactly. Non-finite inputs are recorded and poison the
    /// final conversion exactly as IEEE-754 sequential addition would
    /// (`+inf` + `-inf` → NaN).
    #[inline]
    pub fn add(&mut self, x: f64) {
        if x == 0.0 {
            return;
        }
        if !x.is_finite() {
            self.note_nonfinite(x);
            return;
        }
        let (sign, mantissa, shift) = decompose(x);
        // Bit position of the mantissa's least significant bit.
        let p = (shift + 1074) as u32;
        let d = (p >> 5) as usize;
        let r = p & 31;
        // mantissa < 2^53, r < 32  =>  v < 2^85: three 32-bit chunks.
        let v = (mantissa as u128) << r;
        let c0 = (v & 0xffff_ffff) as i64;
        let c1 = ((v >> 32) & 0xffff_ffff) as i64;
        let c2 = ((v >> 64) & 0xffff_ffff) as i64;
        if sign > 0 {
            self.digits[d] += c0;
            self.digits[d + 1] += c1;
            self.digits[d + 2] += c2;
        } else {
            self.digits[d] -= c0;
            self.digits[d + 1] -= c1;
            self.digits[d + 2] -= c2;
        }
        self.pending += 1;
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Subtract a value exactly (`add(-x)`).
    #[inline]
    pub fn sub(&mut self, x: f64) {
        self.add(-x);
    }

    /// Add every value in `values` exactly — the batched hot path.
    ///
    /// Bitwise identical to `for &x in values { self.add(x) }` (the register
    /// holds exact integers, so deposit order and grouping cannot matter),
    /// but substantially faster. Work proceeds in [`BLOCK`]-element blocks:
    ///
    /// * If a cheap branch-free scan proves every value in the block is a
    ///   normal number whose mantissa lives in one 32-bit digit window
    ///   (the common case — locally similar exponents), the block runs
    ///   through the error-free-extraction kernel
    ///   ([`Self::add_block_extracted`]): six FP add/subs per element split
    ///   each value exactly onto grid-aligned accumulator chains, and the
    ///   whole block collapses into a handful of exact deposits.
    /// * Otherwise the generic kernel ([`Self::add_block`]) deposits each
    ///   element through [`WINDOW_BITS`]-anchored `i128` lane registers.
    ///
    /// Both hot loops run on the process-wide SIMD dispatch tier
    /// ([`simd::active_tier`]; `REPRO_SIMD` overrides) — every tier is
    /// bit-identical, see the [`simd`] module docs.
    pub fn add_slice(&mut self, values: &[f64]) {
        self.add_slice_impl(values, simd::active_tier(), FP_LANES);
    }

    /// [`Self::add_slice`] on an explicit dispatch tier (bit-identical to
    /// every other tier; used by the cross-tier equivalence tests, the CI
    /// dispatch matrix, and the bench suite's per-tier entries).
    pub fn add_slice_with_tier(&mut self, values: &[f64], tier: SimdTier) {
        self.add_slice_impl(values, tier, FP_LANES);
    }

    /// [`Self::add_slice`] with an explicit accumulator-chain count
    /// (`lanes`, clamped to 1/2/4/8) for the extraction kernel. The lane
    /// count is purely an instruction-level-parallelism knob: narrow widths
    /// serialize on FP-add latency, wide widths overlap chains. The result
    /// is bit-identical for every width.
    pub fn add_slice_lanes(&mut self, values: &[f64], lanes: usize) {
        self.add_slice_impl(values, simd::active_tier(), lanes);
    }

    /// [`Self::add_slice`] with both dispatch knobs explicit — the entry the
    /// cross-tier property tests and the bench suite sweep. Bit-identical
    /// for every `(tier, lanes)` combination.
    pub fn add_slice_dispatch(&mut self, values: &[f64], tier: SimdTier, lanes: usize) {
        self.add_slice_impl(values, tier, lanes);
    }

    fn add_slice_impl(&mut self, values: &[f64], tier: SimdTier, lanes: usize) {
        let mut rest = values;
        while !rest.is_empty() {
            // Keep digit growth since the last normalization under the
            // NORMALIZE_EVERY budget so no i64 digit slot can overflow.
            // Each element costs at most one growth unit plus at most
            // 4 * ACC_LANES spill units per BLOCK, so half the remaining
            // budget in elements always fits.
            let budget = ((NORMALIZE_EVERY - self.pending) / 2).max(1) as usize;
            let take = rest.len().min(budget);
            let (head, tail) = rest.split_at(take);
            for block in head.chunks(BLOCK) {
                match simd::window_digit(tier, block) {
                    Some(d) => self.add_block_extracted(block, d, tier, lanes),
                    None => self.add_block(block),
                }
            }
            if self.pending >= NORMALIZE_EVERY {
                self.normalize();
            }
            rest = tail;
        }
    }

    /// Add the absolute value of every element in `values` exactly, staging
    /// through a stack buffer so telemetry shadows get the batched path
    /// without a heap allocation.
    pub fn add_slice_abs(&mut self, values: &[f64]) {
        let mut buf = [0.0f64; 128];
        for chunk in values.chunks(buf.len()) {
            for (slot, &x) in buf.iter_mut().zip(chunk.iter()) {
                *slot = x.abs();
            }
            self.add_slice(&buf[..chunk.len()]);
        }
    }

    /// One spill block of `add_slice`: at most [`BLOCK`] elements, so the
    /// wide lane registers cannot overflow before the spill at the end.
    fn add_block(&mut self, block: &[f64]) {
        debug_assert!(block.len() <= BLOCK);
        let mut acc = [0i128; ACC_LANES];
        // Window anchor: bit position of the window's least significant bit,
        // always 32-aligned. `usize::MAX` marks the window as unanchored.
        let mut anchor = usize::MAX;
        let mut lane = 0usize;
        // Digit-growth units toward the `pending` budget: one per direct
        // deposit (three sub-2^32 chunks, same as a scalar `add`) plus one
        // per sub-2^32 chunk spilled from a wide lane.
        let mut units: u32 = 0;
        for &x in block {
            if x == 0.0 {
                continue;
            }
            if !x.is_finite() {
                self.note_nonfinite(x);
                continue;
            }
            let (sign, mantissa, shift) = decompose(x);
            // Bit position of the mantissa's least significant bit.
            let p = (shift + 1074) as usize;
            if anchor == usize::MAX {
                // First deposit anchors the window one digit below its own,
                // leaving 32 bits of headroom for downward exponent drift.
                anchor = ((p >> 5).saturating_sub(1)) << 5;
            }
            let s = p.wrapping_sub(anchor);
            if s < WINDOW_BITS {
                // In-window: a single shifted add on a lane register.
                let v = (mantissa as i128) << s;
                let slot = &mut acc[lane & (ACC_LANES - 1)];
                if sign > 0 {
                    *slot += v;
                } else {
                    *slot -= v;
                }
                lane = lane.wrapping_add(1);
            } else {
                // Out of window: deposit straight into the digit array
                // (the scalar path minus its per-element bookkeeping).
                let d = p >> 5;
                let r = p & 31;
                let v = (mantissa as u128) << r;
                let c0 = (v & 0xffff_ffff) as i64;
                let c1 = ((v >> 32) & 0xffff_ffff) as i64;
                let c2 = ((v >> 64) & 0xffff_ffff) as i64;
                if sign > 0 {
                    self.digits[d] += c0;
                    self.digits[d + 1] += c1;
                    self.digits[d + 2] += c2;
                } else {
                    self.digits[d] -= c0;
                    self.digits[d + 1] -= c1;
                    self.digits[d + 2] -= c2;
                }
                units += 1;
            }
        }
        if anchor != usize::MAX {
            let base = anchor >> 5;
            for a in acc {
                units += self.deposit_wide(a, base);
            }
        }
        self.pending = self.pending.saturating_add(units);
    }

    /// Spill one wide lane register into the digit array at digit `base`.
    ///
    /// Returns the number of sub-2^32 chunks deposited (each perturbs one
    /// digit, so it counts as that many units toward the `pending` budget).
    /// `|acc| < 2^126` (see [`BLOCK`]) splits into at most four chunks, and
    /// in-window deposits have digit index at most `base + 1 <= 64`, so
    /// `base + 3` stays within the register.
    fn deposit_wide(&mut self, acc: i128, base: usize) -> u32 {
        if acc == 0 {
            return 0;
        }
        let neg = acc < 0;
        let mut mag = acc.unsigned_abs();
        let mut i = base;
        let mut units = 0;
        while mag != 0 {
            let chunk = (mag & 0xffff_ffff) as i64;
            if neg {
                self.digits[i] -= chunk;
            } else {
                self.digits[i] += chunk;
            }
            mag >>= 32;
            i += 1;
            units += 1;
        }
        units
    }

    /// Error-free-extraction kernel: exactly sum a block whose values all
    /// have their mantissa's LSB inside digit window `d` (see
    /// [`window_digit`]), i.e. bit positions `p` in `[32d, 32d + 32)`.
    ///
    /// Rump–Ogita–Oishi grid extraction: with `C = 1.5 * 2^(52 + g)` and
    /// round-to-nearest, `q = (x + C) - C` is `x` rounded to a multiple of
    /// `2^g`, and `x - q` is computed exactly. Values in the window span
    /// bits `[a, a + 84)` (`a = 32d`), so ONE extraction at `g = a + 42`
    /// splits each value into two parts that both fit 53 significant bits:
    ///
    /// ```text
    /// x == q + r,   q = k1 * 2^(a+42)  (|k1| <= 2^42 + 1),
    ///               r = k0 * 2^a       (|k0| <  2^41)
    /// ```
    ///
    /// Parts accumulate in plain `f64` adds that are all **exact**: chains
    /// fold at most [`simd::SUB_BLOCK`] = 1024 elements per deposit group,
    /// so a folded `hi` sum stays below `1024 * (2^42 + 1) = 2^52 + 2^10`
    /// grid units and a folded `lo` sum below `2^51`, inside the `2^53`
    /// exact-integer range. Each deposit group collapses into two exact
    /// deposits (one `hi`, one `lo`). No integer ops, no branches, no sign
    /// special-casing — and because exact additions are associative, every
    /// dispatch tier and chain count lands the identical register state
    /// (see [`simd::extract_deposits`]).
    fn add_block_extracted(&mut self, block: &[f64], d: usize, tier: SimdTier, lanes: usize) {
        let a = 32 * d; // window base as a bit position (weight 2^(a-1074))
                        // C = 1.5 * 2^(a + 94 - 1074): grid 2^(a + 42 - 1074).
        let c = f64::from_bits((((a as i64 - 980 + 1023) as u64) << 52) | (1 << 51));
        let mut deposit = |v: f64| self.add(v);
        simd::extract_deposits(tier, lanes, block, c, &mut deposit);
    }

    /// Record a non-finite input (shared by `add` and the batched path).
    #[cold]
    fn note_nonfinite(&mut self, x: f64) {
        if x.is_nan() {
            self.nan = true;
        } else if x > 0.0 {
            self.pos_inf = true;
        } else {
            self.neg_inf = true;
        }
    }

    /// Merge another accumulator into this one (exact; order-independent).
    ///
    /// Allocation-free: instead of cloning `other` to normalize it, the carry
    /// sweep runs on the fly over the borrowed digits, adding each normalized
    /// digit (always in `[0, 2³²)`) to the already-normalized `self`.
    pub fn merge(&mut self, other: &Self) {
        self.normalize();
        let mut carry: i64 = 0;
        for (a, &b) in self.digits.iter_mut().zip(other.digits.iter()) {
            let t = b + carry;
            let low = t & DIGIT_MASK;
            carry = (t - low) >> 32;
            *a += low; // both in [0, 2^32): no overflow
        }
        self.sign_ext += other.sign_ext + carry;
        self.nan |= other.nan;
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
        self.normalize();
    }

    /// Propagate carries so every digit lies in `[0, 2³²)` and the overflow
    /// lands in the sign-extension word.
    pub fn normalize(&mut self) {
        let mut carry: i64 = 0;
        for d in self.digits.iter_mut() {
            let t = *d + carry;
            let low = t & DIGIT_MASK;
            carry = (t - low) >> 32;
            *d = low;
        }
        self.sign_ext += carry;
        self.pending = 0;
        debug_assert!(
            self.sign_ext == 0 || self.sign_ext == -1,
            "superaccumulator overflow: sign_ext = {}",
            self.sign_ext
        );
    }

    /// `true` if the accumulated (finite) value is exactly zero and no
    /// non-finite inputs were seen.
    pub fn is_zero(&mut self) -> bool {
        if self.nan || self.pos_inf || self.neg_inf {
            return false;
        }
        self.normalize();
        self.sign_ext == 0 && self.digits.iter().all(|&d| d == 0)
    }

    /// Sign of the accumulated value: `-1`, `0`, or `1`.
    /// NaN/infinite states report the sign of the dominating special.
    pub fn signum(&mut self) -> i32 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return 0;
        }
        if self.pos_inf {
            return 1;
        }
        if self.neg_inf {
            return -1;
        }
        self.normalize();
        if self.sign_ext == -1 {
            -1
        } else if self.digits.iter().any(|&d| d != 0) {
            1
        } else {
            0
        }
    }

    /// Correctly rounded (round-to-nearest-even) conversion to `f64`.
    ///
    /// This is the **only** rounding in the whole summation.
    pub fn to_f64(&self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        let mut work = self.clone();
        work.normalize();
        let negative = work.sign_ext == -1;
        if negative {
            work.twos_complement_negate();
        }
        // Find the most significant set bit.
        let top = match work.digits.iter().rposition(|&d| d != 0) {
            None => return if negative { -0.0 } else { 0.0 },
            Some(t) => t,
        };
        let msb_in_digit = 63 - (work.digits[top] as u64).leading_zeros() as i32;
        debug_assert!(msb_in_digit < 32);
        let p = top as i32 * 32 + msb_in_digit; // absolute bit position of MSB
        let e = p - 1074; // binary exponent of the value
        if e > 1023 {
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        // Mantissa = bits [ulp_pos ..= p]; at most 53 bits. Values whose MSB
        // sits below bit 52 are subnormal-or-smaller and exact.
        let ulp_pos = (p - 52).max(0);
        let mut mantissa = work.read_bits(ulp_pos as u32, (p - ulp_pos + 1) as u32);
        // Round to nearest, ties to even.
        if ulp_pos > 0 {
            let round_bit = work.read_bits((ulp_pos - 1) as u32, 1) != 0;
            if round_bit {
                let sticky = work.any_bit_below((ulp_pos - 1) as u32);
                if sticky || (mantissa & 1) == 1 {
                    mantissa += 1;
                }
            }
        }
        let mut ulp_exp = ulp_pos - 1074;
        if mantissa == (1u64 << 53) {
            // Rounding overflowed the mantissa: 2^53 * 2^ulp_exp = 2^52 * 2^(ulp_exp+1).
            mantissa = 1u64 << 52;
            ulp_exp += 1;
            if ulp_exp + 52 > 1023 {
                return if negative {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                };
            }
        }
        // mantissa < 2^53 and ulp_exp in [-1074, 971]: the product is exact.
        let magnitude = (mantissa as f64) * crate::ulp::pow2(ulp_exp);
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Read the value at roughly double-double precision: the correctly
    /// rounded leading part plus the correctly rounded residual.
    pub fn to_dd(&self) -> DoubleDouble {
        let hi = self.to_f64();
        if !hi.is_finite() {
            return DoubleDouble::from_f64(hi);
        }
        let mut rest = self.clone();
        rest.sub(hi);
        let lo = rest.to_f64();
        DoubleDouble { hi, lo }
    }

    /// Serialize the accumulator state to a compact text checkpoint.
    ///
    /// The register is exact, so checkpoint/restore commutes with any split
    /// of the deposit stream: restoring and adding the rest of the values
    /// is **bitwise identical** to an uninterrupted accumulation. This is
    /// the state the aggregation engine's `repro-agg-state-v1` wire format
    /// ships between nodes (serialize → ship → merge).
    ///
    /// Format: one line, `sa1;<sign_ext>;<d0,..,d69 as 8-hex>;<flags>` with
    /// the digits normalized first (each in `[0, 2³²)`) and three `0`/`1`
    /// flag characters for nan / +inf / −inf.
    pub fn checkpoint(&self) -> String {
        let mut work = self.clone();
        work.normalize();
        let digits: Vec<String> = work.digits.iter().map(|d| format!("{d:08x}")).collect();
        format!(
            "sa1;{};{};{}{}{}",
            work.sign_ext,
            digits.join(","),
            u8::from(work.nan),
            u8::from(work.pos_inf),
            u8::from(work.neg_inf),
        )
    }

    /// Restore an accumulator from [`Superaccumulator::checkpoint`] output.
    /// Returns `None` on malformed input: wrong tag, wrong digit count, a
    /// digit outside `[0, 2³²)`, a sign extension other than `0`/`-1`, or
    /// malformed flags — restore is strict so a corrupt checkpoint can
    /// never silently decode into a different value.
    pub fn restore(text: &str) -> Option<Self> {
        let mut parts = text.trim().split(';');
        if parts.next()? != "sa1" {
            return None;
        }
        let sign_ext: i64 = parts.next()?.parse().ok()?;
        if sign_ext != 0 && sign_ext != -1 {
            return None;
        }
        let mut acc = Self::new();
        let mut count = 0usize;
        for (slot, tok) in acc.digits.iter_mut().zip(parts.next()?.split(',')) {
            *slot = i64::from(u32::from_str_radix(tok, 16).ok()?);
            count += 1;
        }
        if count != DIGITS {
            return None;
        }
        let flags = parts.next()?.as_bytes();
        if flags.len() != 3
            || flags.iter().any(|b| *b != b'0' && *b != b'1')
            || parts.next().is_some()
        {
            return None;
        }
        acc.sign_ext = sign_ext;
        acc.nan = flags[0] == b'1';
        acc.pos_inf = flags[1] == b'1';
        acc.neg_inf = flags[2] == b'1';
        Some(acc)
    }

    /// In-place two's-complement negation of the digit register (used only
    /// on normalized, negative registers, turning them into their positive
    /// magnitude).
    fn twos_complement_negate(&mut self) {
        let mut carry: i64 = 1;
        for d in self.digits.iter_mut() {
            let t = (!*d & DIGIT_MASK) + carry;
            *d = t & DIGIT_MASK;
            carry = t >> 32;
        }
        // sign_ext was -1; !(-1) = 0 plus carry gives 0: the magnitude fits.
        self.sign_ext = 0;
    }

    /// Read `count` bits (≤ 64) starting at absolute bit position `from`.
    /// Requires a normalized register.
    fn read_bits(&self, from: u32, count: u32) -> u64 {
        debug_assert!(count <= 64 && count > 0);
        let d = (from >> 5) as usize;
        let r = from & 31;
        let mut v: u128 = 0;
        for i in 0..4usize {
            if d + i < DIGITS {
                v |= (self.digits[d + i] as u64 as u128) << (32 * i);
            }
        }
        ((v >> r) as u64) & (u64::MAX >> (64 - count))
    }

    /// `true` if any bit strictly below position `limit` is set.
    /// Requires a normalized register.
    fn any_bit_below(&self, limit: u32) -> bool {
        let d = (limit >> 5) as usize;
        let r = limit & 31;
        for i in 0..d {
            if self.digits[i] != 0 {
                return true;
            }
        }
        if r == 0 {
            false
        } else {
            (self.digits[d] & ((1i64 << r) - 1)) != 0
        }
    }
}

impl Extend<f64> for Superaccumulator {
    /// Stages the iterator through a stack buffer so arbitrary sources get
    /// the batched [`Superaccumulator::add_slice`] kernel.
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        let mut buf = [0.0f64; 128];
        let mut len = 0usize;
        for v in iter {
            buf[len] = v;
            len += 1;
            if len == buf.len() {
                self.add_slice(&buf);
                len = 0;
            }
        }
        self.add_slice(&buf[..len]);
    }
}

impl FromIterator<f64> for Superaccumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_values(iter)
    }
}

impl std::iter::Sum<f64> for Superaccumulator {
    /// `values.iter().copied().sum::<Superaccumulator>()` — exact, batched.
    fn sum<I: Iterator<Item = f64>>(iter: I) -> Self {
        Self::from_values(iter)
    }
}

impl<'a> std::iter::Sum<&'a f64> for Superaccumulator {
    fn sum<I: Iterator<Item = &'a f64>>(iter: I) -> Self {
        Self::from_values(iter.copied())
    }
}

impl std::ops::AddAssign<f64> for Superaccumulator {
    fn add_assign(&mut self, x: f64) {
        self.add(x);
    }
}

impl std::fmt::Debug for Superaccumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Superaccumulator({:e})", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(values: &[f64]) -> f64 {
        Superaccumulator::from_values(values.iter().copied()).to_f64()
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn single_values_round_trip() {
        for x in [
            1.0,
            -1.0,
            0.1,
            -3.7e300,
            4.9e-324, // min subnormal
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
        ] {
            assert_eq!(sum(&[x]), x, "round trip failed for {x:e}");
        }
    }

    #[test]
    fn paper_intro_example_is_exact() {
        // a = 1e9, b = -1e9, c = 1e-9: both orders equal c exactly here.
        assert_eq!(sum(&[1e9, -1e9, 1e-9]), 1e-9);
        assert_eq!(sum(&[1e-9, 1e9, -1e9]), 1e-9);
    }

    #[test]
    fn absorption_is_impossible() {
        // 2^100 + 2^-100 - 2^100 = 2^-100 exactly.
        let big = 2f64.powi(100);
        let tiny = 2f64.powi(-100);
        assert_eq!(sum(&[big, tiny, -big]), tiny);
    }

    #[test]
    fn order_independence_brute_force() {
        let vals = [1e16, -1.0, 0.1, -1e16, 2.5e-13, 7.0];
        // All 720 permutations of 6 values produce the identical bits.
        let reference = sum(&vals);
        let mut idx = [0usize, 1, 2, 3, 4, 5];
        permutohedron_heap(&mut idx, &mut |perm: &[usize]| {
            let permuted: Vec<f64> = perm.iter().map(|&i| vals[i]).collect();
            assert_eq!(sum(&permuted).to_bits(), reference.to_bits());
        });
    }

    /// Minimal Heap's-algorithm permutation generator for tests.
    fn permutohedron_heap(items: &mut [usize], visit: &mut impl FnMut(&[usize])) {
        fn heap(k: usize, items: &mut [usize], visit: &mut impl FnMut(&[usize])) {
            if k <= 1 {
                visit(items);
                return;
            }
            for i in 0..k {
                heap(k - 1, items, visit);
                if k % 2 == 0 {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        heap(items.len(), items, visit);
    }

    #[test]
    fn correct_rounding_ties_to_even() {
        // 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: rounds to 1 (even).
        assert_eq!(sum(&[1.0, 2f64.powi(-53)]), 1.0);
        // 1 + 2^-52 + 2^-53 is halfway between 1+2^-52 and 1+2^-51... the
        // mantissa of 1+2^-52 is odd, so the tie rounds up.
        assert_eq!(
            sum(&[1.0, 2f64.powi(-52), 2f64.powi(-53)]),
            1.0 + 2.0 * 2f64.powi(-52)
        );
        // A sticky bit below the halfway point forces rounding up.
        assert_eq!(
            sum(&[1.0, 2f64.powi(-53), 2f64.powi(-80)]),
            1.0 + 2f64.powi(-52)
        );
    }

    #[test]
    fn negative_totals_round_correctly() {
        assert_eq!(sum(&[-1.0, -2f64.powi(-53)]), -1.0);
        assert_eq!(sum(&[-1e300, 1e300, -5.5]), -5.5);
        // two_sum guarantees fl(0.1 + 0.2) is the correctly rounded exact sum.
        assert_eq!(sum(&[-0.1, -0.2]), -(0.1 + 0.2));
    }

    #[test]
    fn subnormal_results_are_exact() {
        let tiny = f64::from_bits(3); // 3 * 2^-1074
        assert_eq!(sum(&[tiny, tiny]), f64::from_bits(6));
        let a = f64::MIN_POSITIVE;
        let b = -f64::MIN_POSITIVE / 2.0;
        assert_eq!(sum(&[a, b]), f64::MIN_POSITIVE / 2.0);
    }

    #[test]
    fn cancellation_to_exact_zero() {
        let vals = [0.1, 0.2, 0.3, -0.3, -0.2, -0.1];
        assert_eq!(sum(&vals), 0.0);
        let mut acc = Superaccumulator::from_values(vals.iter().copied());
        assert!(acc.is_zero());
        assert_eq!(acc.signum(), 0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [1e10, -3.5, 2f64.powi(-40), -1e10];
        let ys = [7.7, -2f64.powi(60), 2f64.powi(60), 0.25];
        let mut a = Superaccumulator::from_values(xs.iter().copied());
        let b = Superaccumulator::from_values(ys.iter().copied());
        a.merge(&b);
        let all = Superaccumulator::from_values(xs.iter().chain(ys.iter()).copied());
        assert_eq!(a.to_f64().to_bits(), all.to_f64().to_bits());
    }

    #[test]
    fn special_values_propagate() {
        let mut acc = Superaccumulator::new();
        acc.add(f64::INFINITY);
        acc.add(1.0);
        assert_eq!(acc.to_f64(), f64::INFINITY);
        acc.add(f64::NEG_INFINITY);
        assert!(acc.to_f64().is_nan());

        let mut acc = Superaccumulator::new();
        acc.add(f64::NAN);
        assert!(acc.to_f64().is_nan());
    }

    #[test]
    fn to_dd_exposes_sub_ulp_residual() {
        let mut acc = Superaccumulator::new();
        acc.add(1.0);
        acc.add(2f64.powi(-80));
        let dd = acc.to_dd();
        assert_eq!(dd.hi, 1.0);
        assert_eq!(dd.lo, 2f64.powi(-80));
    }

    #[test]
    fn trait_sugar() {
        let mut acc: Superaccumulator = [1e16, 1.0].into_iter().collect();
        acc += -1e16;
        acc.extend([2.5, -0.5]);
        assert_eq!(acc.to_f64(), 3.0);
    }

    #[test]
    fn signum_reports_sign() {
        let mut acc = Superaccumulator::new();
        acc.add(-2.5);
        assert_eq!(acc.signum(), -1);
        acc.add(5.0);
        assert_eq!(acc.signum(), 1);
    }

    #[test]
    fn merge_chains_stay_exact() {
        // Fold 64 accumulators of hostile values pairwise; bitwise equal to
        // the flat sum.
        let values: Vec<f64> = (0..640)
            .map(|i| ((i % 37) as f64 - 18.0) * 2f64.powi((i % 100) - 50))
            .collect();
        let mut accs: Vec<Superaccumulator> = values
            .chunks(10)
            .map(|c| Superaccumulator::from_values(c.iter().copied()))
            .collect();
        while accs.len() > 1 {
            let b = accs.pop().unwrap();
            let idx = accs.len() / 2;
            accs[idx].merge(&b);
        }
        let whole = Superaccumulator::from_values(values.iter().copied());
        assert_eq!(accs[0].to_f64().to_bits(), whole.to_f64().to_bits());
    }

    #[test]
    fn normalize_is_idempotent() {
        let mut acc = Superaccumulator::from_values([1e300, -2.5e-300, 7.0]);
        acc.normalize();
        let once = acc.to_f64();
        acc.normalize();
        acc.normalize();
        assert_eq!(acc.to_f64().to_bits(), once.to_bits());
    }

    #[test]
    fn nan_poisons_merges_too() {
        let mut a = Superaccumulator::from_values([1.0, 2.0]);
        let mut b = Superaccumulator::new();
        b.add(f64::NAN);
        a.merge(&b);
        assert!(a.to_f64().is_nan());
        assert!(!a.is_zero());
    }

    /// The old (allocating) merge, kept as the behavioural reference for the
    /// zero-alloc rewrite.
    fn merge_reference(dst: &mut Superaccumulator, other: &Superaccumulator) {
        let mut other = other.clone();
        other.normalize();
        dst.normalize();
        for (a, b) in dst.digits.iter_mut().zip(other.digits.iter()) {
            *a += *b;
        }
        dst.sign_ext += other.sign_ext;
        dst.nan |= other.nan;
        dst.pos_inf |= other.pos_inf;
        dst.neg_inf |= other.neg_inf;
        dst.normalize();
    }

    fn hostile_values(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = crate::rng::DetRng::seed_from_u64(seed);
        (0..n)
            .map(|i| match i % 11 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::from_bits(rng.next_u64() % 64 + 1), // subnormal
                3 => -f64::from_bits(rng.next_u64() % 64 + 1),
                _ => {
                    let m = rng.next_f64() - 0.5;
                    m * 2f64.powi((rng.next_u64() % 600) as i32 - 300)
                }
            })
            .collect()
    }

    #[test]
    fn add_slice_matches_scalar_adds_bitwise() {
        for seed in [1u64, 7, 42, 2015] {
            for n in [0usize, 1, 3, 17, 100, 1000, 4097] {
                let values = hostile_values(seed, n);
                let mut scalar = Superaccumulator::new();
                for &x in &values {
                    scalar.add(x);
                }
                let mut batched = Superaccumulator::new();
                batched.add_slice(&values);
                assert_eq!(
                    batched.to_f64().to_bits(),
                    scalar.to_f64().to_bits(),
                    "seed {seed} n {n}"
                );
                scalar.normalize();
                batched.normalize();
                assert_eq!(&*batched.digits, &*scalar.digits, "seed {seed} n {n}");
                assert_eq!(batched.sign_ext, scalar.sign_ext);
            }
        }
    }

    #[test]
    fn add_slice_handles_nonfinites_like_scalar() {
        let specials = [
            f64::INFINITY,
            1.0,
            f64::NEG_INFINITY,
            f64::NAN,
            0.0,
            -5.5e300,
        ];
        for hi in 1..=specials.len() {
            let vals = &specials[..hi];
            let mut scalar = Superaccumulator::new();
            for &x in vals {
                scalar.add(x);
            }
            let mut batched = Superaccumulator::new();
            batched.add_slice(vals);
            assert_eq!(batched.nan, scalar.nan);
            assert_eq!(batched.pos_inf, scalar.pos_inf);
            assert_eq!(batched.neg_inf, scalar.neg_inf);
            let (b, s) = (batched.to_f64(), scalar.to_f64());
            assert!(b.to_bits() == s.to_bits() || (b.is_nan() && s.is_nan()));
        }
    }

    #[test]
    fn add_slice_abs_matches_scalar_abs_adds() {
        let values = hostile_values(99, 777);
        let mut scalar = Superaccumulator::new();
        for &x in &values {
            scalar.add(x.abs());
        }
        let mut batched = Superaccumulator::new();
        batched.add_slice_abs(&values);
        assert_eq!(batched.to_f64().to_bits(), scalar.to_f64().to_bits());
    }

    #[test]
    fn zero_alloc_merge_matches_reference_merge() {
        for seed in [3u64, 1234] {
            let xs = hostile_values(seed, 513);
            let ys = hostile_values(seed.wrapping_mul(31), 257);
            let a0 = Superaccumulator::from_values(xs.iter().copied());
            let b = Superaccumulator::from_values(ys.iter().copied());
            let mut merged = a0.clone();
            merged.merge(&b);
            let mut reference = a0.clone();
            merge_reference(&mut reference, &b);
            assert_eq!(&*merged.digits, &*reference.digits, "seed {seed}");
            assert_eq!(merged.sign_ext, reference.sign_ext);
            assert_eq!(merged.to_f64().to_bits(), reference.to_f64().to_bits());
        }
        // Un-normalized self + un-normalized other, non-finite flags carried.
        let mut a = Superaccumulator::new();
        a.add(1e308);
        a.add(1e308);
        let mut b = Superaccumulator::new();
        b.add(-1e308);
        b.add(f64::INFINITY);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut reference = a.clone();
        merge_reference(&mut reference, &b);
        assert_eq!(merged.to_f64().to_bits(), reference.to_f64().to_bits());
        assert_eq!(merged.pos_inf, reference.pos_inf);
    }

    #[test]
    fn sum_trait_uses_exact_accumulation() {
        let acc: Superaccumulator = [1e16, 1.0, -1e16].iter().sum();
        assert_eq!(acc.to_f64(), 1.0);
        let acc: Superaccumulator = [1e16, 1.0, -1e16].into_iter().sum();
        assert_eq!(acc.to_f64(), 1.0);
    }

    #[test]
    fn extreme_magnitude_mix() {
        // Sum f64::MAX four times and subtract it four times interleaved with
        // junk: final value must be the junk, exactly.
        let vals = [
            f64::MAX,
            f64::MAX,
            1.5e-300,
            f64::MAX,
            -f64::MAX,
            f64::MAX,
            -f64::MAX,
            -f64::MAX,
            -f64::MAX,
        ];
        assert_eq!(sum(&vals), 1.5e-300);
    }

    #[test]
    fn checkpoint_restore_is_bitwise_transparent() {
        for seed in 0..8u64 {
            let values = hostile_values(seed, 300);
            let (head, tail) = values.split_at(150);
            let mut acc = Superaccumulator::new();
            acc.add_slice(head);
            let mut restored =
                Superaccumulator::restore(&acc.checkpoint()).expect("own checkpoint restores");
            acc.add_slice(tail);
            restored.add_slice(tail);
            assert_eq!(
                restored.to_f64().to_bits(),
                acc.to_f64().to_bits(),
                "{seed}"
            );
        }
        // Negative totals exercise sign_ext == -1; specials the flag bytes.
        for vals in [
            vec![-1e308, -1e300, -3.5],
            vec![f64::INFINITY, 1.0],
            vec![f64::NEG_INFINITY, 1.0],
            vec![f64::INFINITY, f64::NEG_INFINITY],
            vec![f64::NAN],
            vec![],
        ] {
            let acc = Superaccumulator::from_values(vals.iter().copied());
            let restored = Superaccumulator::restore(&acc.checkpoint()).expect("restores");
            assert_eq!(restored.to_f64().to_bits(), acc.to_f64().to_bits());
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        let good = Superaccumulator::from_values([1.0, -2.5e-300]).checkpoint();
        assert!(Superaccumulator::restore(&good).is_some());
        let digit_count = good.split(';').nth(2).unwrap().split(',').count();
        assert_eq!(digit_count, 70);

        let cases = [
            String::new(),
            "sa2;0;0;000".to_string(),                    // wrong tag
            good.replacen("sa1;0;", "sa1;1;", 1),         // sign_ext not in {0,-1}
            good.replacen(';', ";;", 1),                  // structure
            good.rsplit_once(',').unwrap().0.to_string(), // digit dropped
            format!("{good},00000000"),                   // extra digit
            good.replace("00000000", "100000000"),        // digit ≥ 2^32
            good.replace("00000000", "0000000g"),         // non-hex digit
            good[..good.len() - 1].to_string(),           // truncated flags
            format!("{good}0"),                           // oversized flags
            format!("{good};"),                           // trailing field
        ];
        for case in cases {
            assert!(
                Superaccumulator::restore(&case).is_none(),
                "accepted {case:?}"
            );
        }
    }
}
