//! Double-double ("composite precision") arithmetic.
//!
//! A [`DoubleDouble`] represents a real number as the unevaluated sum
//! `hi + lo` of two `f64` values with `|lo| <= ulp(hi)/2`, giving about 106
//! bits of significand (~32 decimal digits). This is the representation
//! behind the paper's *composite precision* summation (Taufer et al.,
//! IPDPS 2010) and the double-double type of He & Ding (ICS 2000).
//!
//! The implementation follows the classical QD-library kernels built on the
//! error-free transforms of [`crate::eft`].

use crate::eft::{fast_two_sum, two_prod, two_sum};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An unevaluated sum of two `f64`s with ~106 bits of precision.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct DoubleDouble {
    /// Leading component; `hi == fl(hi + lo)`.
    pub hi: f64,
    /// Trailing component; `|lo| <= ulp(hi) / 2`.
    pub lo: f64,
}

impl DoubleDouble {
    /// The additive identity.
    pub const ZERO: Self = Self { hi: 0.0, lo: 0.0 };

    /// Exact conversion from a single `f64`.
    #[inline(always)]
    pub fn from_f64(x: f64) -> Self {
        Self { hi: x, lo: 0.0 }
    }

    /// Construct from unnormalized parts, renormalizing so that
    /// `hi == fl(a + b)`.
    #[inline(always)]
    pub fn from_parts(a: f64, b: f64) -> Self {
        let (hi, lo) = two_sum(a, b);
        Self { hi, lo }
    }

    /// Exact sum of two `f64`s as a double-double (error-free).
    #[inline(always)]
    pub fn exact_add_f64(a: f64, b: f64) -> Self {
        let (hi, lo) = two_sum(a, b);
        Self { hi, lo }
    }

    /// Exact product of two `f64`s as a double-double (error-free).
    #[inline(always)]
    pub fn exact_mul_f64(a: f64, b: f64) -> Self {
        let (hi, lo) = two_prod(a, b);
        Self { hi, lo }
    }

    /// Full-precision addition of another double-double
    /// (the "accurate" QD `ieee_add` kernel: 20 flops, error ≤ 3·2⁻¹⁰⁶).
    #[inline]
    pub fn add_dd(self, other: Self) -> Self {
        let (s1, s2) = two_sum(self.hi, other.hi);
        let (t1, t2) = two_sum(self.lo, other.lo);
        let s2 = s2 + t1;
        let (s1, s2) = fast_two_sum(s1, s2);
        let s2 = s2 + t2;
        let (hi, lo) = fast_two_sum(s1, s2);
        Self { hi, lo }
    }

    /// Full-precision addition of a plain `f64`.
    #[inline]
    pub fn add_f64(self, x: f64) -> Self {
        let (s1, s2) = two_sum(self.hi, x);
        let s2 = s2 + self.lo;
        let (hi, lo) = fast_two_sum(s1, s2);
        Self { hi, lo }
    }

    /// Full-precision product with another double-double.
    #[inline]
    pub fn mul_dd(self, other: Self) -> Self {
        let (p1, p2) = two_prod(self.hi, other.hi);
        let p2 = p2 + self.hi * other.lo + self.lo * other.hi;
        let (hi, lo) = fast_two_sum(p1, p2);
        Self { hi, lo }
    }

    /// Full-precision product with a plain `f64`.
    #[inline]
    pub fn mul_f64(self, x: f64) -> Self {
        let (p1, p2) = two_prod(self.hi, x);
        let p2 = p2 + self.lo * x;
        let (hi, lo) = fast_two_sum(p1, p2);
        Self { hi, lo }
    }

    /// Full-precision division by another double-double (long division with
    /// one correction step; relative error ~2⁻¹⁰⁴).
    #[inline]
    pub fn div_dd(self, other: Self) -> Self {
        let q1 = self.hi / other.hi;
        let r = self.sub_dd(other.mul_f64(q1));
        let q2 = r.hi / other.hi;
        let r = r.sub_dd(other.mul_f64(q2));
        let q3 = r.hi / other.hi;
        let (hi, lo) = fast_two_sum(q1, q2);
        Self { hi, lo }.add_f64(q3)
    }

    /// Full-precision subtraction.
    #[inline]
    pub fn sub_dd(self, other: Self) -> Self {
        self.add_dd(other.neg())
    }

    /// Negation (exact). (`std::ops::Neg` is also implemented; the named
    /// method reads better in reduction kernels.)
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn neg(self) -> Self {
        Self {
            hi: -self.hi,
            lo: -self.lo,
        }
    }

    /// Absolute value (exact).
    #[inline(always)]
    pub fn abs(self) -> Self {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            self.neg()
        } else {
            self
        }
    }

    /// Round to the nearest `f64`.
    ///
    /// Because the representation is kept normalized (`hi == fl(hi+lo)`),
    /// this is just `hi`.
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.hi
    }

    /// `true` if the represented value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.hi.is_finite() && self.lo.is_finite()
    }

    /// Total-order comparison of the represented real values.
    ///
    /// Returns `None` if either component is NaN.
    #[inline]
    pub fn partial_cmp_value(self, other: Self) -> Option<Ordering> {
        match self.hi.partial_cmp(&other.hi)? {
            Ordering::Equal => self.lo.partial_cmp(&other.lo),
            ord => Some(ord),
        }
    }
}

impl fmt::Debug for DoubleDouble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DoubleDouble({:e} + {:e})", self.hi, self.lo)
    }
}

impl fmt::Display for DoubleDouble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display the leading component; the trailing part is below f64
        // display precision anyway.
        write!(f, "{}", self.hi)
    }
}

impl From<f64> for DoubleDouble {
    fn from(x: f64) -> Self {
        Self::from_f64(x)
    }
}

impl Add for DoubleDouble {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.add_dd(rhs)
    }
}

impl AddAssign for DoubleDouble {
    fn add_assign(&mut self, rhs: Self) {
        *self = self.add_dd(rhs);
    }
}

impl Sub for DoubleDouble {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.sub_dd(rhs)
    }
}

impl SubAssign for DoubleDouble {
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.sub_dd(rhs);
    }
}

impl Mul for DoubleDouble {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.mul_dd(rhs)
    }
}

impl Div for DoubleDouble {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        self.div_dd(rhs)
    }
}

impl Neg for DoubleDouble {
    type Output = Self;
    fn neg(self) -> Self {
        DoubleDouble::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd(x: f64) -> DoubleDouble {
        DoubleDouble::from_f64(x)
    }

    #[test]
    fn exact_add_keeps_all_bits() {
        let a = 1e16;
        let b = 1.0;
        let s = DoubleDouble::exact_add_f64(a, b);
        assert_eq!(s.hi, 1e16);
        assert_eq!(s.lo, 1.0);
    }

    #[test]
    fn add_dd_is_much_more_accurate_than_f64() {
        // Summing 1 and 2^-60 many times: plain f64 loses it entirely.
        let tiny = 2f64.powi(-60);
        let mut acc = dd(1.0);
        for _ in 0..1024 {
            acc = acc.add_f64(tiny);
        }
        // Exact: 1 + 1024 * 2^-60 = 1 + 2^-50.
        assert_eq!(acc.hi, 1.0 + 2f64.powi(-50));
        assert_eq!(acc.lo, 0.0);
    }

    #[test]
    fn normalization_invariant_holds() {
        let cases = [
            (dd(0.1), dd(0.2)),
            (dd(1e300), dd(-1e284)),
            (DoubleDouble::exact_add_f64(1.0, 2f64.powi(-70)), dd(3.0)),
        ];
        for (a, b) in cases {
            let s = a.add_dd(b);
            assert_eq!(s.hi, s.hi + s.lo, "hi must absorb lo after rounding");
        }
    }

    #[test]
    fn mul_is_exact_for_exact_products() {
        let p = DoubleDouble::exact_mul_f64(0.1, 0.1);
        let q = dd(0.1).mul_dd(dd(0.1));
        assert_eq!(p.hi, q.hi);
        assert_eq!(p.lo, q.lo);
    }

    #[test]
    fn div_recovers_one_third_to_106_bits() {
        let third = dd(1.0).div_dd(dd(3.0));
        let back = third.mul_dd(dd(3.0));
        let err = back.sub_dd(dd(1.0)).abs();
        assert!(err.hi < 2f64.powi(-100), "1/3*3 error {:?}", err);
    }

    #[test]
    fn sub_of_equal_values_is_zero() {
        let a = DoubleDouble::exact_add_f64(1e20, 3.25);
        assert!(a.sub_dd(a).is_zero());
    }

    #[test]
    fn comparison_uses_trailing_component() {
        let a = DoubleDouble::exact_add_f64(1.0, 2f64.powi(-70));
        let b = dd(1.0);
        assert_eq!(a.partial_cmp_value(b), Some(Ordering::Greater));
        assert_eq!(b.partial_cmp_value(a), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_value(a), Some(Ordering::Equal));
    }

    #[test]
    fn abs_handles_negative_lo_at_zero_hi() {
        let v = DoubleDouble {
            hi: 0.0,
            lo: -1e-300,
        };
        assert!(v.abs().lo > 0.0);
    }

    #[test]
    fn operator_sugar_matches_methods() {
        let a = dd(1.5);
        let b = dd(-0.25);
        assert_eq!((a + b).hi, a.add_dd(b).hi);
        assert_eq!((a - b).hi, a.sub_dd(b).hi);
        assert_eq!((a * b).hi, a.mul_dd(b).hi);
        assert_eq!((a / b).hi, a.div_dd(b).hi);
        assert_eq!((-a).hi, -1.5);
    }
}
