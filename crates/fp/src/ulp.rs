//! Exponent, ulp, and neighbour utilities for `f64`.
//!
//! The paper characterises operand sets by their *dynamic range*
//! `dr = exp(max |x_i|) - exp(min |x_i|)`, where `exp(x)` is the binary
//! exponent of `x`'s representation. These helpers extract that exponent
//! (including for subnormals), compute unit-in-the-last-place values, and
//! walk to adjacent representable values.

/// Number of explicit mantissa bits in an IEEE-754 binary64.
pub const MANTISSA_BITS: u32 = 52;

/// IEEE-754 binary64 exponent bias.
pub const EXP_BIAS: i32 = 1023;

/// Minimum unbiased exponent of a *normal* binary64 (`2^-1022`).
pub const MIN_NORMAL_EXP: i32 = -1022;

/// Binary exponent of a finite nonzero `f64`: the integer `e` such that
/// `2^e <= |x| < 2^(e+1)`.
///
/// Subnormals are handled exactly (their exponent descends below `-1022`
/// down to `-1074`). Returns `None` for zero, infinity, and NaN.
///
/// ```
/// use repro_fp::ulp::exponent;
/// assert_eq!(exponent(1.0), Some(0));
/// assert_eq!(exponent(-10.0), Some(3));
/// assert_eq!(exponent(0.75), Some(-1));
/// assert_eq!(exponent(0.0), None);
/// ```
#[inline]
pub fn exponent(x: f64) -> Option<i32> {
    if x == 0.0 || !x.is_finite() {
        return None;
    }
    let bits = x.to_bits();
    let raw = ((bits >> 52) & 0x7ff) as i32;
    if raw != 0 {
        Some(raw - EXP_BIAS)
    } else {
        // Subnormal: exponent determined by the highest set mantissa bit.
        let mantissa = bits & ((1u64 << 52) - 1);
        debug_assert!(mantissa != 0);
        let msb = 63 - mantissa.leading_zeros() as i32; // in [0, 51]
        Some(MIN_NORMAL_EXP - (52 - msb))
    }
}

/// The unit in the last place of `x`: the gap between `|x|` and the next
/// larger representable magnitude in `x`'s binade.
///
/// For zero, returns the smallest positive subnormal. For non-finite input,
/// returns NaN.
#[inline]
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::from_bits(1); // 2^-1074
    }
    let e = exponent(x).expect("finite nonzero");
    // ulp = 2^(e - 52), but clamp into the subnormal range.
    let ue = (e - MANTISSA_BITS as i32).max(-1074);
    pow2(ue)
}

/// `2^e` as an `f64`, exact for `e` in `[-1074, 1023]`.
///
/// Panics if `e` is outside the representable range.
#[inline]
pub fn pow2(e: i32) -> f64 {
    assert!(
        (-1074..=1023).contains(&e),
        "2^{e} is not representable as f64"
    );
    if e >= MIN_NORMAL_EXP {
        f64::from_bits(((e + EXP_BIAS) as u64) << 52)
    } else {
        // Subnormal power of two: a single mantissa bit.
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// Next representable value above `x` (toward `+inf`).
///
/// NaN maps to NaN; `+inf` maps to `+inf`.
#[inline]
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x == 0.0 {
        1 // smallest positive subnormal
    } else if bits >> 63 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f64::from_bits(next)
}

/// Next representable value below `x` (toward `-inf`).
#[inline]
pub fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// Map a non-NaN `f64` onto the sign-aware total order of representable
/// values: negative values map below positive ones, adjacent representable
/// values map to adjacent integers, and `-0.0`/`+0.0` occupy two adjacent
/// slots in the middle.
#[inline]
fn total_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1u64 << 63)
    }
}

/// Number of representable `f64` values strictly between `a` and `b` plus
/// one — the "ulp distance" used by divergence forensics.
///
/// Semantics:
///
/// * `a == b` returns 0 (so `-0.0` vs `+0.0` is 0, matching `==`).
/// * Otherwise the distance is measured along the sign-aware total order,
///   which counts **both** zeros: `ulp_distance(-MIN_SUB, MIN_SUB) == 3`
///   (`-min_sub → -0.0 → +0.0 → +min_sub`).
/// * Infinities sit at the ends of the order: `ulp_distance(f64::MAX,
///   f64::INFINITY) == 1`.
/// * NaN never compares close to anything: any NaN operand yields
///   `u64::MAX`, except two NaNs with identical bit patterns, which yield
///   0 (same stored value, e.g. comparing a node's `sum_bits` field
///   against itself).
///
/// ```
/// use repro_fp::ulp::{next_up, ulp_distance};
/// assert_eq!(ulp_distance(1.0, 1.0), 0);
/// assert_eq!(ulp_distance(1.0, next_up(1.0)), 1);
/// assert_eq!(ulp_distance(next_up(1.0), 1.0), 1);
/// assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
/// ```
#[inline]
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return if a.to_bits() == b.to_bits() {
            0
        } else {
            u64::MAX
        };
    }
    if a == b {
        return 0;
    }
    total_order_key(a).abs_diff(total_order_key(b))
}

/// Decompose a finite nonzero `f64` into `(sign, mantissa, shift)` such that
/// `x == sign * mantissa * 2^shift` **exactly**, with `mantissa` a positive
/// integer `< 2^53` and `sign` in `{-1, 1}`.
///
/// This is the deposit format consumed by the superaccumulator.
#[inline]
pub fn decompose(x: f64) -> (i8, u64, i32) {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.to_bits();
    let sign: i8 = if bits >> 63 == 0 { 1 } else { -1 };
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if raw_exp != 0 {
        // Normal: implicit leading bit, value = 1.frac * 2^(raw-bias)
        let mantissa = frac | (1u64 << 52);
        let shift = raw_exp - EXP_BIAS - MANTISSA_BITS as i32;
        (sign, mantissa, shift)
    } else {
        // Subnormal: value = 0.frac * 2^(1-bias)
        (sign, frac, MIN_NORMAL_EXP - MANTISSA_BITS as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_powers_of_two() {
        assert_eq!(exponent(1.0), Some(0));
        assert_eq!(exponent(2.0), Some(1));
        assert_eq!(exponent(0.5), Some(-1));
        assert_eq!(exponent(2f64.powi(100)), Some(100));
        assert_eq!(exponent(2f64.powi(-1000)), Some(-1000));
    }

    #[test]
    fn exponent_within_binade() {
        assert_eq!(exponent(1.9999), Some(0));
        assert_eq!(exponent(3.999), Some(1));
        assert_eq!(exponent(-1023.0), Some(9));
        assert_eq!(exponent(-1024.0), Some(10));
    }

    #[test]
    fn exponent_of_subnormals() {
        assert_eq!(exponent(f64::MIN_POSITIVE), Some(-1022));
        assert_eq!(exponent(f64::MIN_POSITIVE / 2.0), Some(-1023));
        assert_eq!(exponent(f64::from_bits(1)), Some(-1074));
    }

    #[test]
    fn exponent_of_specials() {
        assert_eq!(exponent(0.0), None);
        assert_eq!(exponent(-0.0), None);
        assert_eq!(exponent(f64::NAN), None);
        assert_eq!(exponent(f64::INFINITY), None);
    }

    #[test]
    fn pow2_round_trips_exponent() {
        for e in [-1074, -1073, -1023, -1022, -1, 0, 1, 52, 1023] {
            let x = pow2(e);
            assert_eq!(exponent(x), Some(e), "2^{e}");
        }
    }

    #[test]
    fn ulp_of_one_is_machine_epsilon() {
        assert_eq!(ulp(1.0), f64::EPSILON);
        assert_eq!(ulp(-1.0), f64::EPSILON);
        assert_eq!(ulp(2.0), 2.0 * f64::EPSILON);
    }

    #[test]
    fn ulp_near_subnormal_boundary_clamps() {
        assert_eq!(ulp(f64::MIN_POSITIVE), f64::from_bits(1));
        assert_eq!(ulp(0.0), f64::from_bits(1));
    }

    #[test]
    fn next_up_down_are_inverse_neighbours() {
        for x in [0.0, 1.0, -1.0, 1e300, -2.5e-308, f64::MIN_POSITIVE] {
            let up = next_up(x);
            assert!(up > x);
            assert_eq!(next_down(up), x);
        }
    }

    #[test]
    fn ulp_distance_of_equal_values_is_zero() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            assert_eq!(ulp_distance(x, x), 0, "{x:e}");
        }
        // `==` equality wins over bit identity for signed zeros.
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(-0.0, 0.0), 0);
    }

    #[test]
    fn ulp_distance_of_neighbours_is_one() {
        for x in [
            1.0,
            -1.0,
            0.0,
            1e300,
            -1e-300,
            f64::MIN_POSITIVE,
            f64::from_bits(1),
            f64::MAX,
            2.0 - f64::EPSILON, // crosses the binade boundary at 2.0
        ] {
            assert_eq!(ulp_distance(x, next_up(x)), 1, "{x:e}");
            assert_eq!(ulp_distance(next_up(x), x), 1, "symmetry at {x:e}");
        }
    }

    #[test]
    fn ulp_distance_counts_steps_within_a_binade() {
        let mut x = 1.0;
        for k in 0..=64u64 {
            assert_eq!(ulp_distance(1.0, x), k);
            x = next_up(x);
        }
    }

    #[test]
    fn ulp_distance_crosses_zero_counting_both_zeros() {
        let min_sub = f64::from_bits(1);
        // -min_sub -> -0.0 -> +0.0 -> +min_sub: three steps.
        assert_eq!(ulp_distance(-min_sub, min_sub), 3);
        // But from either zero, one step to the nearest subnormal of the
        // same sign, two to the other sign (both zeros are on the path).
        assert_eq!(ulp_distance(0.0, min_sub), 1);
        assert_eq!(ulp_distance(-0.0, -min_sub), 1);
        assert_eq!(ulp_distance(-0.0, min_sub), 2);
        assert_eq!(ulp_distance(0.0, -min_sub), 2);
    }

    #[test]
    fn ulp_distance_handles_infinities_as_end_points() {
        assert_eq!(ulp_distance(f64::MAX, f64::INFINITY), 1);
        assert_eq!(ulp_distance(-f64::MAX, f64::NEG_INFINITY), 1);
        // The full span of the order is finite and symmetric.
        let span = ulp_distance(f64::NEG_INFINITY, f64::INFINITY);
        assert!(span > 0 && span < u64::MAX);
        assert_eq!(
            ulp_distance(f64::NEG_INFINITY, 0.0) + ulp_distance(0.0, f64::INFINITY),
            span
        );
    }

    #[test]
    fn ulp_distance_treats_nan_as_infinitely_far() {
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
        assert_eq!(ulp_distance(f64::NAN, f64::INFINITY), u64::MAX);
        // Bit-identical NaNs are "the same stored value".
        assert_eq!(ulp_distance(f64::NAN, f64::NAN), 0);
        let other_nan = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(other_nan.is_nan());
        assert_eq!(ulp_distance(f64::NAN, other_nan), u64::MAX);
    }

    #[test]
    fn ulp_distance_is_symmetric_and_additive_along_the_order() {
        let points = [-1e10, -1.0, -1e-310, 0.0, 2.5e-308, 1.0, 1e308];
        for w in points.windows(2) {
            assert_eq!(ulp_distance(w[0], w[1]), ulp_distance(w[1], w[0]));
        }
        // a < b < c on the real line => d(a,c) == d(a,b) + d(b,c).
        for w in points.windows(3) {
            assert_eq!(
                ulp_distance(w[0], w[2]),
                ulp_distance(w[0], w[1]) + ulp_distance(w[1], w[2]),
                "{w:?}"
            );
        }
    }

    #[test]
    fn decompose_reconstructs_exactly() {
        for x in [
            1.0,
            -0.1,
            3.5e300,
            -7.25e-300,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 1024.0,
            f64::MAX,
        ] {
            let (s, m, sh) = decompose(x);
            let rebuilt = (s as f64) * (m as f64) * pow2_checked(sh);
            assert_eq!(rebuilt, x, "decompose failed for {x:e}");
        }
    }

    /// 2^sh via repeated scaling so that sh below -1074 (used transiently in
    /// reconstruction math) still works for the test.
    fn pow2_checked(sh: i32) -> f64 {
        if (-1074..=1023).contains(&sh) {
            pow2(sh)
        } else {
            // Only hit for sh in [-1074-52, -1074): split into two factors.
            pow2(-600) * pow2(sh + 600)
        }
    }
}
