//! Exponent, ulp, and neighbour utilities for `f64`.
//!
//! The paper characterises operand sets by their *dynamic range*
//! `dr = exp(max |x_i|) - exp(min |x_i|)`, where `exp(x)` is the binary
//! exponent of `x`'s representation. These helpers extract that exponent
//! (including for subnormals), compute unit-in-the-last-place values, and
//! walk to adjacent representable values.

/// Number of explicit mantissa bits in an IEEE-754 binary64.
pub const MANTISSA_BITS: u32 = 52;

/// IEEE-754 binary64 exponent bias.
pub const EXP_BIAS: i32 = 1023;

/// Minimum unbiased exponent of a *normal* binary64 (`2^-1022`).
pub const MIN_NORMAL_EXP: i32 = -1022;

/// Binary exponent of a finite nonzero `f64`: the integer `e` such that
/// `2^e <= |x| < 2^(e+1)`.
///
/// Subnormals are handled exactly (their exponent descends below `-1022`
/// down to `-1074`). Returns `None` for zero, infinity, and NaN.
///
/// ```
/// use repro_fp::ulp::exponent;
/// assert_eq!(exponent(1.0), Some(0));
/// assert_eq!(exponent(-10.0), Some(3));
/// assert_eq!(exponent(0.75), Some(-1));
/// assert_eq!(exponent(0.0), None);
/// ```
#[inline]
pub fn exponent(x: f64) -> Option<i32> {
    if x == 0.0 || !x.is_finite() {
        return None;
    }
    let bits = x.to_bits();
    let raw = ((bits >> 52) & 0x7ff) as i32;
    if raw != 0 {
        Some(raw - EXP_BIAS)
    } else {
        // Subnormal: exponent determined by the highest set mantissa bit.
        let mantissa = bits & ((1u64 << 52) - 1);
        debug_assert!(mantissa != 0);
        let msb = 63 - mantissa.leading_zeros() as i32; // in [0, 51]
        Some(MIN_NORMAL_EXP - (52 - msb))
    }
}

/// The unit in the last place of `x`: the gap between `|x|` and the next
/// larger representable magnitude in `x`'s binade.
///
/// For zero, returns the smallest positive subnormal. For non-finite input,
/// returns NaN.
#[inline]
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::from_bits(1); // 2^-1074
    }
    let e = exponent(x).expect("finite nonzero");
    // ulp = 2^(e - 52), but clamp into the subnormal range.
    let ue = (e - MANTISSA_BITS as i32).max(-1074);
    pow2(ue)
}

/// `2^e` as an `f64`, exact for `e` in `[-1074, 1023]`.
///
/// Panics if `e` is outside the representable range.
#[inline]
pub fn pow2(e: i32) -> f64 {
    assert!(
        (-1074..=1023).contains(&e),
        "2^{e} is not representable as f64"
    );
    if e >= MIN_NORMAL_EXP {
        f64::from_bits(((e + EXP_BIAS) as u64) << 52)
    } else {
        // Subnormal power of two: a single mantissa bit.
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// Next representable value above `x` (toward `+inf`).
///
/// NaN maps to NaN; `+inf` maps to `+inf`.
#[inline]
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x == 0.0 {
        1 // smallest positive subnormal
    } else if bits >> 63 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f64::from_bits(next)
}

/// Next representable value below `x` (toward `-inf`).
#[inline]
pub fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// Decompose a finite nonzero `f64` into `(sign, mantissa, shift)` such that
/// `x == sign * mantissa * 2^shift` **exactly**, with `mantissa` a positive
/// integer `< 2^53` and `sign` in `{-1, 1}`.
///
/// This is the deposit format consumed by the superaccumulator.
#[inline]
pub fn decompose(x: f64) -> (i8, u64, i32) {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.to_bits();
    let sign: i8 = if bits >> 63 == 0 { 1 } else { -1 };
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if raw_exp != 0 {
        // Normal: implicit leading bit, value = 1.frac * 2^(raw-bias)
        let mantissa = frac | (1u64 << 52);
        let shift = raw_exp - EXP_BIAS - MANTISSA_BITS as i32;
        (sign, mantissa, shift)
    } else {
        // Subnormal: value = 0.frac * 2^(1-bias)
        (sign, frac, MIN_NORMAL_EXP - MANTISSA_BITS as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_powers_of_two() {
        assert_eq!(exponent(1.0), Some(0));
        assert_eq!(exponent(2.0), Some(1));
        assert_eq!(exponent(0.5), Some(-1));
        assert_eq!(exponent(2f64.powi(100)), Some(100));
        assert_eq!(exponent(2f64.powi(-1000)), Some(-1000));
    }

    #[test]
    fn exponent_within_binade() {
        assert_eq!(exponent(1.9999), Some(0));
        assert_eq!(exponent(3.999), Some(1));
        assert_eq!(exponent(-1023.0), Some(9));
        assert_eq!(exponent(-1024.0), Some(10));
    }

    #[test]
    fn exponent_of_subnormals() {
        assert_eq!(exponent(f64::MIN_POSITIVE), Some(-1022));
        assert_eq!(exponent(f64::MIN_POSITIVE / 2.0), Some(-1023));
        assert_eq!(exponent(f64::from_bits(1)), Some(-1074));
    }

    #[test]
    fn exponent_of_specials() {
        assert_eq!(exponent(0.0), None);
        assert_eq!(exponent(-0.0), None);
        assert_eq!(exponent(f64::NAN), None);
        assert_eq!(exponent(f64::INFINITY), None);
    }

    #[test]
    fn pow2_round_trips_exponent() {
        for e in [-1074, -1073, -1023, -1022, -1, 0, 1, 52, 1023] {
            let x = pow2(e);
            assert_eq!(exponent(x), Some(e), "2^{e}");
        }
    }

    #[test]
    fn ulp_of_one_is_machine_epsilon() {
        assert_eq!(ulp(1.0), f64::EPSILON);
        assert_eq!(ulp(-1.0), f64::EPSILON);
        assert_eq!(ulp(2.0), 2.0 * f64::EPSILON);
    }

    #[test]
    fn ulp_near_subnormal_boundary_clamps() {
        assert_eq!(ulp(f64::MIN_POSITIVE), f64::from_bits(1));
        assert_eq!(ulp(0.0), f64::from_bits(1));
    }

    #[test]
    fn next_up_down_are_inverse_neighbours() {
        for x in [0.0, 1.0, -1.0, 1e300, -2.5e-308, f64::MIN_POSITIVE] {
            let up = next_up(x);
            assert!(up > x);
            assert_eq!(next_down(up), x);
        }
    }

    #[test]
    fn decompose_reconstructs_exactly() {
        for x in [
            1.0,
            -0.1,
            3.5e300,
            -7.25e-300,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 1024.0,
            f64::MAX,
        ] {
            let (s, m, sh) = decompose(x);
            let rebuilt = (s as f64) * (m as f64) * pow2_checked(sh);
            assert_eq!(rebuilt, x, "decompose failed for {x:e}");
        }
    }

    /// 2^sh via repeated scaling so that sh below -1074 (used transiently in
    /// reconstruction math) still works for the test.
    fn pow2_checked(sh: i32) -> f64 {
        if (-1074..=1023).contains(&sh) {
            pow2(sh)
        } else {
            // Only hit for sh in [-1074-52, -1074): split into two factors.
            pow2(-600) * pow2(sh + 600)
        }
    }
}
