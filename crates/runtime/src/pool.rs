//! A persistent work-stealing thread pool over `std` primitives.
//!
//! Workers are spawned once and live for the pool's lifetime; each call
//! submits chunk tasks into per-worker queues (round-robin) and idle workers
//! steal from their peers. This removes the spawn-per-call cost of the old
//! executor (`repro_tree::executor` used one OS thread per chunk per call)
//! while keeping the *scheduling* nondeterministic — which is exactly the
//! regime the paper's reproducible operators must absorb.
//!
//! The only `unsafe` in the workspace lives here: [`ThreadPool::scope`]
//! erases task lifetimes so tasks may borrow the caller's stack, and a
//! completion latch guarantees every task finished before `scope` returns —
//! the same contract as `std::thread::scope`, on persistent threads.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Lifetime totals for a pool, for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Tasks executed to completion.
    pub executed: u64,
    /// Tasks a worker took from another worker's queue.
    pub stolen: u64,
}

struct Shared {
    /// One queue per worker; tasks are submitted round-robin.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow queue, also the submission target when the pool is busy.
    injector: Mutex<VecDeque<Task>>,
    /// Sleep/wake coordination for idle workers.
    idle: Mutex<usize>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    executed: AtomicU64,
    stolen: AtomicU64,
    next_queue: AtomicU64,
}

impl Shared {
    fn push(&self, task: Task) {
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) as usize % self.queues.len();
        self.queues[slot]
            .lock()
            .expect("pool queue poisoned")
            .push_back(task);
        // Hold the idle lock while notifying so a worker that just decided
        // to sleep cannot miss this task.
        let _g = self.idle.lock().expect("pool idle lock poisoned");
        self.wakeup.notify_one();
    }

    /// Grab one task from anywhere: own queue first, then the injector,
    /// then steal from peers.
    fn find_task(&self, own: usize) -> Option<Task> {
        if let Some(t) = self.queues[own]
            .lock()
            .expect("pool queue poisoned")
            .pop_front()
        {
            return Some(t);
        }
        if let Some(t) = self
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
        {
            return Some(t);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (own + offset) % n;
            // Steal from the back: the victim pops from the front, so
            // contention stays low and stolen tasks are the freshest.
            if let Some(t) = self.queues[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_back()
            {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn any_queued(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q.lock().expect("pool queue poisoned").is_empty())
            || !self
                .injector
                .lock()
                .expect("pool injector poisoned")
                .is_empty()
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    loop {
        if let Some(task) = shared.find_task(index) {
            task();
            shared.executed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let mut idle = shared.idle.lock().expect("pool idle lock poisoned");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.any_queued() {
            continue; // a task arrived between the scan and the lock
        }
        *idle += 1;
        let (guard, _timeout) = shared
            .wakeup
            .wait_timeout(idle, Duration::from_millis(50))
            .expect("pool idle lock poisoned");
        let mut idle = guard;
        *idle -= 1;
        drop(idle);
    }
}

/// Tracks outstanding tasks of one [`ThreadPool::scope`] call and collects
/// the first panic.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn increment(&self) {
        *self.remaining.lock().expect("latch poisoned") += 1;
    }

    fn decrement(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("latch poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch poisoned");
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]; tasks may
/// borrow anything that outlives the scope.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    latch: Arc<Latch>,
    // Invariant over 'scope, mirroring std::thread::Scope.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Submit a task. It runs on some pool worker before the enclosing
    /// [`ThreadPool::scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                latch.record_panic(payload);
            }
            latch.decrement();
        });
        // SAFETY: `scope` blocks until the latch reaches zero, i.e. until
        // this closure (which decrements last) has returned. Every borrow
        // with lifetime 'scope therefore strictly outlives the task's
        // execution, so erasing 'scope to 'static cannot be observed.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.shared.push(task);
    }
}

/// A persistent pool of worker threads. Cheap to call into repeatedly; the
/// whole workspace shares one via `Runtime::global()`.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `workers` (clamped to at least 1) persistent worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(0),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            next_queue: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("repro-runtime-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Lifetime execution counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
        }
    }

    /// Run `op` with a [`Scope`] whose tasks may borrow from the caller;
    /// blocks until every spawned task has finished. The first task panic
    /// (if any) is re-raised here, after all tasks have completed.
    pub fn scope<'scope, R>(&self, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            latch: Latch::new(),
            _marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // The latch must reach zero before we return (or unwind): tasks
        // borrow the caller's stack.
        scope.latch.wait();
        if let Some(payload) = scope.latch.panic.lock().expect("latch poisoned").take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.idle.lock().expect("pool idle lock poisoned");
            self.shared.wakeup.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_every_task_with_borrows() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(37) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
        assert!(pool.counters().executed >= 1);
    }

    #[test]
    fn scope_is_reusable_and_pool_persists() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..8 {
                    let hits = &hits;
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8, "round {round}");
        }
        assert!(pool.counters().executed >= 400);
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let pool = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..100u64 {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = ThreadPool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&completed);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..10 {
                    let completed = Arc::clone(&c2);
                    s.spawn(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(completed.load(Ordering::Relaxed), 9);
        // The pool survives a panicked scope.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = ThreadPool::new(3);
        let out = pool.scope(|_| 42);
        assert_eq!(out, 42);
    }
}
