//! # repro-runtime
//!
//! Persistent parallel reduction runtime with deterministic scheduling.
//!
//! The paper's extreme-scale observation is that the *schedule* of a
//! parallel reduction cannot be pinned down — cores finish when they
//! finish. What a runtime **can** pin down is the *plan*: chunk boundaries
//! and the merge topology. This crate provides:
//!
//! - [`ThreadPool`] — a persistent work-stealing pool over `std`
//!   primitives, replacing spawn-per-call executors as the workspace's hot
//!   path;
//! - [`ReductionPlan`] / [`MergeOrder`] — up-front chunk boundaries and a
//!   fixed balanced merge tree, so partials merge either in deterministic
//!   plan order (bitwise worker-count-invariant for *any* operator) or in
//!   genuine arrival order (the nondeterminism knob the paper's
//!   reproducible operators must absorb);
//! - [`Runtime`] — the engine tying both together, with
//!   [`RuntimeStats`] counters (tasks, steals, merge depth, per-stage wall
//!   time) for every call;
//! - [`spawn_reduce`] — the old spawn-per-call reference path, kept as the
//!   benchmark baseline.
//!
//! ```
//! use repro_runtime::{MergeOrder, Runtime};
//! use repro_sum::BinnedSum;
//!
//! let values: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
//! let rt = Runtime::new(4);
//! let a = rt.reduce(&values, || BinnedSum::new(3), MergeOrder::Arrival);
//! let b = rt.reduce(&values, || BinnedSum::new(3), MergeOrder::Arrival);
//! assert_eq!(a.to_bits(), b.to_bits()); // reproducible under racing merges
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod engine;
mod plan;
mod pool;
mod stats;

pub use engine::{
    spawn_reduce, CheckpointStore, ChunkFailureInjector, ChunkKernel, EngineError, Runtime,
    MAX_CHUNK_ATTEMPTS,
};
pub use plan::{merge_in_plan_order, MergeOrder, ReductionPlan, DEFAULT_CHUNK_LEN};
pub use pool::{PoolCounters, Scope, ThreadPool};
pub use stats::RuntimeStats;
