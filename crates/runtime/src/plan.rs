//! Up-front reduction plans: fixed chunk boundaries and a fixed merge tree.
//!
//! The paper's premise is that at scale nobody can *fix the schedule* — but
//! a runtime can still fix the **plan**: which element ranges form chunks,
//! and in which topology partials merge. With the plan pinned, the engine
//! can merge partials either in deterministic plan order (same bits on 1 or
//! 1000 workers, for *any* operator) or in true arrival order (the paper's
//! nondeterminism knob, which only reproducible operators absorb).

use std::ops::Range;

/// Default chunk length: big enough to amortize task dispatch, small enough
/// to load-balance and stay cache-friendly.
pub const DEFAULT_CHUNK_LEN: usize = 64 * 1024;

/// How the root combines chunk partials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOrder {
    /// Merge along the plan's fixed binary tree, in chunk-index order —
    /// deterministic regardless of worker count or scheduling.
    Plan,
    /// Merge partials in genuine completion order (depends on OS
    /// scheduling): two runs legitimately merge differently. Reproducible
    /// operators must return identical bits anyway.
    Arrival,
}

/// A fixed decomposition of `0..len` into contiguous chunks, plus the
/// balanced binary merge tree over the chunk indices.
///
/// Chunk boundaries depend only on `len` (and the requested chunk length),
/// **never** on the worker count — that is what makes
/// [`MergeOrder::Plan`] worker-count-invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReductionPlan {
    len: usize,
    chunk_len: usize,
    chunks: Vec<Range<usize>>,
}

impl ReductionPlan {
    /// Plan over `len` elements with the default chunk length.
    pub fn for_len(len: usize) -> Self {
        Self::with_chunk_len(len, DEFAULT_CHUNK_LEN)
    }

    /// Plan over `len` elements with an explicit chunk length (`>= 1`).
    pub fn with_chunk_len(len: usize, chunk_len: usize) -> Self {
        let chunk_len = chunk_len.max(1);
        let mut chunks = Vec::with_capacity(len.div_ceil(chunk_len).max(1));
        let mut start = 0;
        while start < len {
            let end = (start + chunk_len).min(len);
            chunks.push(start..end);
            start = end;
        }
        if chunks.is_empty() {
            chunks.push(0..0); // one empty chunk keeps the merge tree rooted
        }
        ReductionPlan {
            len,
            chunk_len,
            chunks,
        }
    }

    /// Plan over `len` elements split into exactly `count` near-equal
    /// chunks (the old executor's `div_ceil(workers)` decomposition).
    pub fn with_chunk_count(len: usize, count: usize) -> Self {
        let count = count.max(1).min(len.max(1));
        Self::with_chunk_len(len, len.div_ceil(count))
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the plan covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chunk length used to cut the plan.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// The fixed chunk boundaries, in index order.
    pub fn chunks(&self) -> &[Range<usize>] {
        &self.chunks
    }

    /// Number of chunks (and leaves of the merge tree).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Depth of the fixed balanced binary merge tree.
    pub fn merge_depth(&self) -> usize {
        let n = self.chunks.len();
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }

    /// The element interval covered by the merge-tree node `(i, stride)`
    /// produced by [`merge_in_plan_order_indexed`]: the union of chunks
    /// `i..min(i + 2*stride, num_chunks)`. With `stride == 0`, the leaf —
    /// chunk `i` alone.
    ///
    /// Together with [`ReductionPlan::node_id`] this is the contract the
    /// forensics tooling aligns on: node ids and their intervals depend
    /// only on the plan (`len`, `chunk_len`), never on the worker count or
    /// the schedule.
    pub fn node_span(&self, i: usize, stride: usize) -> Range<usize> {
        let last = if stride == 0 {
            i
        } else {
            (i + 2 * stride - 1).min(self.chunks.len() - 1)
        };
        self.chunks[i].start..self.chunks[last].end
    }

    /// The plan-derived node id: `c{i}` for leaf chunks, `m{i}.{stride}`
    /// for the merge node that folds the subtree rooted at chunk
    /// `i + stride` into the one rooted at chunk `i`.
    pub fn node_id(&self, i: usize, stride: usize) -> String {
        if stride == 0 {
            format!("c{i}")
        } else {
            format!("m{i}.{stride}")
        }
    }
}

/// Merge chunk partials along the plan's fixed balanced binary tree:
/// stride-doubling rounds over the chunk indices, so the topology depends
/// only on the chunk count. Returns `None` for an empty slot vector.
pub fn merge_in_plan_order<A, M>(mut parts: Vec<Option<A>>, mut merge: M) -> Option<A>
where
    M: FnMut(&mut A, &A),
{
    let n = parts.len();
    if n == 0 {
        return None;
    }
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let right = parts[i + stride].take().expect("merge tree slot filled");
            let left = parts[i].as_mut().expect("merge tree slot filled");
            merge(left, &right);
            i += 2 * stride;
        }
        stride *= 2;
    }
    parts[0].take()
}

/// [`merge_in_plan_order`] with the tree position exposed: the callback
/// receives `(i, stride, left, right)` for the merge node that folds the
/// subtree rooted at chunk `i + stride` into the one rooted at chunk `i`.
/// Same topology, same merge order — the telemetry-bearing twin of the
/// plain version (`merge_in_plan_order(parts, m)` ≡
/// `merge_in_plan_order_indexed(parts, |_, _, a, b| m(a, b))`).
pub fn merge_in_plan_order_indexed<A, M>(mut parts: Vec<Option<A>>, mut merge: M) -> Option<A>
where
    M: FnMut(usize, usize, &mut A, &A),
{
    let n = parts.len();
    if n == 0 {
        return None;
    }
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let right = parts[i + stride].take().expect("merge tree slot filled");
            let left = parts[i].as_mut().expect("merge tree slot filled");
            merge(i, stride, left, &right);
            i += 2 * stride;
        }
        stride *= 2;
    }
    parts[0].take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_the_range_exactly() {
        for len in [0usize, 1, 7, 64, 65, 1000, 65_536, 65_537] {
            let plan = ReductionPlan::with_chunk_len(len, 64);
            let mut covered = 0;
            for (i, c) in plan.chunks().iter().enumerate() {
                assert_eq!(c.start, covered, "len {len} chunk {i}");
                assert!(c.end > c.start || len == 0);
                covered = c.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn boundaries_do_not_depend_on_worker_count() {
        // Same len, same chunk_len => identical plan. (The engine never
        // feeds worker count into the plan; this pins the invariant.)
        let a = ReductionPlan::for_len(1_000_000);
        let b = ReductionPlan::for_len(1_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_count_mode_matches_old_executor_decomposition() {
        let plan = ReductionPlan::with_chunk_count(10_000, 8);
        assert_eq!(plan.num_chunks(), 8);
        assert_eq!(plan.chunks()[0], 0..1250);
        let clamped = ReductionPlan::with_chunk_count(3, 8);
        assert_eq!(clamped.num_chunks(), 3);
    }

    #[test]
    fn merge_depth_is_log2_ceil() {
        assert_eq!(ReductionPlan::with_chunk_len(1, 1).merge_depth(), 0);
        assert_eq!(ReductionPlan::with_chunk_len(2, 1).merge_depth(), 1);
        assert_eq!(ReductionPlan::with_chunk_len(5, 1).merge_depth(), 3);
        assert_eq!(ReductionPlan::with_chunk_len(8, 1).merge_depth(), 3);
    }

    #[test]
    fn plan_order_merge_is_a_fixed_tree() {
        // Merging strings shows the topology: ((0 1) (2 3)) (4 ..).
        let parts: Vec<Option<String>> = (0..5).map(|i| Some(i.to_string())).collect();
        let out = merge_in_plan_order(parts, |a, b| {
            *a = format!("({a} {b})");
        })
        .unwrap();
        assert_eq!(out, "(((0 1) (2 3)) 4)");
        // Same count, same topology — always.
        let again: Vec<Option<String>> = (0..5).map(|i| Some(i.to_string())).collect();
        let out2 = merge_in_plan_order(again, |a, b| {
            *a = format!("({a} {b})");
        })
        .unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn indexed_merge_matches_plain_merge_topology() {
        let plain: Vec<Option<String>> = (0..5).map(|i| Some(i.to_string())).collect();
        let indexed: Vec<Option<String>> = (0..5).map(|i| Some(i.to_string())).collect();
        let a = merge_in_plan_order(plain, |a, b| *a = format!("({a} {b})")).unwrap();
        let mut seen = Vec::new();
        let b = merge_in_plan_order_indexed(indexed, |i, stride, a, b| {
            seen.push((i, stride));
            *a = format!("({a} {b})");
        })
        .unwrap();
        assert_eq!(a, b);
        // Stride-doubling rounds over 5 chunks: (0,1) (2,1) then (0,2) then (0,4).
        assert_eq!(seen, vec![(0, 1), (2, 1), (0, 2), (0, 4)]);
    }

    #[test]
    fn node_spans_cover_the_merged_subtrees() {
        let plan = ReductionPlan::with_chunk_len(50, 10); // 5 chunks of 10
        assert_eq!(plan.node_span(0, 0), 0..10); // leaf c0
        assert_eq!(plan.node_span(4, 0), 40..50); // leaf c4
        assert_eq!(plan.node_span(0, 1), 0..20); // m0.1 = c0+c1
        assert_eq!(plan.node_span(2, 1), 20..40); // m2.1 = c2+c3
        assert_eq!(plan.node_span(0, 2), 0..40); // m0.2
        assert_eq!(plan.node_span(0, 4), 0..50); // root m0.4, clamped
        assert_eq!(plan.node_id(3, 0), "c3");
        assert_eq!(plan.node_id(0, 4), "m0.4");
    }

    #[test]
    fn empty_plan_has_one_empty_chunk() {
        let plan = ReductionPlan::for_len(0);
        assert_eq!(plan.num_chunks(), 1);
        assert_eq!(plan.chunks()[0], 0..0);
        assert!(plan.is_empty());
    }
}
