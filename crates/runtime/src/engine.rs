//! The reduction engine: plans executed on the persistent pool.

use crate::plan::{merge_in_plan_order, merge_in_plan_order_indexed, MergeOrder, ReductionPlan};
use crate::pool::ThreadPool;
use crate::stats::RuntimeStats;
use repro_fp::Superaccumulator;
use repro_sum::Accumulator;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, OnceLock};
use std::time::{Duration, Instant};

/// Exact shadow state carried alongside one reduction-tree node when
/// telemetry is on: the correctly-rounded sum (for ulp deviation) and the
/// exact absolute-value sum (for the Higham bound `n·u·Σ|xᵢ|`).
struct NodeShadow {
    exact: Superaccumulator,
    abs: Superaccumulator,
    n: usize,
}

impl NodeShadow {
    fn over(chunk: &[f64]) -> Self {
        let mut exact = Superaccumulator::new();
        let mut abs = Superaccumulator::new();
        exact.add_slice(chunk);
        abs.add_slice_abs(chunk);
        NodeShadow {
            exact,
            abs,
            n: chunk.len(),
        }
    }

    fn absorb(&mut self, other: &Self) {
        self.exact.merge(&other.exact);
        self.abs.merge(&other.abs);
        self.n += other.n;
    }
}

/// Emits `node` telemetry events and aggregates them into a registry.
/// Ordinals count nodes in deterministic plan order (leaves first, then
/// merges in tree order), which is what the sampling policy keys on.
struct NodeObserver<'r> {
    telemetry: repro_obs::TelemetryConfig,
    registry: Option<&'r repro_obs::Registry>,
    ordinal: u64,
    max_ulps: u64,
}

impl<'r> NodeObserver<'r> {
    fn new(
        telemetry: repro_obs::TelemetryConfig,
        registry: Option<&'r repro_obs::Registry>,
    ) -> Self {
        NodeObserver {
            telemetry,
            registry,
            ordinal: 0,
            max_ulps: 0,
        }
    }

    fn emit(
        &mut self,
        scope: &mut repro_obs::Scope,
        node: String,
        span: Range<usize>,
        partial: f64,
        shadow: &NodeShadow,
    ) {
        use repro_obs::f;
        let bound = repro_fp::higham_bound(shadow.n, shadow.abs.to_f64());
        let mut fields = vec![
            f("node", node),
            f("start", span.start),
            f("len", span.len()),
            f("sum_bits", format!("{:016x}", partial.to_bits())),
            f("bound", bound),
        ];
        if self.telemetry.sample_exact(self.ordinal) {
            let exact = shadow.exact.to_f64();
            let ulps = repro_fp::ulp_distance(partial, exact);
            fields.push(f("ulps", ulps));
            fields.push(f("exact_bits", format!("{:016x}", exact.to_bits())));
            self.max_ulps = self.max_ulps.max(ulps);
            if let Some(r) = self.registry {
                r.counter_add("runtime.nodes_sampled", 1);
                r.observe("runtime.node_ulp", repro_obs::ULP_BUCKET_EDGES, ulps);
                r.gauge_set("runtime.max_node_ulp", self.max_ulps as f64);
            }
        }
        if let Some(r) = self.registry {
            r.counter_add("runtime.nodes_observed", 1);
        }
        self.ordinal += 1;
        scope.event("node", fields);
    }
}

/// Which per-chunk kernel the workers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkKernel {
    /// `Accumulator::add_slice` — the operator's natural sequential loop.
    Scalar,
    /// [`repro_sum::lanes::accumulate_lanes`] with this many contiguous
    /// lane chunks, merged through the fixed stride-doubling lane order —
    /// the same decomposition/merge shape as [`crate::ReductionPlan`]
    /// (bitwise identical to [`ChunkKernel::Scalar`] for reproducible
    /// operators).
    Lanes(usize),
}

impl ChunkKernel {
    fn run<A, F>(self, make: &F, chunk: &[f64]) -> A
    where
        A: Accumulator,
        F: Fn() -> A,
    {
        match self {
            ChunkKernel::Scalar => {
                let mut acc = make();
                acc.add_slice(chunk);
                acc
            }
            ChunkKernel::Lanes(lanes) => repro_sum::lanes::accumulate_lanes(make, chunk, lanes),
        }
    }
}

/// Attempts per chunk (1 initial + retries) before
/// [`Runtime::accumulate_resumable`] gives up on a persistently failing
/// chunk.
pub const MAX_CHUNK_ATTEMPTS: u32 = 8;

/// Failure oracle for [`Runtime::accumulate_resumable`]: called with
/// `(chunk index, attempt number)`; returning `true` makes that chunk task
/// die without reporting, like a killed worker.
pub type ChunkFailureInjector<'a> = &'a (dyn Fn(usize, u32) -> bool + Sync);

/// Per-chunk accumulator snapshots taken at merge boundaries, so a retry
/// resumes from the last checkpoint instead of re-reducing everything.
///
/// A store is bound to one plan shape (chunk count); reusing it across
/// calls with the same plan and data turns completed chunks into
/// `checkpoint_restores` instead of recomputation. [`CheckpointStore::invalidate`]
/// models losing one chunk's state (that chunk alone is re-reduced).
#[derive(Clone, Debug)]
pub struct CheckpointStore<A> {
    slots: Vec<Option<A>>,
}

impl<A> CheckpointStore<A> {
    /// An empty store shaped for `plan`.
    pub fn for_plan(plan: &ReductionPlan) -> Self {
        CheckpointStore {
            slots: (0..plan.num_chunks()).map(|_| None).collect(),
        }
    }

    /// An empty store with an explicit slot count, for callers whose
    /// partition is not plan-derived — the aggregation engine checkpoints
    /// one slot per shard.
    pub fn with_slots(slots: usize) -> Self {
        CheckpointStore {
            slots: (0..slots).map(|_| None).collect(),
        }
    }

    /// Whether this store matches `plan`'s chunk count.
    pub fn matches(&self, plan: &ReductionPlan) -> bool {
        self.slots.len() == plan.num_chunks()
    }

    /// Total slots (checkpointed or not).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Checkpoint one chunk's accumulator state. Out-of-range indices are
    /// ignored (the store's shape is fixed at construction).
    pub fn save(&mut self, chunk: usize, state: A) {
        if let Some(slot) = self.slots.get_mut(chunk) {
            *slot = Some(state);
        }
    }

    /// Read back one chunk's checkpointed state, if present.
    pub fn get(&self, chunk: usize) -> Option<&A> {
        self.slots.get(chunk).and_then(|s| s.as_ref())
    }

    /// Number of chunks currently checkpointed.
    pub fn saved(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Drop one chunk's checkpoint (it will be re-reduced on resume).
    pub fn invalidate(&mut self, chunk: usize) {
        if let Some(slot) = self.slots.get_mut(chunk) {
            *slot = None;
        }
    }

    /// Drop every checkpoint.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

/// Errors from the resumable engine path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The checkpoint store was built for a different plan shape.
    PlanMismatch {
        /// Chunk slots in the store.
        store_chunks: usize,
        /// Chunks in the plan.
        plan_chunks: usize,
    },
    /// A chunk kept failing through every retry.
    ChunkFailed {
        /// The failing chunk index.
        chunk: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::PlanMismatch {
                store_chunks,
                plan_chunks,
            } => write!(
                f,
                "checkpoint store has {store_chunks} slots but the plan has {plan_chunks} chunks"
            ),
            EngineError::ChunkFailed { chunk, attempts } => {
                write!(f, "chunk {chunk} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A persistent parallel reduction runtime: one work-stealing pool reused
/// by every reduction in the process.
pub struct Runtime {
    pool: ThreadPool,
}

static GLOBAL: OnceLock<Runtime> = OnceLock::new();

impl Runtime {
    /// A runtime with its own pool of `workers` threads.
    pub fn new(workers: usize) -> Self {
        Runtime {
            pool: ThreadPool::new(workers),
        }
    }

    /// The process-wide shared runtime. Worker count comes from
    /// `REPRO_RUNTIME_WORKERS`, defaulting to the machine's available
    /// parallelism.
    pub fn global() -> &'static Runtime {
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("REPRO_RUNTIME_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&w| w >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                });
            Runtime::new(workers)
        })
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The underlying pool (for custom scoped work).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Reduce `values` under a default plan. See [`Runtime::reduce_planned`].
    pub fn reduce<A, F>(&self, values: &[f64], make: F, order: MergeOrder) -> f64
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        self.reduce_planned(values, &ReductionPlan::for_len(values.len()), make, order)
    }

    /// Reduce `values` under an explicit plan with the scalar kernel.
    pub fn reduce_planned<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        order: MergeOrder,
    ) -> f64
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        self.reduce_stats(values, plan, make, order, ChunkKernel::Scalar)
            .0
    }

    /// Like [`Runtime::reduce_planned`], but returns the merged
    /// **accumulator** instead of finalizing — the local-compute building
    /// block for distributed reductions, where the partial keeps travelling.
    pub fn accumulate_planned<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        order: MergeOrder,
    ) -> A
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        self.accumulate_stats(values, plan, make, order, ChunkKernel::Scalar)
            .0
    }

    /// Full-control reduction: explicit plan, merge order, and chunk
    /// kernel; returns the result plus this call's [`RuntimeStats`].
    pub fn reduce_stats<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        order: MergeOrder,
        kernel: ChunkKernel,
    ) -> (f64, RuntimeStats)
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        let (acc, stats) = self.accumulate_stats(values, plan, make, order, kernel);
        (acc.finalize(), stats)
    }

    fn accumulate_stats<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        order: MergeOrder,
        kernel: ChunkKernel,
    ) -> (A, RuntimeStats)
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        assert_eq!(
            plan.len(),
            values.len(),
            "plan covers {} elements but {} were supplied",
            plan.len(),
            values.len()
        );
        let t0 = Instant::now();
        let before = self.pool.counters();
        let chunk_nanos = AtomicU64::new(0);
        let mut merge_time = Duration::ZERO;

        let result = self.pool.scope(|s| {
            let (tx, rx) = mpsc::channel::<(usize, A)>();
            for (i, range) in plan.chunks().iter().enumerate() {
                let tx = tx.clone();
                let make = &make;
                let chunk = &values[range.clone()];
                let chunk_nanos = &chunk_nanos;
                s.spawn(move || {
                    let t = Instant::now();
                    let acc = kernel.run(make, chunk);
                    chunk_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    // The root hangs up early only if it panicked; ignore.
                    let _ = tx.send((i, acc));
                });
            }
            drop(tx);
            match order {
                MergeOrder::Arrival => {
                    // Merge in genuine completion order, overlapping the
                    // remaining chunk work.
                    let mut root = make();
                    for (_, part) in rx.iter() {
                        let t = Instant::now();
                        root.merge(&part);
                        merge_time += t.elapsed();
                    }
                    root
                }
                MergeOrder::Plan => {
                    let mut slots: Vec<Option<A>> = (0..plan.num_chunks()).map(|_| None).collect();
                    for (i, part) in rx.iter() {
                        slots[i] = Some(part);
                    }
                    let t = Instant::now();
                    let merged = merge_in_plan_order(slots, |a: &mut A, b: &A| a.merge(b))
                        .expect("plan has at least one chunk");
                    merge_time = t.elapsed();
                    merged
                }
            }
        });

        let after = self.pool.counters();
        let stats = RuntimeStats {
            workers: self.pool.workers(),
            chunks: plan.num_chunks(),
            tasks_executed: after.executed.saturating_sub(before.executed),
            steals: after.stolen.saturating_sub(before.stolen),
            merge_depth: plan.merge_depth(),
            chunk_time: Duration::from_nanos(chunk_nanos.load(Ordering::Relaxed)),
            merge_time,
            total_time: t0.elapsed(),
            retries: 0,
            heals: 0,
            checkpoint_restores: 0,
        };
        // Flight-record the reduction's plan-derived shape (never the
        // timing fields) so a post-mortem shows what the runtime was doing
        // when the process died. One ring push per reduction — not per
        // chunk — keeps the always-on cost negligible, and the lazy field
        // builder means a disabled recorder pays only the branch.
        repro_obs::flight::record_with("runtime", "reduce", || {
            vec![
                repro_obs::f("n", values.len()),
                repro_obs::f("chunks", plan.num_chunks()),
                repro_obs::f("workers", self.pool.workers()),
            ]
        });
        (result, stats)
    }

    /// Like [`Runtime::reduce_planned`] with [`MergeOrder::Plan`], but
    /// narrating the call into an observability scope: a `reduce_begin`
    /// event with the plan shape, one `chunk_exec` event per chunk **in
    /// plan order** (regardless of which worker ran it when), one `merge`
    /// event per merge step in the fixed tree order, and a `reduce_end`
    /// event carrying the result's bit pattern.
    ///
    /// Because the merge order, the chunk boundaries, and the event order
    /// all derive from the plan alone, the emitted events are
    /// byte-identical across runs and worker counts. Nondeterministic
    /// facts (steals, wall times) are deliberately left out of the event
    /// stream; publish the returned [`RuntimeStats`] into a
    /// [`repro_obs::Registry`] for those.
    pub fn reduce_traced<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        scope: &mut repro_obs::Scope,
    ) -> (f64, RuntimeStats)
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        self.reduce_telemetry(
            values,
            plan,
            make,
            scope,
            repro_obs::TelemetryConfig::off(),
            None,
        )
    }

    /// [`Runtime::reduce_traced`] with numerical-accuracy telemetry: when
    /// `telemetry` is enabled, each reduction-tree node (leaf chunks and
    /// plan-order merges) additionally emits one `node` event right after
    /// its `chunk_exec`/`merge` event, carrying the plan-derived node id
    /// ([`ReductionPlan::node_id`]), the element interval, the node's
    /// partial-sum bits, and the running Higham bound `n·u·Σ|xᵢ|` over the
    /// interval. At nodes selected by
    /// [`repro_obs::TelemetryConfig::sample_exact`] (counted in plan
    /// order), the event also carries the exact ulp deviation against a
    /// [`repro_fp::Superaccumulator`] shadow reduction.
    ///
    /// The `node` events are strictly **additive**: with
    /// [`repro_obs::TelemetryConfig::off`] the emitted stream is
    /// byte-identical to [`Runtime::reduce_traced`]'s, and with telemetry
    /// on, stripping the `node` events recovers it. Either way the stream
    /// stays worker-count-invariant — the shadow reduction and bounds are
    /// computed serially in plan order after the parallel phase.
    ///
    /// With a `registry`, per-node facts aggregate into it: counters
    /// `runtime.nodes_observed` / `runtime.nodes_sampled`, the
    /// `runtime.node_ulp` histogram (buckets
    /// [`repro_obs::ULP_BUCKET_EDGES`]), and the `runtime.max_node_ulp`
    /// gauge.
    pub fn reduce_telemetry<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        scope: &mut repro_obs::Scope,
        telemetry: repro_obs::TelemetryConfig,
        registry: Option<&repro_obs::Registry>,
    ) -> (f64, RuntimeStats)
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        use repro_obs::f;
        assert_eq!(
            plan.len(),
            values.len(),
            "plan covers {} elements but {} were supplied",
            plan.len(),
            values.len()
        );
        // Deliberately no worker count here: the event stream must be
        // invariant across pool sizes, and `workers` is an execution fact,
        // not a plan fact — it lives in RuntimeStats/the registry.
        scope.event(
            "reduce_begin",
            vec![
                f("n", values.len()),
                f("chunks", plan.num_chunks()),
                f("merge_depth", plan.merge_depth()),
            ],
        );
        let t0 = Instant::now();
        let before = self.pool.counters();
        let chunk_nanos = AtomicU64::new(0);

        let slots: Vec<Option<A>> = self.pool.scope(|s| {
            let (tx, rx) = mpsc::channel::<(usize, A)>();
            for (i, range) in plan.chunks().iter().enumerate() {
                let tx = tx.clone();
                let make = &make;
                let chunk = &values[range.clone()];
                let chunk_nanos = &chunk_nanos;
                s.spawn(move || {
                    let t = Instant::now();
                    let acc = ChunkKernel::Scalar.run(make, chunk);
                    chunk_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let _ = tx.send((i, acc));
                });
            }
            drop(tx);
            let mut slots: Vec<Option<A>> = (0..plan.num_chunks()).map(|_| None).collect();
            for (i, part) in rx.iter() {
                slots[i] = Some(part);
            }
            slots
        });

        // Shadow state for telemetry: per-chunk exact superaccumulators
        // and absolute-value sums, computed serially in plan order after
        // the parallel phase — the telemetry must be as worker-count-
        // invariant as the events it decorates.
        let mut shadows: Vec<Option<NodeShadow>> = if telemetry.enabled() {
            plan.chunks()
                .iter()
                .map(|r| Some(NodeShadow::over(&values[r.clone()])))
                .collect()
        } else {
            Vec::new()
        };
        let mut nodes = NodeObserver::new(telemetry, registry);

        // Narrate chunk completion in plan order, after the barrier: the
        // workers raced, the story must not.
        for (i, range) in plan.chunks().iter().enumerate() {
            scope.event(
                "chunk_exec",
                vec![
                    f("chunk", i),
                    f("start", range.start),
                    f("len", range.len()),
                ],
            );
            if telemetry.enabled() {
                let partial = slots[i].as_ref().expect("chunk reported").finalize();
                let shadow = shadows[i].as_ref().expect("shadow slot filled");
                nodes.emit(scope, plan.node_id(i, 0), range.clone(), partial, shadow);
            }
        }

        let t = Instant::now();
        let mut merges = 0usize;
        let result = merge_in_plan_order_indexed(slots, |i, stride, a: &mut A, b: &A| {
            scope.event("merge", vec![f("step", merges)]);
            merges += 1;
            a.merge(b);
            if telemetry.enabled() {
                let right = shadows[i + stride].take().expect("shadow slot filled");
                let left = shadows[i].as_mut().expect("shadow slot filled");
                left.absorb(&right);
                let span = plan.node_span(i, stride);
                nodes.emit(scope, plan.node_id(i, stride), span, a.finalize(), left);
            }
        })
        .expect("plan has at least one chunk");
        let merge_time = t.elapsed();

        let sum = result.finalize();
        scope.event(
            "reduce_end",
            vec![
                f("merges", merges),
                f("sum_bits", format!("{:016x}", sum.to_bits())),
            ],
        );

        let after = self.pool.counters();
        let stats = RuntimeStats {
            workers: self.pool.workers(),
            chunks: plan.num_chunks(),
            tasks_executed: after.executed.saturating_sub(before.executed),
            steals: after.stolen.saturating_sub(before.stolen),
            merge_depth: plan.merge_depth(),
            chunk_time: Duration::from_nanos(chunk_nanos.load(Ordering::Relaxed)),
            merge_time,
            total_time: t0.elapsed(),
            retries: 0,
            heals: 0,
            checkpoint_restores: 0,
        };
        (sum, stats)
    }

    /// Resumable reduction with checkpointed partials: every completed
    /// chunk's accumulator is snapshotted into `store` at the merge
    /// boundary, chunks already checkpointed are restored instead of
    /// re-reduced, and chunks whose task fails (as decided by `inject`,
    /// modelling a dying worker or rank retry) are re-executed up to
    /// [`MAX_CHUNK_ATTEMPTS`] times.
    ///
    /// The merge always follows **plan order** over the checkpoint slots,
    /// so the result is bitwise identical to a plain
    /// [`Runtime::accumulate_planned`] with [`MergeOrder::Plan`] for *any*
    /// operator — interrupting, retrying, and resuming never change the
    /// association.
    pub fn accumulate_resumable<A, F>(
        &self,
        values: &[f64],
        plan: &ReductionPlan,
        make: F,
        store: &mut CheckpointStore<A>,
        inject: Option<ChunkFailureInjector<'_>>,
    ) -> Result<(A, RuntimeStats), EngineError>
    where
        A: Accumulator,
        F: Fn() -> A + Sync,
    {
        assert_eq!(
            plan.len(),
            values.len(),
            "plan covers {} elements but {} were supplied",
            plan.len(),
            values.len()
        );
        if !store.matches(plan) {
            return Err(EngineError::PlanMismatch {
                store_chunks: store.slots.len(),
                plan_chunks: plan.num_chunks(),
            });
        }
        let t0 = Instant::now();
        let before = self.pool.counters();
        let chunk_nanos = AtomicU64::new(0);
        let checkpoint_restores = store.saved() as u64;

        let mut to_run: Vec<usize> = (0..plan.num_chunks())
            .filter(|&i| store.slots[i].is_none())
            .collect();
        let mut retries = 0u64;
        let mut healed_chunks = 0u64;
        let mut attempt: u32 = 0;
        while !to_run.is_empty() && attempt < MAX_CHUNK_ATTEMPTS {
            if attempt > 0 {
                retries += to_run.len() as u64;
            }
            let completed: Vec<(usize, A)> = self.pool.scope(|s| {
                let (tx, rx) = mpsc::channel::<(usize, A)>();
                for &i in &to_run {
                    let tx = tx.clone();
                    let make = &make;
                    let chunk = &values[plan.chunks()[i].clone()];
                    let chunk_nanos = &chunk_nanos;
                    let inject = &inject;
                    s.spawn(move || {
                        if inject.as_ref().is_some_and(|f| f(i, attempt)) {
                            // Injected failure: the task dies without
                            // reporting, exactly like a killed worker.
                            return;
                        }
                        let t = Instant::now();
                        let mut acc = make();
                        acc.add_slice(chunk);
                        chunk_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        let _ = tx.send((i, acc));
                    });
                }
                drop(tx);
                rx.iter().collect()
            });
            for (i, acc) in completed {
                if attempt > 0 {
                    healed_chunks += 1;
                }
                store.slots[i] = Some(acc);
            }
            to_run.retain(|&i| store.slots[i].is_none());
            attempt += 1;
        }
        if let Some(&chunk) = to_run.first() {
            return Err(EngineError::ChunkFailed {
                chunk,
                attempts: attempt,
            });
        }

        // Merge clones of the checkpoints in plan order; the store keeps
        // the partials so a later caller can invalidate and resume.
        let t = Instant::now();
        let slots: Vec<Option<A>> = store.slots.to_vec();
        let result = merge_in_plan_order(slots, |a: &mut A, b: &A| a.merge(b))
            .expect("plan has at least one chunk");
        let merge_time = t.elapsed();

        let after = self.pool.counters();
        let stats = RuntimeStats {
            workers: self.pool.workers(),
            chunks: plan.num_chunks(),
            tasks_executed: after.executed.saturating_sub(before.executed),
            steals: after.stolen.saturating_sub(before.stolen),
            merge_depth: plan.merge_depth(),
            chunk_time: Duration::from_nanos(chunk_nanos.load(Ordering::Relaxed)),
            merge_time,
            total_time: t0.elapsed(),
            retries,
            heals: healed_chunks,
            checkpoint_restores,
        };
        Ok((result, stats))
    }

    /// Apply `f` to every chunk of the plan on the pool and return the
    /// results **in plan (chunk-index) order** — the parallel backbone for
    /// operand profiling and other per-chunk passes.
    pub fn map_chunks<T, F>(&self, plan: &ReductionPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        self.pool.scope(|s| {
            let (tx, rx) = mpsc::channel::<(usize, T)>();
            for (i, range) in plan.chunks().iter().enumerate() {
                let tx = tx.clone();
                let f = &f;
                let range = range.clone();
                s.spawn(move || {
                    let out = f(i, range);
                    let _ = tx.send((i, out));
                });
            }
            drop(tx);
            let mut slots: Vec<Option<T>> = (0..plan.num_chunks()).map(|_| None).collect();
            for (i, out) in rx.iter() {
                slots[i] = Some(out);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every chunk task reports"))
                .collect()
        })
    }
}

/// The old spawn-per-call reference path: one OS thread per chunk, every
/// call. Kept for benchmarking against the pooled engine and as the
/// semantic baseline the engine must match.
pub fn spawn_reduce<A, F>(values: &[f64], workers: usize, make: F, order: MergeOrder) -> f64
where
    A: Accumulator,
    F: Fn() -> A + Sync,
{
    assert!(workers >= 1);
    if values.is_empty() {
        return make().finalize();
    }
    let workers = workers.min(values.len());
    let chunk = values.len().div_ceil(workers);

    let partials: Vec<(usize, A)> = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, A)>();
        for (i, piece) in values.chunks(chunk).enumerate() {
            let tx = tx.clone();
            let make = &make;
            scope.spawn(move || {
                let mut acc = make();
                acc.add_slice(piece);
                tx.send((i, acc)).expect("root outlives workers");
            });
        }
        drop(tx);
        rx.iter().collect() // arrival order
    });

    let mut root = make();
    match order {
        MergeOrder::Arrival => {
            for (_, partial) in &partials {
                root.merge(partial);
            }
        }
        MergeOrder::Plan => {
            let mut sorted = partials;
            sorted.sort_by_key(|(i, _)| *i);
            for (_, partial) in &sorted {
                root.merge(partial);
            }
        }
    }
    root.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_sum::{BinnedSum, StandardSum};

    fn data(n: usize) -> Vec<f64> {
        // Deterministic, sign-alternating, wide-exponent data.
        (0..n)
            .map(|i| {
                let e = (i % 40) as i32 - 20;
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (i as f64 + 0.5) * (e as f64).exp2()
            })
            .collect()
    }

    #[test]
    fn single_chunk_matches_sequential() {
        let rt = Runtime::new(4);
        let values = data(10_000);
        let seq: f64 = values.iter().sum();
        let plan = ReductionPlan::with_chunk_count(values.len(), 1);
        let par = rt.reduce_planned(&values, &plan, StandardSum::new, MergeOrder::Arrival);
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn plan_order_is_worker_count_invariant_for_any_operator() {
        let values = data(50_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024);
        let reference =
            Runtime::new(1).reduce_planned(&values, &plan, StandardSum::new, MergeOrder::Plan);
        for workers in [2usize, 4, 8] {
            let rt = Runtime::new(workers);
            for _ in 0..3 {
                let got = rt.reduce_planned(&values, &plan, StandardSum::new, MergeOrder::Plan);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "ST diverged under plan order at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn arrival_order_is_absorbed_by_binned() {
        let values = data(60_000);
        let rt = Runtime::new(8);
        let plan = ReductionPlan::with_chunk_len(values.len(), 2048);
        let reference = rt.reduce_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Plan);
        for _ in 0..10 {
            let got = rt.reduce_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Arrival);
            assert_eq!(got.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn pooled_matches_spawn_reference_for_reproducible_ops() {
        let values = data(30_000);
        let rt = Runtime::new(4);
        let spawned = spawn_reduce(&values, 4, || BinnedSum::new(3), MergeOrder::Arrival);
        let pooled = rt.reduce(&values, || BinnedSum::new(3), MergeOrder::Arrival);
        assert_eq!(spawned.to_bits(), pooled.to_bits());
    }

    #[test]
    fn empty_input_reduces_to_identity() {
        let rt = Runtime::new(2);
        assert_eq!(rt.reduce(&[], StandardSum::new, MergeOrder::Arrival), 0.0);
        assert_eq!(rt.reduce(&[], StandardSum::new, MergeOrder::Plan), 0.0);
    }

    #[test]
    fn stats_report_the_call() {
        let rt = Runtime::new(4);
        let values = data(100_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 4096);
        let (_, stats) = rt.reduce_stats(
            &values,
            &plan,
            StandardSum::new,
            MergeOrder::Plan,
            ChunkKernel::Scalar,
        );
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.chunks, values.len().div_ceil(4096));
        assert!(stats.tasks_executed >= stats.chunks as u64);
        assert_eq!(stats.merge_depth, 5); // 25 chunks -> depth 5
        assert!(stats.total_time.as_nanos() > 0);
    }

    #[test]
    fn map_chunks_returns_plan_order() {
        let rt = Runtime::new(4);
        let plan = ReductionPlan::with_chunk_len(1000, 64);
        let firsts = rt.map_chunks(&plan, |i, range| (i, range.start));
        for (i, (idx, start)) in firsts.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*start, i * 64);
        }
    }

    #[test]
    fn resumable_matches_plain_plan_order_bitwise() {
        let rt = Runtime::new(4);
        let values = data(40_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024);
        let plain = rt.accumulate_planned(&values, &plan, StandardSum::new, MergeOrder::Plan);
        let mut store = CheckpointStore::for_plan(&plan);
        let (resumed, stats) = rt
            .accumulate_resumable(&values, &plan, StandardSum::new, &mut store, None)
            .unwrap();
        assert_eq!(resumed.finalize().to_bits(), plain.finalize().to_bits());
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.checkpoint_restores, 0);
        assert_eq!(store.saved(), plan.num_chunks());
    }

    #[test]
    fn injected_chunk_failures_are_retried_and_healed() {
        let rt = Runtime::new(4);
        let values = data(30_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 2048);
        let plain = rt.accumulate_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Plan);
        let mut store = CheckpointStore::for_plan(&plan);
        // Every third chunk dies on its first attempt.
        let inject = |chunk: usize, attempt: u32| attempt == 0 && chunk % 3 == 0;
        let (resumed, stats) = rt
            .accumulate_resumable(
                &values,
                &plan,
                || BinnedSum::new(3),
                &mut store,
                Some(&inject),
            )
            .unwrap();
        assert_eq!(resumed.finalize().to_bits(), plain.finalize().to_bits());
        let failing = plan.num_chunks().div_ceil(3) as u64;
        assert_eq!(stats.retries, failing);
        assert_eq!(stats.heals, failing);
    }

    #[test]
    fn resume_restores_checkpoints_instead_of_recomputing() {
        let rt = Runtime::new(4);
        let values = data(20_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024);
        let mut store = CheckpointStore::for_plan(&plan);
        let (first, _) = rt
            .accumulate_resumable(&values, &plan, || BinnedSum::new(3), &mut store, None)
            .unwrap();
        // Lose two chunks' state; the resume must only recompute those.
        store.invalidate(1);
        store.invalidate(7);
        let (second, stats) = rt
            .accumulate_resumable(&values, &plan, || BinnedSum::new(3), &mut store, None)
            .unwrap();
        assert_eq!(second.finalize().to_bits(), first.finalize().to_bits());
        assert_eq!(stats.checkpoint_restores, (plan.num_chunks() - 2) as u64);
        assert!(stats.tasks_executed <= 2 + 1);
    }

    #[test]
    fn persistently_failing_chunk_is_an_error() {
        let rt = Runtime::new(2);
        let values = data(5_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 512);
        let mut store = CheckpointStore::for_plan(&plan);
        let inject = |chunk: usize, _attempt: u32| chunk == 2;
        let err = rt
            .accumulate_resumable(&values, &plan, StandardSum::new, &mut store, Some(&inject))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::ChunkFailed {
                chunk: 2,
                attempts: MAX_CHUNK_ATTEMPTS
            }
        );
        // Healthy chunks were still checkpointed for a later resume.
        assert_eq!(store.saved(), plan.num_chunks() - 1);
    }

    #[test]
    fn store_shape_mismatch_is_an_error() {
        let rt = Runtime::new(2);
        let values = data(4_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 512);
        let other = ReductionPlan::with_chunk_len(values.len(), 256);
        let mut store = CheckpointStore::for_plan(&other);
        let err = rt
            .accumulate_resumable(&values, &plan, StandardSum::new, &mut store, None)
            .unwrap_err();
        assert!(matches!(err, EngineError::PlanMismatch { .. }));
    }

    #[test]
    fn traced_reduce_matches_plain_and_replays_identically() {
        use repro_obs::{render_jsonl, Trace};
        let values = data(30_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 2048);
        let rt = Runtime::new(4);
        let plain = rt.reduce_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Plan);

        let run = |workers: usize| {
            let rt = Runtime::new(workers);
            let (trace, sink) = Trace::to_memory();
            let mut scope = trace.scope("runtime");
            let (sum, stats) = rt.reduce_traced(&values, &plan, || BinnedSum::new(3), &mut scope);
            assert_eq!(stats.chunks, plan.num_chunks());
            (sum, render_jsonl(&sink.drain()))
        };
        let (sum_a, trace_a) = run(4);
        let (sum_b, trace_b) = run(7);
        assert_eq!(sum_a.to_bits(), plain.to_bits());
        assert_eq!(sum_b.to_bits(), plain.to_bits());
        // The event stream depends only on the plan, not the worker count.
        assert_eq!(trace_a, trace_b);
        let summary = repro_obs::validate_trace(&trace_a).unwrap();
        assert_eq!(summary.subsystems, vec!["runtime".to_string()]);
        // begin + chunks + (chunks-1) merges + end
        assert_eq!(summary.events, 2 * plan.num_chunks() + 1);
    }

    #[test]
    fn telemetry_off_is_byte_identical_to_plain_traced() {
        use repro_obs::{render_jsonl, TelemetryConfig, Trace};
        let values = data(20_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 2048);
        let rt = Runtime::new(4);
        let run = |telemetry: Option<TelemetryConfig>| {
            let (trace, sink) = Trace::to_memory();
            let mut scope = trace.scope("runtime");
            match telemetry {
                None => {
                    rt.reduce_traced(&values, &plan, || BinnedSum::new(3), &mut scope);
                }
                Some(cfg) => {
                    rt.reduce_telemetry(
                        &values,
                        &plan,
                        || BinnedSum::new(3),
                        &mut scope,
                        cfg,
                        None,
                    );
                }
            }
            render_jsonl(&sink.drain())
        };
        // The telemetry entry point with the off config emits the exact
        // bytes of the pre-telemetry path: the determinism contract.
        assert_eq!(run(None), run(Some(TelemetryConfig::off())));
        // And telemetry on is strictly additive: dropping the node lines
        // recovers the off stream, up to the logical timestamps the extra
        // events consumed.
        let drop_seq = |text: String| -> Vec<String> {
            text.lines()
                .filter(|l| !l.contains("\"kind\":\"node\""))
                .map(|l| {
                    let start = l.find(",\"seq\":").unwrap();
                    let rest = &l[start + 7..];
                    let end = rest.find(',').unwrap();
                    format!("{}{}", &l[..start], &rest[end..])
                })
                .collect()
        };
        assert_eq!(
            drop_seq(run(Some(TelemetryConfig::full()))),
            drop_seq(run(None))
        );
    }

    #[test]
    fn telemetry_nodes_cover_the_merge_tree_and_are_worker_invariant() {
        use repro_obs::{render_jsonl, TelemetryConfig, Trace};
        let values = data(10_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024); // 10 chunks
        let run = |workers: usize| {
            let rt = Runtime::new(workers);
            let (trace, sink) = Trace::to_memory();
            let mut scope = trace.scope("runtime");
            let registry = repro_obs::Registry::new();
            rt.reduce_telemetry(
                &values,
                &plan,
                StandardSum::new,
                &mut scope,
                TelemetryConfig::full(),
                Some(&registry),
            );
            (render_jsonl(&sink.drain()), registry.snapshot())
        };
        let (trace_a, snap) = run(4);
        let (trace_b, _) = run(7);
        assert_eq!(trace_a, trace_b, "telemetry must not depend on workers");

        let nodes = repro_obs::forensics::collect_nodes(&trace_a).unwrap();
        // 10 leaves + 9 merges, every one sampled under full().
        assert_eq!(nodes.len(), 2 * plan.num_chunks() - 1);
        assert_eq!(snap.counters["runtime.nodes_observed"], 19);
        assert_eq!(snap.counters["runtime.nodes_sampled"], 19);
        assert_eq!(snap.histograms["runtime.node_ulp"].count, 19);
        // The root node covers the whole input and its bound holds.
        let root = nodes
            .iter()
            .find(|n| n.len as usize == values.len())
            .expect("root node present");
        assert_eq!(root.start, 0);
        assert!(root.node.starts_with('m'));
        let exact: f64 = {
            let mut s = Superaccumulator::new();
            for &x in &values {
                s.add(x);
            }
            s.to_f64()
        };
        assert!((root.sum() - exact).abs() <= root.bound.unwrap());
        // Leaf node ids and intervals follow the plan.
        let leaf0 = nodes.iter().find(|n| n.node == "c0").unwrap();
        assert_eq!((leaf0.start, leaf0.len), (0, 1024));
    }

    #[test]
    fn telemetry_sampling_limits_exact_shadow_measurements() {
        use repro_obs::{render_jsonl, TelemetryConfig, Trace};
        let values = data(8_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024); // 8 chunks
        let rt = Runtime::new(4);
        let (trace, sink) = Trace::to_memory();
        let mut scope = trace.scope("runtime");
        rt.reduce_telemetry(
            &values,
            &plan,
            StandardSum::new,
            &mut scope,
            TelemetryConfig::sampled(4),
            None,
        );
        let text = render_jsonl(&sink.drain());
        let nodes = repro_obs::forensics::collect_nodes(&text).unwrap();
        assert_eq!(nodes.len(), 15); // 8 leaves + 7 merges
        let sampled = nodes.iter().filter(|n| n.ulps.is_some()).count();
        assert_eq!(sampled, 4); // ordinals 0, 4, 8, 12
        assert!(nodes.iter().all(|n| n.bound.is_some()));
    }

    #[test]
    fn stats_publish_into_a_registry() {
        let rt = Runtime::new(2);
        let values = data(10_000);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024);
        let (_, stats) = rt.reduce_stats(
            &values,
            &plan,
            StandardSum::new,
            MergeOrder::Plan,
            ChunkKernel::Scalar,
        );
        let registry = repro_obs::Registry::new();
        stats.publish(&registry, "runtime");
        let snap = registry.snapshot();
        assert_eq!(snap.gauges["runtime.workers"], 2.0);
        assert!(snap.counters["runtime.tasks_executed"] >= plan.num_chunks() as u64);
        assert_eq!(snap.histograms["runtime.total_time_us"].count, 1);
    }

    #[test]
    fn global_runtime_is_shared_and_alive() {
        let a = Runtime::global();
        let b = Runtime::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 1);
        let sum = a.reduce(&[1.0, 2.0, 3.0], StandardSum::new, MergeOrder::Plan);
        assert_eq!(sum, 6.0);
    }
}
