//! Lightweight built-in counters for one engine call.

use std::time::Duration;

/// What one `Runtime::reduce_stats` / `map_chunks_stats` call did.
///
/// Counter semantics: `tasks_executed` and `steals` are deltas of the
/// pool's lifetime counters around this call, so when several reductions
/// run concurrently on the shared pool they are attributions, not exact
/// per-call counts (the pool is shared; the paper's whole point is that
/// nobody owns the schedule).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Worker threads in the pool that served the call.
    pub workers: usize,
    /// Chunks in the plan (= leaf tasks submitted).
    pub chunks: usize,
    /// Pool tasks that ran during this call.
    pub tasks_executed: u64,
    /// Tasks taken from another worker's queue during this call.
    pub steals: u64,
    /// Depth of the fixed merge tree (0 for a single chunk).
    pub merge_depth: usize,
    /// Summed wall time workers spent inside chunk kernels.
    pub chunk_time: Duration,
    /// Wall time the root spent merging partials.
    pub merge_time: Duration,
    /// End-to-end wall time of the call.
    pub total_time: Duration,
    /// Chunk tasks re-executed after a failed attempt
    /// (`Runtime::accumulate_resumable` only; 0 on the plain paths).
    pub retries: u64,
    /// Chunks that failed at least once but eventually succeeded.
    pub heals: u64,
    /// Chunks whose partial was restored from a `CheckpointStore` instead
    /// of being re-reduced.
    pub checkpoint_restores: u64,
}

impl RuntimeStats {
    /// Publish this call's counters into a metrics registry under
    /// `prefix` (e.g. `runtime`). Counts accumulate across calls; sizing
    /// facts (workers, chunks, merge depth) are gauges; wall times go to
    /// fixed-bucket latency histograms. Timing and steal counts are
    /// nondeterministic, which is exactly why they are published here and
    /// *not* into the deterministic event stream.
    pub fn publish(&self, registry: &repro_obs::Registry, prefix: &str) {
        registry.gauge_set(&format!("{prefix}.workers"), self.workers as f64);
        registry.gauge_set(&format!("{prefix}.chunks"), self.chunks as f64);
        registry.gauge_set(&format!("{prefix}.merge_depth"), self.merge_depth as f64);
        registry.counter_add(&format!("{prefix}.tasks_executed"), self.tasks_executed);
        registry.counter_add(&format!("{prefix}.steals"), self.steals);
        registry.counter_add(&format!("{prefix}.retries"), self.retries);
        registry.counter_add(&format!("{prefix}.heals"), self.heals);
        registry.counter_add(
            &format!("{prefix}.checkpoint_restores"),
            self.checkpoint_restores,
        );
        let edges = repro_obs::TIME_BUCKET_EDGES_US;
        for (name, d) in [
            ("chunk_time_us", self.chunk_time),
            ("merge_time_us", self.merge_time),
            ("total_time_us", self.total_time),
        ] {
            registry.observe(&format!("{prefix}.{name}"), edges, d.as_micros() as u64);
        }
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers={} chunks={} tasks={} steals={} merge_depth={} chunk={:.3?} merge={:.3?} total={:.3?} retries={} heals={} checkpoint_restores={}",
            self.workers,
            self.chunks,
            self.tasks_executed,
            self.steals,
            self.merge_depth,
            self.chunk_time,
            self.merge_time,
            self.total_time,
            self.retries,
            self.heals,
            self.checkpoint_restores,
        )
    }
}
