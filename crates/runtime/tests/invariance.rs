//! Property tests for the runtime's headline guarantees:
//!
//! 1. Plan-order merging is **bitwise worker-count-invariant** for the
//!    reproducible operators (PR/BinnedSum and two-pass PreroundedSum),
//!    across 1/2/4/8/16 workers — and for those operators even genuine
//!    arrival-order merging cannot change the bits.
//! 2. The multi-lane chunk kernels are bitwise identical to the scalar
//!    `add_slice` loop for reproducible operators.
//! 3. The lane kernel's decomposition and merge shape **are** the plan's:
//!    `repro-sum` replicates `ReductionPlan::with_chunk_count` boundaries
//!    and the `merge_in_plan_order` stride-doubling fold (it cannot depend
//!    on this crate), and the tests here pin the two implementations
//!    bit-for-bit with an order-*sensitive* operator, so any topology drift
//!    between the crates fails loudly.

use proptest::prelude::*;
use repro_runtime::{merge_in_plan_order, ChunkKernel, MergeOrder, ReductionPlan, Runtime};
use repro_sum::lanes::accumulate_lanes;
use repro_sum::prerounded::{PreroundPlan, PreroundedSum};
use repro_sum::{Accumulator, BinnedSum, DistillSum, StandardSum};

const WORKER_LADDER: [usize; 5] = [1, 2, 4, 8, 16];

fn hostile(seed: u64, dr: u32) -> Vec<f64> {
    repro_gen::zero_sum_with_range(20_000, dr.max(1), seed)
}

proptest! {
    #[test]
    fn binned_plan_order_is_worker_count_invariant(seed in 0u64..500, dr in 1u32..24) {
        let values = hostile(seed, dr);
        let plan = ReductionPlan::with_chunk_len(values.len(), 512);
        let mut reference = None;
        for workers in WORKER_LADDER {
            let rt = Runtime::new(workers);
            let got = rt.reduce_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Plan);
            let r = *reference.get_or_insert(got);
            prop_assert_eq!(got.to_bits(), r.to_bits(), "workers = {}", workers);
        }
    }

    #[test]
    fn binned_absorbs_arrival_order_at_any_worker_count(seed in 0u64..200, dr in 1u32..24) {
        let values = hostile(seed, dr);
        let plan = ReductionPlan::with_chunk_len(values.len(), 512);
        let reference =
            Runtime::new(1).reduce_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Plan);
        for workers in WORKER_LADDER {
            let rt = Runtime::new(workers);
            let got =
                rt.reduce_planned(&values, &plan, || BinnedSum::new(3), MergeOrder::Arrival);
            prop_assert_eq!(got.to_bits(), reference.to_bits(), "workers = {}", workers);
        }
    }

    #[test]
    fn prerounded_plan_order_is_worker_count_invariant(seed in 0u64..200, dr in 1u32..16) {
        let values = hostile(seed, dr);
        let max_abs = values.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let pre = PreroundPlan::new(max_abs, values.len(), 2);
        let plan = ReductionPlan::with_chunk_len(values.len(), 512);
        let mut reference = None;
        for workers in WORKER_LADDER {
            let rt = Runtime::new(workers);
            for order in [MergeOrder::Plan, MergeOrder::Arrival] {
                let got =
                    rt.reduce_planned(&values, &plan, || PreroundedSum::new(&pre), order);
                let r = *reference.get_or_insert(got);
                prop_assert_eq!(
                    got.to_bits(), r.to_bits(),
                    "workers = {}, order = {:?}", workers, order
                );
            }
        }
    }

    #[test]
    fn lane_kernels_match_scalar_for_reproducible_operators(
        seed in 0u64..500,
        dr in 1u32..24,
        lanes in 2usize..12,
    ) {
        let values = hostile(seed, dr);
        let mut scalar = BinnedSum::new(3);
        scalar.add_slice(&values);
        let laned = accumulate_lanes(|| BinnedSum::new(3), &values, lanes);
        prop_assert_eq!(laned.finalize().to_bits(), scalar.finalize().to_bits());

        let mut exact = DistillSum::new();
        exact.add_slice(&values);
        let laned_exact = accumulate_lanes(DistillSum::new, &values, lanes);
        prop_assert_eq!(laned_exact.finalize().to_bits(), exact.finalize().to_bits());
    }

    #[test]
    fn lane_decomposition_is_the_plan_decomposition(
        seed in 0u64..200,
        dr in 1u32..24,
        lanes in 1usize..12,
    ) {
        // StandardSum is order-sensitive: equal bits here means the lane
        // kernel's chunk boundaries AND merge tree are exactly the plan's.
        let values = hostile(seed, dr);
        let laned = accumulate_lanes(StandardSum::new, &values, lanes).finalize();
        let plan = ReductionPlan::with_chunk_count(values.len(), lanes);
        let parts: Vec<Option<StandardSum>> = plan
            .chunks()
            .iter()
            .map(|r| {
                let mut acc = StandardSum::new();
                acc.add_slice(&values[r.clone()]);
                Some(acc)
            })
            .collect();
        let planned = merge_in_plan_order(parts, |a: &mut StandardSum, b| a.merge(b))
            .expect("plan has at least one chunk")
            .finalize();
        prop_assert_eq!(laned.to_bits(), planned.to_bits(), "lanes = {}", lanes);
    }

    #[test]
    fn exact_lanes_match_planned_reduction_at_any_worker_count(
        seed in 0u64..100,
        dr in 1u32..24,
    ) {
        // The exact multi-lane reduction equals the engine's planned
        // reduction over the superaccumulator for every (lanes, workers)
        // pairing — the bits depend on the data alone.
        let values = hostile(seed, dr);
        let reference = repro_fp::exact_sum(&values);
        for lanes in [1usize, 2, 4, 8] {
            let laned = repro_sum::accumulate_lanes_exact(&values, lanes).to_f64();
            prop_assert_eq!(laned.to_bits(), reference.to_bits(), "lanes = {}", lanes);
        }
        for workers in WORKER_LADDER {
            let rt = Runtime::new(workers);
            let plan = ReductionPlan::with_chunk_count(values.len(), workers);
            let got = rt.reduce_planned(
                &values,
                &plan,
                repro_fp::Superaccumulator::new,
                MergeOrder::Plan,
            );
            prop_assert_eq!(got.to_bits(), reference.to_bits(), "workers = {}", workers);
        }
    }

    #[test]
    fn lane_engine_kernel_matches_scalar_engine_kernel(seed in 0u64..100, dr in 1u32..24) {
        let values = hostile(seed, dr);
        let plan = ReductionPlan::with_chunk_len(values.len(), 1024);
        let rt = Runtime::new(4);
        let (scalar, _) = rt.reduce_stats(
            &values, &plan, || BinnedSum::new(3), MergeOrder::Plan, ChunkKernel::Scalar,
        );
        for lanes in [4usize, 8] {
            let (laned, _) = rt.reduce_stats(
                &values, &plan, || BinnedSum::new(3), MergeOrder::Plan, ChunkKernel::Lanes(lanes),
            );
            prop_assert_eq!(laned.to_bits(), scalar.to_bits(), "lanes = {}", lanes);
        }
    }
}
