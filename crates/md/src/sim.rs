//! The simulation: softened 2-D gravity, leapfrog integration, reductions
//! through selectable summation operators.

use repro_fp::rng::DetRng;
use repro_select::{AdaptiveReducer, Tolerance};
use repro_sum::{Accumulator, Algorithm};

/// One point mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Velocity.
    pub vx: f64,
    /// Velocity.
    pub vy: f64,
    /// Mass.
    pub mass: f64,
}

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Timestep.
    pub dt: f64,
    /// Gravitational constant.
    pub g: f64,
    /// Softening length (avoids the 1/r² singularity).
    pub softening: f64,
    /// Reduction operator used for force and energy accumulations.
    pub algorithm: Algorithm,
    /// If `Some(seed)`, the per-particle force accumulation order is
    /// re-shuffled from this stream every step — the model of a machine
    /// that delivers partial forces in nondeterministic order. `None`
    /// accumulates in index order.
    pub shuffle_seed: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dt: 1e-3,
            g: 1.0,
            softening: 1e-2,
            algorithm: Algorithm::Standard,
            shuffle_seed: None,
        }
    }
}

/// The running simulation. (Not `Clone`: the shuffle RNG stream is part of
/// the state and deliberately non-duplicable — construct a second simulation
/// from the same initial conditions to compare runs.)
///
/// ```
/// use repro_md::{SimConfig, Simulation};
/// use repro_sum::Algorithm;
///
/// let cfg = SimConfig { algorithm: Algorithm::PR, shuffle_seed: Some(1), ..SimConfig::default() };
/// let mut sim = Simulation::disk(8, 42, cfg);
/// sim.run(10);
/// assert_eq!(sim.steps_taken(), 10);
/// ```
#[derive(Debug)]
pub struct Simulation {
    /// Current particle states.
    particles: Vec<Particle>,
    config: SimConfig,
    rng: Option<DetRng>,
    steps_taken: u64,
    /// Scratch: contribution buffers reused across steps.
    fx_terms: Vec<f64>,
    fy_terms: Vec<f64>,
    order: Vec<u32>,
    /// Per-reduction adaptive selection, if enabled.
    adaptive: Option<AdaptiveReducer>,
    /// Histogram of adaptively chosen operators.
    choices: Vec<(Algorithm, u64)>,
}

impl Simulation {
    /// Start a simulation from initial conditions.
    pub fn new(particles: Vec<Particle>, config: SimConfig) -> Self {
        assert!(particles.len() >= 2, "need at least two bodies");
        assert!(config.dt > 0.0 && config.softening > 0.0);
        let n = particles.len();
        Self {
            particles,
            config,
            rng: config.shuffle_seed.map(DetRng::seed_from_u64),
            steps_taken: 0,
            fx_terms: vec![0.0; n - 1],
            fy_terms: vec![0.0; n - 1],
            order: (0..n as u32 - 1).collect(),
            adaptive: None,
            choices: Vec::new(),
        }
    }

    /// Enable per-reduction adaptive operator selection: every force
    /// accumulation is profiled and the cheapest operator meeting
    /// `tolerance` is used for it — the paper's runtime selection, inside
    /// a live simulation. Overrides `config.algorithm` for forces.
    pub fn with_adaptive(mut self, tolerance: Tolerance) -> Self {
        self.adaptive = Some(AdaptiveReducer::heuristic(tolerance));
        self
    }

    /// Histogram of adaptively chosen operators `(algorithm, count)`,
    /// cheapest first (empty unless [`Simulation::with_adaptive`]).
    pub fn adaptive_choices(&self) -> &[(Algorithm, u64)] {
        &self.choices
    }

    /// A standard test system: a heavy central body with `n − 1` lighter
    /// bodies on perturbed circular orbits (seeded).
    pub fn disk(n: usize, seed: u64, config: SimConfig) -> Self {
        assert!(n >= 2);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut particles = vec![Particle {
            x: 0.0,
            y: 0.0,
            vx: 0.0,
            vy: 0.0,
            mass: 1000.0,
        }];
        for _ in 1..n {
            let r: f64 = rng.random_range(1.0..10.0);
            let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            // Circular-orbit speed around the central mass, jittered.
            let v = (config.g * 1000.0 / r).sqrt() * rng.random_range(0.95..1.05);
            particles.push(Particle {
                x: r * theta.cos(),
                y: r * theta.sin(),
                vx: -v * theta.sin(),
                vy: v * theta.cos(),
                mass: rng.random_range(0.1..1.0),
            });
        }
        Self::new(particles, config)
    }

    /// Particle states.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Net force on particle `i` from all others, accumulated with the
    /// configured operator in the current accumulation order.
    fn force_on(&mut self, i: usize) -> (f64, f64) {
        let p = self.particles[i];
        let eps2 = self.config.softening * self.config.softening;
        let mut k = 0;
        for (j, q) in self.particles.iter().enumerate() {
            if j == i {
                continue;
            }
            let dx = q.x - p.x;
            let dy = q.y - p.y;
            let r2 = dx * dx + dy * dy + eps2;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            let f = self.config.g * p.mass * q.mass * inv_r3;
            self.fx_terms[k] = f * dx;
            self.fy_terms[k] = f * dy;
            k += 1;
        }
        // Nondeterministic accumulation order, if configured.
        if let Some(rng) = &mut self.rng {
            rng.shuffle(&mut self.order);
        }
        let algorithm = match &self.adaptive {
            None => self.config.algorithm,
            Some(reducer) => {
                // Profile the harder of the two component sets; one choice
                // governs both components of this force.
                let (ax, _) = reducer.choose(&self.fx_terms[..k]);
                let (ay, _) = reducer.choose(&self.fy_terms[..k]);
                let alg = if ax.cost_rank() >= ay.cost_rank() {
                    ax
                } else {
                    ay
                };
                match self.choices.iter_mut().find(|(a, _)| *a == alg) {
                    Some((_, c)) => *c += 1,
                    None => {
                        self.choices.push((alg, 1));
                        self.choices.sort_by_key(|(a, _)| a.cost_rank());
                    }
                }
                alg
            }
        };
        let mut ax = algorithm.new_accumulator();
        let mut ay = algorithm.new_accumulator();
        for &idx in &self.order {
            ax.add(self.fx_terms[idx as usize]);
            ay.add(self.fy_terms[idx as usize]);
        }
        (ax.finalize(), ay.finalize())
    }

    /// Advance one leapfrog (kick-drift-kick) step.
    pub fn step(&mut self) {
        let n = self.particles.len();
        let dt = self.config.dt;
        // First kick (half step).
        let forces: Vec<(f64, f64)> = (0..n).map(|i| self.force_on(i)).collect();
        for (p, (fx, fy)) in self.particles.iter_mut().zip(&forces) {
            p.vx += 0.5 * dt * fx / p.mass;
            p.vy += 0.5 * dt * fy / p.mass;
        }
        // Drift.
        for p in self.particles.iter_mut() {
            p.x += dt * p.vx;
            p.y += dt * p.vy;
        }
        // Second kick.
        let forces: Vec<(f64, f64)> = (0..n).map(|i| self.force_on(i)).collect();
        for (p, (fx, fy)) in self.particles.iter_mut().zip(&forces) {
            p.vx += 0.5 * dt * fx / p.mass;
            p.vy += 0.5 * dt * fy / p.mass;
        }
        self.steps_taken += 1;
    }

    /// Advance `steps` steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Total energy (kinetic + potential), accumulated with the configured
    /// operator — the conserved quantity practitioners watch.
    pub fn total_energy(&self) -> f64 {
        let mut acc = self.config.algorithm.new_accumulator();
        for p in &self.particles {
            acc.add(0.5 * p.mass * (p.vx * p.vx + p.vy * p.vy));
        }
        let eps2 = self.config.softening * self.config.softening;
        for (i, p) in self.particles.iter().enumerate() {
            for q in self.particles.iter().skip(i + 1) {
                let dx = q.x - p.x;
                let dy = q.y - p.y;
                let r = (dx * dx + dy * dy + eps2).sqrt();
                acc.add(-self.config.g * p.mass * q.mass / r);
            }
        }
        acc.finalize()
    }

    /// Bitwise fingerprint of the full state (positions and velocities).
    pub fn state_fingerprint(&self) -> u64 {
        // FNV-1a over the raw bits: cheap, deterministic, collision-safe
        // enough for comparing a handful of runs.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: f64| {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for p in &self.particles {
            mix(p.x);
            mix(p.y);
            mix(p.vx);
            mix(p.vy);
        }
        h
    }
}

/// Divergence between two simulations of the same system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryDivergence {
    /// Maximum per-particle position distance.
    pub max_position: f64,
    /// Root-mean-square position distance.
    pub rms_position: f64,
    /// Whether the two states are bitwise identical.
    pub bitwise_identical: bool,
}

/// Measure how far two runs have drifted apart.
pub fn divergence(a: &Simulation, b: &Simulation) -> TrajectoryDivergence {
    assert_eq!(a.particles.len(), b.particles.len());
    let mut max_d = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut bitwise = true;
    for (p, q) in a.particles.iter().zip(b.particles.iter()) {
        let dx = p.x - q.x;
        let dy = p.y - q.y;
        let d = (dx * dx + dy * dy).sqrt();
        max_d = max_d.max(d);
        sum_sq += d * d;
        bitwise &= p.x.to_bits() == q.x.to_bits()
            && p.y.to_bits() == q.y.to_bits()
            && p.vx.to_bits() == q.vx.to_bits()
            && p.vy.to_bits() == q.vy.to_bits();
    }
    TrajectoryDivergence {
        max_position: max_d,
        rms_position: (sum_sq / a.particles.len() as f64).sqrt(),
        bitwise_identical: bitwise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(alg: Algorithm, shuffle: Option<u64>) -> SimConfig {
        SimConfig {
            algorithm: alg,
            shuffle_seed: shuffle,
            ..SimConfig::default()
        }
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut sim = Simulation::disk(30, 1, config(Algorithm::Composite, None));
        let e0 = sim.total_energy();
        sim.run(500);
        let e1 = sim.total_energy();
        let drift = ((e1 - e0) / e0).abs();
        // Leapfrog is symplectic but close encounters at this softening
        // still wiggle the energy at the percent level; the check guards
        // against integrator bugs (which blow up by orders of magnitude).
        assert!(drift < 2e-2, "leapfrog energy drift {drift:e}");
    }

    #[test]
    fn deterministic_without_shuffling() {
        let mut a = Simulation::disk(20, 2, config(Algorithm::Standard, None));
        let mut b = Simulation::disk(20, 2, config(Algorithm::Standard, None));
        a.run(200);
        b.run(200);
        assert!(divergence(&a, &b).bitwise_identical);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn st_trajectories_diverge_under_shuffled_accumulation() {
        let mut a = Simulation::disk(30, 3, config(Algorithm::Standard, Some(100)));
        let mut b = Simulation::disk(30, 3, config(Algorithm::Standard, Some(200)));
        a.run(800);
        b.run(800);
        let d = divergence(&a, &b);
        assert!(
            !d.bitwise_identical,
            "ST must feel the order nondeterminism"
        );
        assert!(d.max_position > 0.0);
    }

    #[test]
    fn pr_trajectories_are_bitwise_identical_under_shuffling() {
        let mut a = Simulation::disk(30, 3, config(Algorithm::PR, Some(100)));
        let mut b = Simulation::disk(30, 3, config(Algorithm::PR, Some(200)));
        a.run(300);
        b.run(300);
        let d = divergence(&a, &b);
        assert!(d.bitwise_identical, "PR run diverged: {d:?}");
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn distill_trajectories_are_bitwise_identical_too() {
        let mut a = Simulation::disk(16, 5, config(Algorithm::Distill, Some(7)));
        let mut b = Simulation::disk(16, 5, config(Algorithm::Distill, Some(8)));
        a.run(100);
        b.run(100);
        assert!(divergence(&a, &b).bitwise_identical);
    }

    #[test]
    fn divergence_grows_with_time_for_st() {
        let mut a = Simulation::disk(30, 9, config(Algorithm::Standard, Some(1)));
        let mut b = Simulation::disk(30, 9, config(Algorithm::Standard, Some(2)));
        a.run(200);
        b.run(200);
        let early = divergence(&a, &b).max_position;
        a.run(1500);
        b.run(1500);
        let late = divergence(&a, &b).max_position;
        assert!(
            late > early,
            "chaos should amplify the gap: early {early:e}, late {late:e}"
        );
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let a = Simulation::disk(10, 1, config(Algorithm::Standard, None));
        let mut b = Simulation::disk(10, 1, config(Algorithm::Standard, None));
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        b.step();
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn adaptive_simulation_mixes_operators() {
        // A system with a genuinely ill-conditioned reduction: the central
        // body sits between two equal opposite attractors (net force on it
        // cancels almost exactly), while the orbiters see benign sums.
        let particles = vec![
            Particle {
                x: 0.0,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            },
            Particle {
                x: 3.0,
                y: 0.0,
                vx: 0.0,
                vy: 5.0,
                mass: 500.0,
            },
            Particle {
                x: -3.0,
                y: 0.0,
                vx: 0.0,
                vy: -5.0,
                mass: 500.0,
            },
            Particle {
                x: 0.0,
                y: 6.0,
                vx: 4.0,
                vy: 0.0,
                mass: 0.5,
            },
            Particle {
                x: 0.0,
                y: -6.0,
                vx: -4.0,
                vy: 0.0,
                mass: 0.5,
            },
        ];
        let mut sim = Simulation::new(particles, SimConfig::default())
            .with_adaptive(Tolerance::RelativeSpread(1e-14));
        sim.run(10);
        let choices = sim.adaptive_choices();
        let total: u64 = choices.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5 * 2 * 10); // two kicks per step, one per particle
        assert!(
            choices.len() >= 2,
            "expected mixed choices, got {choices:?}"
        );
    }

    #[test]
    fn adaptive_bitwise_simulation_is_reproducible_under_shuffle() {
        let build = |shuffle| {
            Simulation::disk(16, 6, config(Algorithm::Standard, Some(shuffle)))
                .with_adaptive(Tolerance::Bitwise)
        };
        let mut a = build(1);
        let mut b = build(2);
        a.run(50);
        b.run(50);
        assert!(divergence(&a, &b).bitwise_identical);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_body() {
        let _ = Simulation::new(
            vec![Particle {
                x: 0.0,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            }],
            SimConfig::default(),
        );
    }
}
