//! # `repro-md` — a miniature N-body simulation over selectable reductions
//!
//! The paper's introduction frames the stakes: "even small errors at the
//! beginning of the simulation may eventually compound into significant
//! accuracy problems, which may call into question the validity of hours and
//! hours of computation. ... Can the scientific community trust simulations
//! executed on next-generation exascale architectures?"
//!
//! This crate is that claim, executable: a 2-D gravitational N-body system
//! (softened forces, leapfrog integration) whose per-particle force
//! accumulation — the reduction at the heart of every timestep — runs
//! through a selectable [`repro_sum::Algorithm`] and an optionally
//! *shuffled* accumulation order (standing in for the nondeterministic
//! arrival order of a parallel machine).
//!
//! * With **ST**, two runs of the same initial conditions under different
//!   accumulation orders produce trajectories that drift apart, and the
//!   gap grows with simulated time (chaos amplifies ulp-level differences).
//! * With **PR** (or any reproducible operator), the trajectories are
//!   **bitwise identical** no matter how the accumulation order scrambles.
//!
//! The `motivation_trajectory` bench and the `nbody` example quantify both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;

pub use sim::{Particle, SimConfig, Simulation, TrajectoryDivergence};
