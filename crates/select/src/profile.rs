//! Cheap one-pass dataset profiling.
//!
//! The paper's premise is that `n`, `k`, and `dr` are "estimable quantities"
//! a runtime can afford to compute. This profiler does it in one pass of
//! high-precision arithmetic: the condition-number estimate uses binned
//! (ReproBLAS-style) sums of `x` and `|x|`, so it is itself reliable on
//! exactly the ill-conditioned inputs where it matters — and, because the
//! binned representation merges bitwise-reproducibly under *any* merge
//! tree, a profile assembled from chunk partials is bit-identical to the
//! profile of the whole dataset no matter how the partials were grouped.

use repro_fp::ulp::exponent;
use repro_sum::{Accumulator, BinnedSum};

/// Fold depth of the embedded binned accumulators: three 40-bit bins give
/// ~120 bits of significand window, far more than the profile's accuracy
/// needs, at 2×(fold+1) words of per-profile state.
const PROFILE_FOLD: usize = 3;

/// The profile the selector consumes.
///
/// The derived sums (`sum_estimate`, `abs_sum`, `k`) are plain doubles for
/// the selector's convenience; the profile also carries the underlying
/// binned accumulator state privately so that [`DataProfile::merge`] can
/// recombine partials without collapsing precision. That is what makes
/// merging associative *in bits*, not just approximately.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataProfile {
    /// Number of values.
    pub n: usize,
    /// Estimated sum condition number `Σ|x| / |Σx|` (∞ if the estimated
    /// sum is zero; 1 for empty input).
    pub k: f64,
    /// Dynamic range in binary binades (difference of extreme exponents).
    pub dr_binades: i32,
    /// Largest magnitude.
    pub max_abs: f64,
    /// Estimated absolute-value sum.
    pub abs_sum: f64,
    /// Estimated sum.
    pub sum_estimate: f64,
    /// Smallest binary exponent seen (`i32::MAX` when no nonzero values).
    pub min_exp: i32,
    /// Largest binary exponent seen (`i32::MIN` when no nonzero values).
    pub max_exp: i32,
    /// Binned accumulator for `Σx` — the full-precision residue carrier
    /// behind `sum_estimate`.
    sum_bins: BinnedSum,
    /// Binned accumulator for `Σ|x|` behind `abs_sum`.
    abs_bins: BinnedSum,
}

impl DataProfile {
    /// Dynamic range in decimal decades (the paper's Table I convention).
    pub fn dr_decades(&self) -> i32 {
        // binade → decade: log10(2) ≈ 0.30103
        (self.dr_binades as f64 * std::f64::consts::LOG10_2).round() as i32
    }

    /// The profile of an empty dataset (the identity for [`DataProfile::merge`]).
    pub fn empty() -> Self {
        profile(&[])
    }

    /// Incrementally fold one value into the profile — the streaming
    /// counterpart of [`DataProfile::merge`]. Bitwise-equivalent to having
    /// included `x` in the profiled slice: the binned deposits are
    /// position-independent, so `profile(xs)` equals any interleaving of
    /// [`DataProfile::add`] and [`DataProfile::merge`] calls covering the
    /// same multiset of values, bit for bit. Allocation-free (the binned
    /// state is fixed-size), so re-selection loops can ingest points as
    /// they arrive.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum_bins.add(x);
        self.abs_bins.add(x.abs());
        if let Some(e) = exponent(x) {
            self.min_exp = self.min_exp.min(e);
            self.max_exp = self.max_exp.max(e);
        }
        self.max_abs = self.max_abs.max(x.abs());
        self.sum_estimate = self.sum_bins.finalize();
        self.abs_sum = self.abs_bins.finalize();
        self.dr_binades = if self.min_exp == i32::MAX {
            0
        } else {
            self.max_exp - self.min_exp
        };
        self.k = condition_estimate(self.sum_estimate, self.abs_sum);
    }

    /// Merge a sibling partial profile (for distributed profiling: each
    /// rank profiles its chunk, the profiles reduce, every rank selects
    /// from the same global profile).
    ///
    /// `n`, `max|x|`, and the extreme exponents combine exactly; `Σx` and
    /// `Σ|x|` combine by merging the underlying binned accumulators, which
    /// is bitwise order- and grouping-independent — so any permutation of
    /// chunk partials, merged under any tree, reproduces the serial
    /// [`profile`] of the whole dataset bit for bit. (The previous
    /// implementation collapsed each partial to a double and re-summed
    /// with `two_sum`, which rounded away the residues and made the merged
    /// profile depend on merge order.) `k` is recomputed from the merged
    /// sums.
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        self.n += other.n;
        self.sum_bins.merge(&other.sum_bins);
        self.abs_bins.merge(&other.abs_bins);
        self.sum_estimate = self.sum_bins.finalize();
        self.abs_sum = self.abs_bins.finalize();
        self.max_abs = self.max_abs.max(other.max_abs);
        self.min_exp = self.min_exp.min(other.min_exp);
        self.max_exp = self.max_exp.max(other.max_exp);
        self.dr_binades = if self.min_exp == i32::MAX {
            0
        } else {
            self.max_exp - self.min_exp
        };
        self.k = condition_estimate(self.sum_estimate, self.abs_sum);
    }
}

/// `k̂ = Σ|x| / |Σx|` with the degenerate cases pinned: an exactly
/// cancelling sum is infinitely ill-conditioned, an all-zero (or empty)
/// dataset is trivially well-conditioned.
fn condition_estimate(sum: f64, abs_sum: f64) -> f64 {
    if sum == 0.0 {
        if abs_sum == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        abs_sum / sum.abs()
    }
}

/// Profile a dataset in one pass.
pub fn profile(values: &[f64]) -> DataProfile {
    let mut sum = BinnedSum::new(PROFILE_FOLD);
    let mut abs = BinnedSum::new(PROFILE_FOLD);
    let mut min_e = i32::MAX;
    let mut max_e = i32::MIN;
    let mut max_abs = 0.0f64;
    for &x in values {
        sum.add(x);
        abs.add(x.abs());
        if let Some(e) = exponent(x) {
            min_e = min_e.min(e);
            max_e = max_e.max(e);
        }
        max_abs = max_abs.max(x.abs());
    }
    let s = sum.finalize();
    let a = abs.finalize();
    DataProfile {
        n: values.len(),
        k: condition_estimate(s, a),
        dr_binades: if min_e == i32::MAX { 0 } else { max_e - min_e },
        max_abs,
        abs_sum: a,
        sum_estimate: s,
        min_exp: min_e,
        max_exp: max_e,
        sum_bins: sum,
        abs_bins: abs,
    }
}

/// Profile a dataset and accumulate it into `acc` in one fused pass.
///
/// [`profile`] followed by a separate reduction reads every cache line of
/// `values` twice; this visits each block once, interleaving the profile
/// statistics with `acc.add_slice` over L1-sized blocks. Both outputs are
/// bit-identical to the unfused pair: the profile statistics see the
/// elements in the same serial order as [`profile`], and block-chunked
/// `add_slice` preserves the accumulator's element order exactly (the two
/// accumulations are independent — neither reads the other's state).
pub fn profile_and_sum<A: Accumulator>(values: &[f64], acc: &mut A) -> DataProfile {
    /// Elements per fused block: 4 KiB of f64s, comfortably cache-resident.
    const BLOCK: usize = 512;
    let mut sum = BinnedSum::new(PROFILE_FOLD);
    let mut abs = BinnedSum::new(PROFILE_FOLD);
    let mut min_e = i32::MAX;
    let mut max_e = i32::MIN;
    let mut max_abs = 0.0f64;
    for block in values.chunks(BLOCK) {
        for &x in block {
            sum.add(x);
            abs.add(x.abs());
            if let Some(e) = exponent(x) {
                min_e = min_e.min(e);
                max_e = max_e.max(e);
            }
            max_abs = max_abs.max(x.abs());
        }
        acc.add_slice(block);
    }
    let s = sum.finalize();
    let a = abs.finalize();
    DataProfile {
        n: values.len(),
        k: condition_estimate(s, a),
        dr_binades: if min_e == i32::MAX { 0 } else { max_e - min_e },
        max_abs,
        abs_sum: a,
        sum_estimate: s,
        min_exp: min_e,
        max_exp: max_e,
        sum_bins: sum,
        abs_bins: abs,
    }
}

/// Profile a dataset in parallel on the shared runtime pool: one
/// [`profile`] pass per plan chunk, partial profiles merged in plan
/// (chunk-index) order via [`DataProfile::merge`].
///
/// The plan depends only on `values.len()`, so the result is deterministic
/// for every worker count. Falls back to the sequential pass when the data
/// fits in a single chunk.
pub fn profile_parallel(values: &[f64]) -> DataProfile {
    use repro_runtime::{ReductionPlan, Runtime};
    let plan = ReductionPlan::for_len(values.len());
    if plan.num_chunks() == 1 {
        return profile(values);
    }
    let parts = Runtime::global().map_chunks(&plan, |_, range| profile(&values[range]));
    let mut acc = DataProfile::empty();
    for p in &parts {
        acc.merge(p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_profile_agrees_with_sequential() {
        // > 1 default chunk, so the pool path actually runs.
        let values: Vec<f64> = (0..200_000)
            .map(|i| {
                let e = (i % 24) - 12;
                (if i % 2 == 0 { 1.0 } else { -1.0 }) * (i as f64 + 0.25) * (e as f64).exp2()
            })
            .collect();
        let seq = profile(&values);
        let par = profile_parallel(&values);
        assert_eq!(par.n, seq.n);
        assert_eq!(par.max_abs, seq.max_abs);
        assert_eq!(par.min_exp, seq.min_exp);
        assert_eq!(par.max_exp, seq.max_exp);
        assert_eq!(par.dr_binades, seq.dr_binades);
        // Binned accumulators merge bitwise-reproducibly, so the parallel
        // profile matches the serial one bit for bit — not just within a
        // tolerance.
        assert_eq!(par.abs_sum.to_bits(), seq.abs_sum.to_bits());
        assert_eq!(par.sum_estimate.to_bits(), seq.sum_estimate.to_bits());
        assert_eq!(par.k.to_bits(), seq.k.to_bits());
        // Deterministic: chunk boundaries depend only on the length.
        let again = profile_parallel(&values);
        assert_eq!(par.sum_estimate.to_bits(), again.sum_estimate.to_bits());
        assert_eq!(par.k.to_bits(), again.k.to_bits());
    }

    #[test]
    fn fused_profile_and_sum_is_bitwise_unfused() {
        use repro_fp::Superaccumulator;
        use repro_sum::{KahanSum, StandardSum};
        for (seed, n) in [
            (1u64, 0usize),
            (2, 1),
            (3, 511),
            (4, 512),
            (5, 513),
            (6, 20_000),
        ] {
            let values = repro_gen::zero_sum_with_range(n.max(2), 20, seed);
            let values = &values[..n];
            let seq = profile(values);
            for_each_acc(values, &seq);
            // Exact operator too: batched add_slice under the fused loop.
            let mut fused_exact = Superaccumulator::new();
            let fp = profile_and_sum(values, &mut fused_exact);
            let mut serial_exact = Superaccumulator::new();
            serial_exact.add_slice(values);
            assert_eq!(
                Accumulator::finalize(&fused_exact).to_bits(),
                Accumulator::finalize(&serial_exact).to_bits()
            );
            assert_eq!(fp.sum_estimate.to_bits(), seq.sum_estimate.to_bits());
        }

        fn for_each_acc(values: &[f64], seq: &DataProfile) {
            use repro_sum::Accumulator;
            fn check<A: Accumulator>(
                mut fused: A,
                mut serial: A,
                values: &[f64],
                seq: &DataProfile,
            ) {
                let p = profile_and_sum(values, &mut fused);
                serial.add_slice(values);
                assert_eq!(fused.finalize().to_bits(), serial.finalize().to_bits());
                assert_eq!(p.n, seq.n);
                assert_eq!(p.k.to_bits(), seq.k.to_bits());
                assert_eq!(p.sum_estimate.to_bits(), seq.sum_estimate.to_bits());
                assert_eq!(p.abs_sum.to_bits(), seq.abs_sum.to_bits());
                assert_eq!(p.max_abs.to_bits(), seq.max_abs.to_bits());
                assert_eq!(
                    (p.min_exp, p.max_exp, p.dr_binades),
                    (seq.min_exp, seq.max_exp, seq.dr_binades)
                );
            }
            check(StandardSum::new(), StandardSum::new(), values, seq);
            check(KahanSum::new(), KahanSum::new(), values, seq);
            check(BinnedSum::new(3), BinnedSum::new(3), values, seq);
        }
    }

    #[test]
    fn profile_of_benign_data() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = profile(&values);
        assert_eq!(p.n, 100);
        assert_eq!(p.k, 1.0);
        assert_eq!(p.sum_estimate, 5050.0);
        assert_eq!(p.abs_sum, 5050.0);
        assert_eq!(p.max_abs, 100.0);
        // 1..100 spans binades 0..6.
        assert_eq!(p.dr_binades, 6);
        assert_eq!(p.dr_decades(), 2);
    }

    #[test]
    fn profile_matches_exact_measurement_on_hard_data() {
        let values = repro_gen::generate(&repro_gen::DatasetSpec::new(
            2000,
            repro_gen::CondTarget::Finite(1e6),
            16,
            3,
        ));
        let p = profile(&values);
        let m = repro_gen::measure(&values);
        // CP-based estimate tracks the exact k closely even at k = 1e6.
        let ratio = p.k / m.k;
        assert!((0.99..1.01).contains(&ratio), "k̂/k = {ratio}");
        assert!(
            (p.dr_decades() - m.dr).abs() <= 1,
            "dr̂ {} vs {}",
            p.dr_decades(),
            m.dr
        );
    }

    #[test]
    fn zero_sum_data_profiles_as_infinite_k() {
        let values = repro_gen::zero_sum_with_range(1000, 8, 5);
        let p = profile(&values);
        assert_eq!(p.k, f64::INFINITY);
    }

    #[test]
    fn merged_profiles_match_whole_dataset_profiles() {
        let a = repro_gen::zero_sum_with_range(1000, 16, 1);
        let b: Vec<f64> = (1..=500).map(|i| i as f64).collect();
        let mut merged = profile(&a);
        merged.merge(&profile(&b));
        let whole = profile(&[a.clone(), b.clone()].concat());
        assert_eq!(merged.n, whole.n);
        assert_eq!(merged.dr_binades, whole.dr_binades);
        assert_eq!(merged.max_abs, whole.max_abs);
        let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(f64::MIN_POSITIVE);
        assert!(rel(merged.abs_sum, whole.abs_sum) < 1e-12);
        assert!(rel(merged.k, whole.k) < 1e-9, "{} vs {}", merged.k, whole.k);
    }

    #[test]
    fn incremental_add_matches_batch_profile_bitwise() {
        // Compare every observable quantity bitwise. (Whole-struct
        // equality would also compare the binned accumulators' internal
        // renorm-cadence counter, which legitimately differs by path while
        // the canonical numeric state is identical.)
        fn assert_bitwise_same(a: &DataProfile, b: &DataProfile) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.k.to_bits(), b.k.to_bits());
            assert_eq!(a.dr_binades, b.dr_binades);
            assert_eq!(a.max_abs.to_bits(), b.max_abs.to_bits());
            assert_eq!(a.abs_sum.to_bits(), b.abs_sum.to_bits());
            assert_eq!(a.sum_estimate.to_bits(), b.sum_estimate.to_bits());
            assert_eq!(a.min_exp, b.min_exp);
            assert_eq!(a.max_exp, b.max_exp);
        }
        let values = repro_gen::zero_sum_with_range(777, 24, 9);
        let batch = profile(&values);
        // Pure streaming.
        let mut inc = DataProfile::empty();
        for &x in &values {
            inc.add(x);
        }
        assert_bitwise_same(&inc, &batch);
        // Interleaved add + merge, arbitrary split points.
        let mut mixed = profile(&values[..100]);
        for &x in &values[100..300] {
            mixed.add(x);
        }
        mixed.merge(&profile(&values[300..]));
        assert_bitwise_same(&mixed, &batch);
        // And the streaming profile keeps merging like any other partial.
        let mut half = DataProfile::empty();
        for &x in &values[..400] {
            half.add(x);
        }
        half.merge(&profile(&values[400..]));
        assert_bitwise_same(&half, &batch);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = repro_gen::uniform(100, -1.0, 1.0, 2);
        let mut p = profile(&data);
        let before = p;
        p.merge(&DataProfile::empty());
        assert_eq!(p, before);
        let mut e = DataProfile::empty();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn degenerate_inputs() {
        let p = profile(&[]);
        assert_eq!((p.n, p.k, p.dr_binades), (0, 1.0, 0));
        let p = profile(&[0.0, 0.0]);
        assert_eq!(p.k, 1.0);
        assert_eq!(p.max_abs, 0.0);
    }
}
