//! Cheap one-pass dataset profiling.
//!
//! The paper's premise is that `n`, `k`, and `dr` are "estimable quantities"
//! a runtime can afford to compute. This profiler does it in one pass of
//! compensated arithmetic: the condition-number estimate uses composite-
//! precision sums of `x` and `|x|`, so it is itself reliable on exactly the
//! ill-conditioned inputs where it matters.

use repro_fp::ulp::exponent;
use repro_sum::{Accumulator, CompositeSum};

/// The profile the selector consumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataProfile {
    /// Number of values.
    pub n: usize,
    /// Estimated sum condition number `Σ|x| / |Σx|` (∞ if the estimated
    /// sum is zero; 1 for empty input).
    pub k: f64,
    /// Dynamic range in binary binades (difference of extreme exponents).
    pub dr_binades: i32,
    /// Largest magnitude.
    pub max_abs: f64,
    /// Estimated absolute-value sum.
    pub abs_sum: f64,
    /// Estimated sum.
    pub sum_estimate: f64,
    /// Smallest binary exponent seen (`i32::MAX` when no nonzero values).
    pub min_exp: i32,
    /// Largest binary exponent seen (`i32::MIN` when no nonzero values).
    pub max_exp: i32,
}

impl DataProfile {
    /// Dynamic range in decimal decades (the paper's Table I convention).
    pub fn dr_decades(&self) -> i32 {
        // binade → decade: log10(2) ≈ 0.30103
        (self.dr_binades as f64 * std::f64::consts::LOG10_2).round() as i32
    }

    /// The profile of an empty dataset (the identity for [`DataProfile::merge`]).
    pub fn empty() -> Self {
        profile(&[])
    }

    /// Merge a sibling partial profile (for distributed profiling: each
    /// rank profiles its chunk, the profiles reduce, every rank selects
    /// from the same global profile).
    ///
    /// `n`, `Σ|x|`, `Σx`, and `max|x|` combine exactly/associatively; the
    /// dynamic range combines via the tracked extreme exponents; `k` is
    /// recomputed from the merged sums.
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        self.n += other.n;
        // Recombine sums in compensated arithmetic via two_sum residues.
        let (s, e) = repro_fp::two_sum(self.sum_estimate, other.sum_estimate);
        self.sum_estimate = s + e;
        let (a, ea) = repro_fp::two_sum(self.abs_sum, other.abs_sum);
        self.abs_sum = a + ea;
        self.max_abs = self.max_abs.max(other.max_abs);
        self.min_exp = self.min_exp.min(other.min_exp);
        self.max_exp = self.max_exp.max(other.max_exp);
        self.dr_binades = if self.min_exp == i32::MAX {
            0
        } else {
            self.max_exp - self.min_exp
        };
        self.k = if self.sum_estimate == 0.0 {
            if self.abs_sum == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.abs_sum / self.sum_estimate.abs()
        };
    }
}

/// Profile a dataset in one pass.
pub fn profile(values: &[f64]) -> DataProfile {
    let mut sum = CompositeSum::new();
    let mut abs = CompositeSum::new();
    let mut min_e = i32::MAX;
    let mut max_e = i32::MIN;
    let mut max_abs = 0.0f64;
    for &x in values {
        sum.add(x);
        abs.add(x.abs());
        if let Some(e) = exponent(x) {
            min_e = min_e.min(e);
            max_e = max_e.max(e);
        }
        max_abs = max_abs.max(x.abs());
    }
    let s = sum.finalize();
    let a = abs.finalize();
    let k = if values.is_empty() {
        1.0
    } else if s == 0.0 {
        if a == 0.0 {
            1.0 // all zeros: trivially well-conditioned
        } else {
            f64::INFINITY
        }
    } else {
        a / s.abs()
    };
    DataProfile {
        n: values.len(),
        k,
        dr_binades: if min_e == i32::MAX { 0 } else { max_e - min_e },
        max_abs,
        abs_sum: a,
        sum_estimate: s,
        min_exp: min_e,
        max_exp: max_e,
    }
}

/// Profile a dataset in parallel on the shared runtime pool: one
/// [`profile`] pass per plan chunk, partial profiles merged in plan
/// (chunk-index) order via [`DataProfile::merge`].
///
/// The plan depends only on `values.len()`, so the result is deterministic
/// for every worker count. Falls back to the sequential pass when the data
/// fits in a single chunk.
pub fn profile_parallel(values: &[f64]) -> DataProfile {
    use repro_runtime::{ReductionPlan, Runtime};
    let plan = ReductionPlan::for_len(values.len());
    if plan.num_chunks() == 1 {
        return profile(values);
    }
    let parts = Runtime::global().map_chunks(&plan, |_, range| profile(&values[range]));
    let mut acc = DataProfile::empty();
    for p in &parts {
        acc.merge(p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_profile_agrees_with_sequential() {
        // > 1 default chunk, so the pool path actually runs.
        let values: Vec<f64> = (0..200_000)
            .map(|i| {
                let e = (i % 24) - 12;
                (if i % 2 == 0 { 1.0 } else { -1.0 }) * (i as f64 + 0.25) * (e as f64).exp2()
            })
            .collect();
        let seq = profile(&values);
        let par = profile_parallel(&values);
        assert_eq!(par.n, seq.n);
        assert_eq!(par.max_abs, seq.max_abs);
        assert_eq!(par.min_exp, seq.min_exp);
        assert_eq!(par.max_exp, seq.max_exp);
        assert_eq!(par.dr_binades, seq.dr_binades);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(f64::MIN_POSITIVE);
        assert!(rel(par.abs_sum, seq.abs_sum) < 1e-12);
        // Deterministic: chunk boundaries depend only on the length.
        let again = profile_parallel(&values);
        assert_eq!(par.sum_estimate.to_bits(), again.sum_estimate.to_bits());
        assert_eq!(par.k.to_bits(), again.k.to_bits());
    }

    #[test]
    fn profile_of_benign_data() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = profile(&values);
        assert_eq!(p.n, 100);
        assert_eq!(p.k, 1.0);
        assert_eq!(p.sum_estimate, 5050.0);
        assert_eq!(p.abs_sum, 5050.0);
        assert_eq!(p.max_abs, 100.0);
        // 1..100 spans binades 0..6.
        assert_eq!(p.dr_binades, 6);
        assert_eq!(p.dr_decades(), 2);
    }

    #[test]
    fn profile_matches_exact_measurement_on_hard_data() {
        let values = repro_gen::generate(&repro_gen::DatasetSpec::new(
            2000,
            repro_gen::CondTarget::Finite(1e6),
            16,
            3,
        ));
        let p = profile(&values);
        let m = repro_gen::measure(&values);
        // CP-based estimate tracks the exact k closely even at k = 1e6.
        let ratio = p.k / m.k;
        assert!((0.99..1.01).contains(&ratio), "k̂/k = {ratio}");
        assert!(
            (p.dr_decades() - m.dr).abs() <= 1,
            "dr̂ {} vs {}",
            p.dr_decades(),
            m.dr
        );
    }

    #[test]
    fn zero_sum_data_profiles_as_infinite_k() {
        let values = repro_gen::zero_sum_with_range(1000, 8, 5);
        let p = profile(&values);
        assert_eq!(p.k, f64::INFINITY);
    }

    #[test]
    fn merged_profiles_match_whole_dataset_profiles() {
        let a = repro_gen::zero_sum_with_range(1000, 16, 1);
        let b: Vec<f64> = (1..=500).map(|i| i as f64).collect();
        let mut merged = profile(&a);
        merged.merge(&profile(&b));
        let whole = profile(&[a.clone(), b.clone()].concat());
        assert_eq!(merged.n, whole.n);
        assert_eq!(merged.dr_binades, whole.dr_binades);
        assert_eq!(merged.max_abs, whole.max_abs);
        let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(f64::MIN_POSITIVE);
        assert!(rel(merged.abs_sum, whole.abs_sum) < 1e-12);
        assert!(rel(merged.k, whole.k) < 1e-9, "{} vs {}", merged.k, whole.k);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = repro_gen::uniform(100, -1.0, 1.0, 2);
        let mut p = profile(&data);
        let before = p;
        p.merge(&DataProfile::empty());
        assert_eq!(p, before);
        let mut e = DataProfile::empty();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn degenerate_inputs() {
        let p = profile(&[]);
        assert_eq!((p.n, p.k, p.dr_binades), (0, 1.0, 0));
        let p = profile(&[0.0, 0.0]);
        assert_eq!(p.k, 1.0);
        assert_eq!(p.max_abs, 0.0);
    }
}
