//! Subtree-adaptive reduction — the paper's closing recommendation, built:
//! "tools that, at exascale, profile parameters of interest (e.g., n, k, dr,
//! and tree shape) at runtime and apply cheaper but acceptably accurate
//! reduction algorithms to **subtrees** based on the profile."
//!
//! The reduction is split into subtrees (chunks). Each chunk is profiled
//! *individually* and reduced with the cheapest operator meeting its share
//! of the error budget; the chunk results are then combined **exactly** in a
//! superaccumulator, so the top of the tree adds no variability of its own.
//! Datasets whose conditioning is concentrated (a few hostile regions inside
//! mostly benign data — precisely the N-body picture) therefore pay the
//! expensive operators only where the data demands them.

use crate::selector::{Selector, Tolerance};
use crate::{profile, DataProfile};
use repro_fp::Superaccumulator;
use repro_sum::{Accumulator, Algorithm};

/// How the global tolerance is divided among subtrees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetSplit {
    /// Each of `c` chunks gets `t / c`: chunk spreads add linearly in the
    /// worst case, so the global bound is unconditional.
    Linear,
    /// Each chunk gets `t / √c`: chunk errors across independent reduction
    /// orders add in quadrature; tighter budgets, probabilistic guarantee.
    Quadrature,
}

/// Per-chunk record of what the adaptive reduction did.
#[derive(Clone, Debug)]
pub struct ChunkReport {
    /// Index of the chunk.
    pub index: usize,
    /// The chunk's profile.
    pub profile: DataProfile,
    /// The operator chosen for it.
    pub algorithm: Algorithm,
}

/// The result of a subtree-adaptive reduction.
#[derive(Clone, Debug)]
pub struct SubtreeOutcome {
    /// The reduction result (chunk partials combined exactly).
    pub sum: f64,
    /// Per-chunk choices.
    pub chunks: Vec<ChunkReport>,
}

impl SubtreeOutcome {
    /// Histogram of chosen algorithms: `(algorithm, chunk count)`.
    pub fn choice_histogram(&self) -> Vec<(Algorithm, usize)> {
        let mut hist: Vec<(Algorithm, usize)> = Vec::new();
        for c in &self.chunks {
            match hist.iter_mut().find(|(a, _)| *a == c.algorithm) {
                Some((_, n)) => *n += 1,
                None => hist.push((c.algorithm, 1)),
            }
        }
        hist.sort_by_key(|(a, _)| a.cost_rank());
        hist
    }
}

/// Profile-per-subtree adaptive reducer.
///
/// ```
/// use repro_select::{HeuristicSelector, SubtreeAdaptive, Tolerance};
///
/// let values: Vec<f64> = (0..4096).map(|i| 1.0 + (i % 7) as f64).collect();
/// let reducer = SubtreeAdaptive::new(
///     HeuristicSelector::default(),
///     Tolerance::AbsoluteSpread(1e-6),
///     512,
/// );
/// let outcome = reducer.reduce(&values);
/// assert_eq!(outcome.chunks.len(), 8);
/// ```
pub struct SubtreeAdaptive<S: Selector> {
    selector: S,
    tolerance: Tolerance,
    chunk_size: usize,
    budget_split: BudgetSplit,
}

impl<S: Selector> SubtreeAdaptive<S> {
    /// New adaptive reducer: subtrees of `chunk_size` values, global
    /// `tolerance`, conservative linear budget split.
    pub fn new(selector: S, tolerance: Tolerance, chunk_size: usize) -> Self {
        assert!(chunk_size >= 1);
        Self {
            selector,
            tolerance,
            chunk_size,
            budget_split: BudgetSplit::Linear,
        }
    }

    /// Use a different budget-splitting rule.
    pub fn with_budget_split(mut self, split: BudgetSplit) -> Self {
        self.budget_split = split;
        self
    }

    /// The tolerance each individual chunk must meet.
    fn chunk_tolerance(&self, num_chunks: usize) -> Tolerance {
        let c = num_chunks.max(1) as f64;
        let divide = |t: f64| match self.budget_split {
            BudgetSplit::Linear => t / c,
            BudgetSplit::Quadrature => t / c.sqrt(),
        };
        match self.tolerance {
            Tolerance::Bitwise => Tolerance::Bitwise,
            Tolerance::AbsoluteSpread(t) => Tolerance::AbsoluteSpread(divide(t)),
            // Relative tolerances cannot be divided safely per chunk (the
            // chunk sums' magnitudes are unknown a priori); translate to the
            // chunk's own relative budget unchanged — the exact top-level
            // combine keeps the composition sound for the common case where
            // chunk magnitudes are comparable to the total.
            Tolerance::RelativeSpread(r) => Tolerance::RelativeSpread(divide(r)),
        }
    }

    /// Reduce `values`, choosing an operator per subtree.
    pub fn reduce(&self, values: &[f64]) -> SubtreeOutcome {
        let num_chunks = values.len().div_ceil(self.chunk_size).max(1);
        let chunk_tol = self.chunk_tolerance(num_chunks);
        let mut top = Superaccumulator::new();
        let mut chunks = Vec::with_capacity(num_chunks);
        for (index, chunk) in values.chunks(self.chunk_size.max(1)).enumerate() {
            let p = profile(chunk);
            let algorithm = self.selector.choose(&p, chunk_tol);
            let mut acc = algorithm.new_accumulator();
            acc.add_slice(chunk);
            top.add(acc.finalize());
            chunks.push(ChunkReport {
                index,
                profile: p,
                algorithm,
            });
        }
        SubtreeOutcome {
            sum: top.to_f64(),
            chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::HeuristicSelector;

    /// Mixed workload: mostly benign chunks with a few hostile regions.
    fn mixed_workload() -> Vec<f64> {
        let mut values = Vec::new();
        for block in 0..16 {
            if block % 8 == 3 {
                // Hostile region: zero-sum, wide dynamic range.
                values.extend(repro_gen::zero_sum_with_range(1024, 24, block as u64));
            } else {
                // Benign region: all positive, narrow.
                values.extend((0..1024).map(|i| 1.0 + ((block * 1024 + i) % 97) as f64 * 1e-2));
            }
        }
        values
    }

    #[test]
    fn hostile_chunks_get_stronger_operators() {
        let values = mixed_workload();
        let reducer = SubtreeAdaptive::new(
            HeuristicSelector::default(),
            Tolerance::AbsoluteSpread(1e-10),
            1024,
        );
        let outcome = reducer.reduce(&values);
        assert_eq!(outcome.chunks.len(), 16);
        let hist = outcome.choice_histogram();
        assert!(hist.len() >= 2, "expected mixed choices, got {hist:?}");
        // The hostile chunks (3 and 11) must not use the cheapest operator.
        for idx in [3usize, 11] {
            let c = &outcome.chunks[idx];
            assert!(
                c.algorithm.cost_rank() > Algorithm::Standard.cost_rank(),
                "hostile chunk {idx} got {}",
                c.algorithm
            );
        }
    }

    #[test]
    fn result_is_accurate_to_the_budget() {
        let values = mixed_workload();
        let tol = 1e-10;
        let reducer = SubtreeAdaptive::new(
            HeuristicSelector::default(),
            Tolerance::AbsoluteSpread(tol),
            1024,
        );
        let outcome = reducer.reduce(&values);
        let err = repro_fp::abs_error(outcome.sum, &values);
        assert!(err <= tol, "error {err:e} exceeds budget {tol:e}");
    }

    #[test]
    fn bitwise_tolerance_makes_every_chunk_reproducible() {
        let values = mixed_workload();
        let reducer = SubtreeAdaptive::new(HeuristicSelector::default(), Tolerance::Bitwise, 512);
        let outcome = reducer.reduce(&values);
        assert!(outcome.chunks.iter().all(|c| c.algorithm.is_reproducible()));
        // And repeated runs give the same bits.
        let again = reducer.reduce(&values);
        assert_eq!(outcome.sum.to_bits(), again.sum.to_bits());
    }

    #[test]
    fn cheaper_than_global_selection_on_mixed_data() {
        // Global profiling sees the hostile regions and escalates everything;
        // subtree profiling pays only where needed.
        let values = mixed_workload();
        let tolerance = Tolerance::AbsoluteSpread(1e-10);
        let global = crate::AdaptiveReducer::heuristic(tolerance);
        let (global_alg, _) = global.choose(&values);
        let subtree = SubtreeAdaptive::new(HeuristicSelector::default(), tolerance, 1024);
        let outcome = subtree.reduce(&values);
        let cheapest_used = outcome
            .chunks
            .iter()
            .map(|c| c.algorithm.cost_rank())
            .min()
            .unwrap();
        assert!(
            cheapest_used < global_alg.cost_rank(),
            "subtree adaptivity should save on benign chunks: global {global_alg}, \
             cheapest chunk rank {cheapest_used}"
        );
    }

    #[test]
    fn budget_splits() {
        let r = SubtreeAdaptive::new(
            HeuristicSelector::default(),
            Tolerance::AbsoluteSpread(1.0),
            10,
        );
        match r.chunk_tolerance(4) {
            Tolerance::AbsoluteSpread(t) => assert_eq!(t, 0.25),
            _ => panic!(),
        }
        let r = r.with_budget_split(BudgetSplit::Quadrature);
        match r.chunk_tolerance(4) {
            Tolerance::AbsoluteSpread(t) => assert_eq!(t, 0.5),
            _ => panic!(),
        }
    }

    #[test]
    fn degenerate_inputs() {
        let reducer = SubtreeAdaptive::new(
            HeuristicSelector::default(),
            Tolerance::AbsoluteSpread(1e-12),
            128,
        );
        let empty = reducer.reduce(&[]);
        assert_eq!(empty.sum, 0.0);
        assert!(empty.chunks.is_empty());
        let single = reducer.reduce(&[42.0]);
        assert_eq!(single.sum, 42.0);
        assert_eq!(single.chunks.len(), 1);
    }
}
