//! # `repro-select` — intelligent runtime selection of reduction algorithms
//!
//! The system the paper argues for: "estimable quantities such as condition
//! number and dynamic range can guide runtime selection of a reduction
//! operator with the appropriate performance/reproducibility tradeoff for
//! the application at hand."
//!
//! The pipeline:
//!
//! 1. [`profile::profile`] scans the operands once (O(n), compensated
//!    arithmetic) and estimates the quantities the paper identifies:
//!    `n`, dynamic range `dr`, condition number `k`.
//! 2. A [`Selector`] maps `(profile, tolerance)` to the **cheapest**
//!    [`Algorithm`] expected to keep run-to-run variability under the
//!    tolerance:
//!    * [`selector::HeuristicSelector`] uses closed-form variability
//!      predictors per algorithm (the analytic counterpart of the paper's
//!      Figure 12 maps);
//!    * [`selector::CalibratedSelector`] interpolates a measured
//!      `(k, dr) → variability` table built by [`calibrate::calibrate`],
//!      which replays the paper's grid methodology (Figure 8) at
//!      calibration time.
//! 3. [`AdaptiveReducer`] packages the whole thing: profile, choose,
//!    reduce, report.
//! 4. [`verified::VerifiedReducer`] trusts measurements over models: reduce
//!    under two independent orders, escalate until the runs agree within
//!    tolerance — the paper's reproducibility definition, enforced at
//!    runtime.
//! 5. [`subtree::SubtreeAdaptive`] goes where the paper's conclusion points:
//!    profile **subtrees** individually and pay for expensive operators only
//!    on the chunks whose data demands them, combining chunk partials
//!    exactly at the top.
//!
//! ```
//! use repro_select::{AdaptiveReducer, Tolerance};
//!
//! // A benign workload: all positive, one decade. ST is fine.
//! let benign: Vec<f64> = (1..1000).map(|i| 1.0 + (i % 10) as f64).collect();
//! let reducer = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-10));
//! let outcome = reducer.reduce(&benign);
//! assert_eq!(outcome.algorithm.abbrev(), "ST");
//!
//! // The same tolerance on a hostile workload escalates the operator.
//! let hostile = repro_gen::zero_sum_with_range(1000, 32, 7);
//! let outcome = reducer.reduce(&hostile);
//! assert!(outcome.algorithm.cost_rank() > repro_sum::Algorithm::Standard.cost_rank());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calibrate;
pub mod cost;
pub mod explain;
pub mod profile;
pub mod sample;
pub mod selector;
pub mod subtree;
pub mod verified;

pub use cache::{DecisionCache, Fingerprint};
pub use calibrate::{
    calibrate, try_calibrate, CalibrationConfig, CalibrationError, CalibrationTable,
};
pub use cost::{CostModel, CostSource};
pub use explain::{explain, record_decision, Explanation};
pub use profile::{profile, profile_parallel, DataProfile};
use repro_sum::{Accumulator, Algorithm};
pub use sample::{choose_sampled, SampleConfig, SampledProfile};
pub use selector::{HeuristicSelector, SampledSelector, Selector, Tolerance};
pub use subtree::{BudgetSplit, SubtreeAdaptive, SubtreeOutcome};
pub use verified::{VerifiedOutcome, VerifiedReducer};

/// The result of one adaptive reduction.
#[derive(Clone, Copy, Debug)]
pub struct Outcome {
    /// The computed sum.
    pub sum: f64,
    /// The algorithm the selector chose.
    pub algorithm: Algorithm,
    /// The profile the choice was based on.
    pub profile: DataProfile,
}

/// Profile → select → reduce, in one object.
pub struct AdaptiveReducer {
    selector: Box<dyn Selector + Send + Sync>,
    tolerance: Tolerance,
}

/// Flight-record one selection decision so a post-mortem shows the last
/// choices made before the process died. `path` names the reduce entry
/// point that decided; never carries timing, only decision facts.
fn flight_decision(path: &str, algorithm: Algorithm, n: usize) {
    repro_obs::flight::record_with("select", "decision", || {
        vec![
            repro_obs::f("path", path),
            repro_obs::f("alg", algorithm.abbrev()),
            repro_obs::f("n", n as u64),
        ]
    });
}

impl std::fmt::Debug for AdaptiveReducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveReducer")
            .field("tolerance", &self.tolerance)
            .finish_non_exhaustive()
    }
}

impl AdaptiveReducer {
    /// An adaptive reducer driven by the analytic heuristic selector.
    pub fn heuristic(tolerance: Tolerance) -> Self {
        Self {
            selector: Box::new(HeuristicSelector::default()),
            tolerance,
        }
    }

    /// An adaptive reducer driven by a measured calibration table.
    pub fn calibrated(table: CalibrationTable, tolerance: Tolerance) -> Self {
        Self {
            selector: Box::new(selector::CalibratedSelector::new(table)),
            tolerance,
        }
    }

    /// An adaptive reducer with a custom selector.
    pub fn with_selector(selector: Box<dyn Selector + Send + Sync>, tolerance: Tolerance) -> Self {
        Self {
            selector,
            tolerance,
        }
    }

    /// Which algorithm would be chosen for this data (no reduction done).
    /// Profiling runs chunk-parallel on the shared runtime pool.
    pub fn choose(&self, values: &[f64]) -> (Algorithm, DataProfile) {
        let p = profile::profile_parallel(values);
        (self.selector.choose(&p, self.tolerance), p)
    }

    /// Profile, select, and sequentially reduce.
    ///
    /// The profile pass speculates: [`profile::profile_and_sum`] computes
    /// the profile *and* a [`repro_sum::StandardSum`] reduction — the
    /// cheapest rung of the ladder — in one sweep over the data. When the
    /// selector then picks ST (the common benign-workload case) the sum is
    /// already done and the values were read exactly once; otherwise only
    /// the chosen operator re-reads them. Bitwise identical to the unfused
    /// pipeline either way: the fused profile equals the serial profile
    /// bit-for-bit (which itself equals [`profile::profile_parallel`], a
    /// tested invariant), and the speculative accumulator saw the elements
    /// in plain slice order.
    pub fn reduce(&self, values: &[f64]) -> Outcome {
        let mut speculative = repro_sum::StandardSum::new();
        let profile = profile::profile_and_sum(values, &mut speculative);
        let algorithm = self.selector.choose(&profile, self.tolerance);
        flight_decision("reduce", algorithm, values.len());
        let sum = if algorithm == Algorithm::Standard {
            speculative.finalize()
        } else {
            let mut acc = algorithm.new_accumulator();
            acc.add_slice(values);
            acc.finalize()
        };
        Outcome {
            sum,
            algorithm,
            profile,
        }
    }

    /// The always-on fast path: **sampled** profile → **decision cache** →
    /// reduce.
    ///
    /// Instead of the ~28 ns/elem full profiling pass, this strides a
    /// ~2k-element sample ([`sample::SampledProfile`]), fingerprints its
    /// extrapolated shape ([`cache::Fingerprint`]), and reuses the cached
    /// decision for that shape when one exists. On a miss the sampled
    /// profile drives selection (with the conservative
    /// [`sample::SAMPLED_SAFETY_FACTOR`] inflation) and the decision is
    /// cached for the next same-shaped workload. When the sample's
    /// confidence bounds are too loose to trust —
    /// heavy-tailed data, or a sign-disputed sum under a relative
    /// tolerance — it falls back to the fused full pass
    /// ([`AdaptiveReducer::reduce`]), bypassing the cache entirely.
    ///
    /// The caching layer never changes the numerics: a decision only picks
    /// *which* deterministic operator runs, so a cache hit is bitwise
    /// identical to the miss that populated it (property-tested). The
    /// returned [`Outcome::profile`] is the sampled *estimate* on the fast
    /// path and the full profile on the fallback path.
    pub fn reduce_cached(&self, values: &[f64], cache: &DecisionCache) -> Outcome {
        let cfg = sample::SampleConfig::default();
        let sampled = sample::SampledProfile::collect(values, &cfg);
        if sampled.bounds_tight(&cfg) {
            let est = sampled.estimated_profile();
            let fp = Fingerprint::of(&est, self.tolerance);
            let algorithm = match cache.lookup(&fp) {
                Some(alg) => alg,
                None => {
                    match sample::choose_sampled(
                        self.selector.as_ref(),
                        self.tolerance,
                        &sampled,
                        &cfg,
                    ) {
                        Some(alg) => {
                            cache.insert(fp, alg);
                            alg
                        }
                        // Tight bounds but a sign-disputed sum under a
                        // relative tolerance: the budget itself is noise.
                        None => return self.reduce(values),
                    }
                }
            };
            flight_decision("reduce_cached", algorithm, values.len());
            let mut acc = algorithm.new_accumulator();
            acc.add_slice(values);
            return Outcome {
                sum: acc.finalize(),
                algorithm,
                profile: est,
            };
        }
        self.reduce(values)
    }

    /// Like [`AdaptiveReducer::reduce`], but emitting one `decision`
    /// event into `scope` for the selection (see
    /// [`explain::record_decision`]) before reducing. The record's
    /// candidate table always comes from the analytic heuristic audit;
    /// its `chosen` field is *this reducer's* actual choice, so a
    /// calibrated selector that disagrees with the heuristic is recorded
    /// faithfully.
    pub fn reduce_traced(&self, values: &[f64], scope: &mut repro_obs::Scope) -> Outcome {
        let (algorithm, profile) = self.choose(values);
        flight_decision("reduce_traced", algorithm, values.len());
        let mut explanation = explain::explain(&profile, self.tolerance);
        explanation.chosen = algorithm;
        explain::record_decision(scope, &profile, &explanation);
        let mut acc = algorithm.new_accumulator();
        acc.add_slice(values);
        Outcome {
            sum: acc.finalize(),
            algorithm,
            profile,
        }
    }

    /// Permutations measured by [`AdaptiveReducer::reduce_telemetry`]
    /// besides the given order: enough to see order sensitivity, cheap
    /// enough to run inline.
    pub const REALIZED_SPREAD_RUNS: usize = 3;

    /// Like [`AdaptiveReducer::reduce_traced`], but also **measuring** the
    /// chosen operator's order sensitivity on this very input: the values
    /// are re-reduced under [`AdaptiveReducer::REALIZED_SPREAD_RUNS`]
    /// deterministic permutations (seeded from the data profile, so two
    /// runs of the same input measure identically) and the max−min spread
    /// is appended to the `decision` event as `realized_spread` — the
    /// measured counterpart of the record's predicted `{alg}_spread`
    /// columns.
    ///
    /// With a `registry`, the pair lands as gauges for calibration-drift
    /// monitoring: `select.predicted_spread`, `select.realized_spread`,
    /// and `select.spread_drift` (realized − predicted; positive means the
    /// predictor undershot, the dangerous direction).
    pub fn reduce_telemetry(
        &self,
        values: &[f64],
        scope: &mut repro_obs::Scope,
        registry: Option<&repro_obs::Registry>,
    ) -> Outcome {
        use repro_fp::rng::DetRng;
        let (algorithm, profile) = self.choose(values);
        flight_decision("reduce_telemetry", algorithm, values.len());
        let mut explanation = explain::explain(&profile, self.tolerance);
        explanation.chosen = algorithm;

        let run = |vals: &[f64]| {
            let mut acc = algorithm.new_accumulator();
            acc.add_slice(vals);
            acc.finalize()
        };
        let sum = run(values);
        let (mut lo, mut hi) = (sum, sum);
        // Seed from plan-independent data facts so the measurement (and
        // with it the decision record) is a pure function of the input.
        let mut rng = DetRng::seed_from_u64(0x2015 ^ profile.n as u64);
        let mut shuffled = values.to_vec();
        for _ in 0..Self::REALIZED_SPREAD_RUNS {
            rng.shuffle(&mut shuffled);
            let s = run(&shuffled);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        let realized = hi - lo;
        explain::record_decision_with_spread(scope, &profile, &explanation, Some(realized));

        if let Some(registry) = registry {
            let predicted = explanation
                .candidates
                .iter()
                .find(|c| c.algorithm == algorithm)
                .map(|c| c.predicted_spread)
                .unwrap_or(0.0);
            registry.gauge_set("select.predicted_spread", predicted);
            registry.gauge_set("select.realized_spread", realized);
            registry.gauge_set("select.spread_drift", realized - predicted);
        }
        Outcome {
            sum,
            algorithm,
            profile,
        }
    }
}

/// One row of a selection report: a tolerance and the operator the
/// heuristic selector would pick for it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The tolerance probed.
    pub tolerance: Tolerance,
    /// The cheapest acceptable operator at that tolerance.
    pub algorithm: Algorithm,
}

/// Sweep a ladder of tolerances over one dataset: the at-a-glance answer to
/// "what would selecting cost me at each reproducibility level?".
///
/// ```
/// let hostile = repro_gen::zero_sum_with_range(10_000, 32, 7);
/// let report = repro_select::recommendations(&hostile);
/// // The ladder ends at a reproducible operator.
/// assert!(report.last().unwrap().algorithm.is_reproducible());
/// // And it only ever escalates.
/// assert!(report.windows(2).all(|w| w[0].algorithm.cost_rank() <= w[1].algorithm.cost_rank()));
/// ```
pub fn recommendations(values: &[f64]) -> Vec<Recommendation> {
    let p = profile(values);
    let selector = HeuristicSelector::default();
    let mut out = Vec::new();
    for exp in [-6i32, -9, -12, -15] {
        let tolerance = Tolerance::AbsoluteSpread(10f64.powi(exp));
        out.push(Recommendation {
            tolerance,
            algorithm: selector.choose(&p, tolerance),
        });
    }
    out.push(Recommendation {
        tolerance: Tolerance::Bitwise,
        algorithm: selector.choose(&p, Tolerance::Bitwise),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendations_cover_the_ladder() {
        let benign: Vec<f64> = (1..1000).map(|i| i as f64 * 1e-3).collect();
        let report = recommendations(&benign);
        assert_eq!(report.len(), 5);
        assert_eq!(report[0].algorithm, Algorithm::Standard);
        assert_eq!(report.last().unwrap().algorithm, Algorithm::PR);
    }

    #[test]
    fn outcome_reports_choice_and_profile() {
        let values: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let r = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-9));
        let out = r.reduce(&values);
        assert_eq!(out.sum, 4950.0);
        assert_eq!(out.profile.n, 99);
        assert_eq!(out.algorithm.abbrev(), "ST");
    }

    #[test]
    fn fused_reduce_matches_unfused_pipeline_bitwise() {
        // Covers both speculation outcomes: benign data keeps the fused
        // StandardSum pass, hostile data escalates and re-reduces.
        let benign: Vec<f64> = (1..1000).map(|i| 1.0 + (i % 10) as f64).collect();
        let hostile = repro_gen::zero_sum_with_range(5_000, 32, 7);
        for (values, expect_st) in [(&benign, true), (&hostile, false)] {
            let r = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-10));
            let out = r.reduce(values);
            assert_eq!(out.algorithm == Algorithm::Standard, expect_st);
            // The unfused pipeline: parallel profile, choose, serial reduce.
            let (algorithm, profile) = r.choose(values);
            let mut acc = algorithm.new_accumulator();
            acc.add_slice(values);
            assert_eq!(out.algorithm, algorithm);
            assert_eq!(out.sum.to_bits(), acc.finalize().to_bits());
            assert_eq!(out.profile.k.to_bits(), profile.k.to_bits());
            assert_eq!(
                out.profile.sum_estimate.to_bits(),
                profile.sum_estimate.to_bits()
            );
        }
    }

    #[test]
    fn telemetry_decision_record_carries_realized_spread() {
        let values = repro_gen::zero_sum_with_range(2_000, 28, 11);
        let r = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-6));
        let registry = repro_obs::Registry::new();

        let run = || {
            let (trace, sink) = repro_obs::Trace::to_memory();
            let mut scope = trace.scope("select");
            let out = r.reduce_telemetry(&values, &mut scope, Some(&registry));
            (out, repro_obs::render_jsonl(&sink.drain()))
        };
        let (out, text) = run();
        let parsed = repro_obs::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("decision"));
        let realized = parsed.get("realized_spread").unwrap().as_num().unwrap();
        assert!(realized >= 0.0);
        assert_eq!(
            parsed.get("chosen").unwrap().as_str(),
            Some(out.algorithm.abbrev())
        );
        // The measurement is deterministic: same input, same record bytes.
        let (_, again) = run();
        assert_eq!(text, again);

        let snap = registry.snapshot();
        assert_eq!(snap.gauges["select.realized_spread"], realized);
        assert!(
            (snap.gauges["select.realized_spread"]
                - snap.gauges["select.predicted_spread"]
                - snap.gauges["select.spread_drift"])
                .abs()
                < 1e-300
        );
    }

    #[test]
    fn telemetry_realized_spread_is_zero_for_reproducible_choice() {
        let values = repro_gen::zero_sum_with_range(1_000, 30, 13);
        let r = AdaptiveReducer::heuristic(Tolerance::Bitwise);
        let (trace, sink) = repro_obs::Trace::to_memory();
        let mut scope = trace.scope("select");
        let out = r.reduce_telemetry(&values, &mut scope, None);
        assert!(out.algorithm.is_reproducible());
        let text = repro_obs::render_jsonl(&sink.drain());
        let parsed = repro_obs::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("realized_spread").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn untelemetried_decision_record_bytes_are_unchanged() {
        // reduce_traced must not grow a realized_spread field: the
        // telemetry is opt-in, and off means byte-identical records.
        let values: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let r = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(1e-9));
        let (trace, sink) = repro_obs::Trace::to_memory();
        let mut scope = trace.scope("select");
        r.reduce_traced(&values, &mut scope);
        let text = repro_obs::render_jsonl(&sink.drain());
        assert!(!text.contains("realized_spread"), "{text}");
    }
}
