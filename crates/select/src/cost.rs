//! Per-algorithm cost model.
//!
//! The selector needs to know the *price* side of the tradeoff. Relative
//! per-element costs default to the flop-count ratios of the operators
//! (matching the ordering the paper measures in Figures 4–5) and can be
//! replaced by machine-measured numbers via [`CostModel::measure`].

use repro_sum::{Accumulator, Algorithm};
use std::time::Instant;

/// Relative (or measured, in ns/element) cost per algorithm.
#[derive(Clone, Debug)]
pub struct CostModel {
    entries: Vec<(Algorithm, f64)>,
}

impl Default for CostModel {
    /// Flop-count based relative costs (ST = 1): K adds 4 flops per
    /// element, CP 6, PR ~4 per live bin plus renormalization traffic.
    fn default() -> Self {
        Self {
            entries: vec![
                (Algorithm::Standard, 1.0),
                (Algorithm::Pairwise, 1.3),
                (Algorithm::Kahan, 4.0),
                (Algorithm::Neumaier, 5.0),
                (Algorithm::Composite, 6.0),
                (Algorithm::DoubleDouble, 8.0),
                (Algorithm::PR, 14.0),
                (Algorithm::Distill, 25.0),
            ],
        }
    }
}

impl CostModel {
    /// Cost of one algorithm (unknown algorithms fall back to their cost
    /// rank, preserving the ordering).
    pub fn cost(&self, alg: Algorithm) -> f64 {
        self.entries
            .iter()
            .find(|(a, _)| *a == alg)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| 1.0 + alg.cost_rank() as f64 * 3.0)
    }

    /// Rank algorithms cheapest-first.
    pub fn by_cost(&self, algorithms: &[Algorithm]) -> Vec<Algorithm> {
        let mut v = algorithms.to_vec();
        v.sort_by(|a, b| self.cost(*a).total_cmp(&self.cost(*b)));
        v
    }

    /// Measure actual ns/element on this machine over a `sample_len`
    /// workload, `reps` repetitions with a warm cache (the paper's Figure 4
    /// protocol, shrunk).
    pub fn measure(sample_len: usize, reps: usize, seed: u64) -> Self {
        let values = repro_gen::zero_sum_with_range(sample_len.max(16), 8, seed);
        let mut entries = Vec::new();
        for alg in Algorithm::ALL {
            // Warm-up pass.
            let mut sink = alg.sum(&values);
            let start = Instant::now();
            for _ in 0..reps.max(1) {
                let mut acc = alg.new_accumulator();
                acc.add_slice(&values);
                sink += acc.finalize();
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(sink);
            entries.push((alg, elapsed / (reps.max(1) * values.len()) as f64));
        }
        Self { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_paper_ordering() {
        let m = CostModel::default();
        let ordered = m.by_cost(&Algorithm::PAPER_SET);
        let labels: Vec<&str> = ordered.iter().map(|a| a.abbrev()).collect();
        assert_eq!(labels, ["ST", "K", "CP", "PR"]);
    }

    #[test]
    fn unknown_fold_falls_back_to_rank() {
        let m = CostModel::default();
        assert!(m.cost(Algorithm::Binned { fold: 2 }) > m.cost(Algorithm::Standard));
    }

    #[test]
    fn measured_costs_keep_st_cheapest() {
        // Wall-clock under parallel test load is noisy; PR's margin over ST
        // is the robust signal (>10x in quiet conditions), checked loosely.
        let m = CostModel::measure(16_384, 8, 1);
        let st = m.cost(Algorithm::Standard);
        assert!(
            m.cost(Algorithm::PR) >= st * 2.0,
            "PR {} vs ST {}",
            m.cost(Algorithm::PR),
            st
        );
    }
}
