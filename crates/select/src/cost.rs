//! Per-algorithm cost model.
//!
//! The selector needs to know the *price* side of the tradeoff — and that
//! price must track the machine, not a constant. The default model is
//! **calibrated**: per-operator ns/element from the committed
//! `BENCH_06.json` throughput baseline (the tracked harness behind
//! `repro-reduce bench`), normalized so recursive summation costs 1.0. The
//! old flop-count ratios survive only as the no-baseline fallback
//! ([`CostModel::static_flops`]), and [`CostModel::measure`] re-measures on
//! the current machine when the baseline is suspect. Every model carries a
//! [`CostSource`] so decision records can say which numbers ranked the
//! candidates.
//!
//! The stale-constant bug this replaces was not cosmetic: the baseline
//! measures Composite at ~2.1× ST while the flop ratios guessed 6× (vs
//! Kahan's measured ~3.9×, guessed 4×), so the static table ranked CP after
//! K and the selector systematically over-paid for mid-tolerance workloads
//! after the PR 5/6 hot-path work.

use repro_fp::simd::{self, SimdTier};
use repro_sum::{Accumulator, Algorithm};
use std::sync::OnceLock;
use std::time::Instant;

/// The committed baseline the default model is seeded from (repo root).
pub const BASELINE_FILE: &str = "BENCH_06.json";

/// The baseline document itself, embedded at compile time so the default
/// model needs no filesystem access (and cannot drift from the commit).
const BASELINE_JSON: &str = include_str!("../../../BENCH_06.json");

/// Where a [`CostModel`]'s numbers came from — logged with every decision
/// record so rankings are auditable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostSource {
    /// ns/element from a committed `BENCH_*.json` baseline, normalized to
    /// ST. `tier` is the SIMD dispatch tier active when the model was
    /// built: the eight operator kernels themselves are tier-independent
    /// (none routes through the dispatched superaccumulator hot path), but
    /// the tier selects which `simd/<tier>` baseline entry prices the
    /// exact-summation machinery ([`CostModel::exact_path_ns`]).
    Baseline {
        /// Which committed baseline file.
        file: &'static str,
        /// The active dispatch tier the model was resolved for.
        tier: SimdTier,
    },
    /// Static flop-count ratios — the pre-calibration constants, kept as
    /// the fallback when no baseline parses.
    StaticFlops,
    /// Measured on this machine by [`CostModel::measure`].
    Measured,
}

impl CostSource {
    /// Compact label for decision records (`BENCH_06.json@avx2`,
    /// `static-flops`, `measured`).
    pub fn label(&self) -> String {
        match self {
            CostSource::Baseline { file, tier } => format!("{file}@{tier}"),
            CostSource::StaticFlops => "static-flops".into(),
            CostSource::Measured => "measured".into(),
        }
    }
}

/// Relative (or measured, in ns/element) cost per algorithm.
#[derive(Clone, Debug)]
pub struct CostModel {
    entries: Vec<(Algorithm, f64)>,
    source: CostSource,
    /// Absolute ns/element of ST in the source, when the source measured
    /// one (converts the relative entries back to absolute costs).
    st_ns: Option<f64>,
    /// Baseline ns/element of the tier-dispatched exact superaccumulator
    /// path (`simd/<tier>`), when the source's tier was benchmarked.
    exact_ns: Option<f64>,
    /// Baseline ns/element of the full profiling pass (`select/profile`).
    profile_ns: Option<f64>,
}

impl Default for CostModel {
    /// The calibrated model from the committed [`BASELINE_FILE`] at the
    /// active SIMD tier, falling back to [`CostModel::static_flops`] if the
    /// baseline fails to parse. Resolved once per process and cached.
    fn default() -> Self {
        static DEFAULT: OnceLock<CostModel> = OnceLock::new();
        DEFAULT
            .get_or_init(|| {
                CostModel::baseline(simd::active_tier()).unwrap_or_else(CostModel::static_flops)
            })
            .clone()
    }
}

impl CostModel {
    /// Flop-count based relative costs (ST = 1): K adds 4 flops per
    /// element, CP 6, PR ~4 per live bin plus renormalization traffic.
    /// Kept only as the no-baseline fallback — measured reality disagrees
    /// (see [`CostModel::baseline`]).
    pub fn static_flops() -> Self {
        Self {
            entries: vec![
                (Algorithm::Standard, 1.0),
                (Algorithm::Pairwise, 1.3),
                (Algorithm::Kahan, 4.0),
                (Algorithm::Neumaier, 5.0),
                (Algorithm::Composite, 6.0),
                (Algorithm::DoubleDouble, 8.0),
                (Algorithm::PR, 14.0),
                (Algorithm::Distill, 25.0),
            ],
            source: CostSource::StaticFlops,
            st_ns: None,
            exact_ns: None,
            profile_ns: None,
        }
    }

    /// The calibrated model from the embedded committed baseline, `None`
    /// if the baseline is missing an operator or does not parse.
    pub fn baseline(tier: SimdTier) -> Option<Self> {
        Self::from_baseline_json(BASELINE_JSON, BASELINE_FILE, tier)
    }

    /// Parse a `repro-bench-throughput-v1` document into a cost model:
    /// every `sum/<op>` entry becomes a relative cost (normalized to
    /// `sum/ST`), `simd/<tier>` and `select/profile` ride along as the
    /// exact-path and profiling price tags. Returns `None` unless all
    /// eight operators are present with positive finite timings —
    /// a half-parsed baseline must not silently rank candidates.
    pub fn from_baseline_json(json: &str, file: &'static str, tier: SimdTier) -> Option<Self> {
        let doc = repro_obs::Json::parse(json.trim()).ok()?;
        if doc.get("schema")?.as_str()? != "repro-bench-throughput-v1" {
            return None;
        }
        let repro_obs::Json::Arr(entries) = doc.get("entries")? else {
            return None;
        };
        let ns_of = |op: &str| -> Option<f64> {
            entries
                .iter()
                .find(|e| e.get("op").and_then(|o| o.as_str()) == Some(op))
                .and_then(|e| e.get("ns_per_elem"))
                .and_then(|v| v.as_num())
                .filter(|ns| ns.is_finite() && *ns > 0.0)
        };
        let st = ns_of("sum/ST")?;
        let mut rel = Vec::with_capacity(Algorithm::ALL.len());
        for alg in Algorithm::ALL {
            rel.push((alg, ns_of(&format!("sum/{}", alg.abbrev()))? / st));
        }
        Some(Self {
            entries: rel,
            source: CostSource::Baseline { file, tier },
            st_ns: Some(st),
            exact_ns: ns_of(&format!("simd/{}", tier.label())),
            profile_ns: ns_of("select/profile"),
        })
    }

    /// Where this model's numbers came from.
    pub fn source(&self) -> &CostSource {
        &self.source
    }

    /// Cost of one algorithm (unknown algorithms fall back to their cost
    /// rank, preserving the ordering).
    pub fn cost(&self, alg: Algorithm) -> f64 {
        self.entries
            .iter()
            .find(|(a, _)| *a == alg)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| 1.0 + alg.cost_rank() as f64 * 3.0)
    }

    /// Absolute ns/element of `alg`, when the source measured time (the
    /// baseline and [`CostModel::measure`] do; flop ratios have no clock).
    pub fn absolute_ns(&self, alg: Algorithm) -> Option<f64> {
        self.st_ns.map(|st| st * self.cost(alg))
    }

    /// ns/element of the dispatched exact superaccumulator hot path at the
    /// source's SIMD tier, when that tier appears in the baseline.
    pub fn exact_path_ns(&self) -> Option<f64> {
        self.exact_ns
    }

    /// ns/element of the full profiling pass in the baseline — what the
    /// sampled profiler (see [`crate::sample`]) is amortizing away.
    pub fn profile_pass_ns(&self) -> Option<f64> {
        self.profile_ns
    }

    /// Rank algorithms cheapest-first.
    pub fn by_cost(&self, algorithms: &[Algorithm]) -> Vec<Algorithm> {
        let mut v = algorithms.to_vec();
        v.sort_by(|a, b| self.cost(*a).total_cmp(&self.cost(*b)));
        v
    }

    /// Measure actual ns/element on this machine over a `sample_len`
    /// workload, `reps` repetitions with a warm cache (the paper's Figure 4
    /// protocol, shrunk). The offline refresher behind the committed
    /// baseline: when the baseline's rankings are suspect on new hardware,
    /// re-measure, re-run `repro-reduce bench`, and commit the new file.
    pub fn measure(sample_len: usize, reps: usize, seed: u64) -> Self {
        let values = repro_gen::zero_sum_with_range(sample_len.max(16), 8, seed);
        let mut entries = Vec::new();
        let mut st_ns = None;
        for alg in Algorithm::ALL {
            // Warm-up pass.
            let mut sink = alg.sum(&values);
            let start = Instant::now();
            for _ in 0..reps.max(1) {
                let mut acc = alg.new_accumulator();
                acc.add_slice(&values);
                sink += acc.finalize();
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(sink);
            let ns = elapsed / (reps.max(1) * values.len()) as f64;
            if alg == Algorithm::Standard {
                st_ns = Some(ns);
            }
            entries.push((alg, ns));
        }
        Self {
            entries,
            source: CostSource::Measured,
            st_ns,
            exact_ns: None,
            profile_ns: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_calibrated_from_the_committed_baseline() {
        let m = CostModel::default();
        assert!(
            matches!(m.source(), CostSource::Baseline { file, .. } if *file == BASELINE_FILE),
            "default should come from the committed baseline, got {:?}",
            m.source()
        );
        // Normalized to ST.
        assert_eq!(m.cost(Algorithm::Standard), 1.0);
        // The measured post-PR-6 ordering: CP's fused kernel undercuts
        // Kahan (this is the stale-constant fix — the flop ratios had K
        // cheaper than CP).
        let ordered = m.by_cost(&Algorithm::PAPER_SET);
        let labels: Vec<&str> = ordered.iter().map(|a| a.abbrev()).collect();
        assert_eq!(labels, ["ST", "CP", "K", "PR"]);
        assert!(m.cost(Algorithm::Composite) < m.cost(Algorithm::Kahan));
        // Absolute costs reconstruct the baseline's ns/elem.
        let st_abs = m.absolute_ns(Algorithm::Standard).unwrap();
        assert!((0.1..10.0).contains(&st_abs), "implausible ST ns {st_abs}");
    }

    #[test]
    fn static_fallback_preserves_paper_flop_ordering() {
        let m = CostModel::static_flops();
        assert_eq!(*m.source(), CostSource::StaticFlops);
        assert_eq!(m.source().label(), "static-flops");
        let ordered = m.by_cost(&Algorithm::PAPER_SET);
        let labels: Vec<&str> = ordered.iter().map(|a| a.abbrev()).collect();
        assert_eq!(labels, ["ST", "K", "CP", "PR"]);
        assert_eq!(m.absolute_ns(Algorithm::Standard), None);
    }

    #[test]
    fn baseline_carries_tier_price_tags() {
        // The committed baseline was measured on an AVX2 box, so every tier
        // column is present; the tier argument picks which one prices the
        // exact path.
        for &tier in &[SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
            let m = CostModel::baseline(tier).expect("committed baseline parses");
            assert_eq!(
                *m.source(),
                CostSource::Baseline {
                    file: BASELINE_FILE,
                    tier
                }
            );
            assert!(m.source().label().contains(tier.label()));
            let exact = m.exact_path_ns().expect("tier column present");
            assert!(exact > 0.0);
            assert!(m.profile_pass_ns().unwrap() > exact);
        }
        // Relative rankings don't move with the tier: operator kernels are
        // tier-independent (none routes through the dispatched hot path).
        let a = CostModel::baseline(SimdTier::Scalar).unwrap();
        let b = CostModel::baseline(SimdTier::Avx2).unwrap();
        for alg in Algorithm::ALL {
            assert_eq!(a.cost(alg).to_bits(), b.cost(alg).to_bits());
        }
    }

    #[test]
    fn malformed_baselines_are_rejected_not_half_used() {
        let tier = SimdTier::Scalar;
        assert!(CostModel::from_baseline_json("not json", "x", tier).is_none());
        assert!(CostModel::from_baseline_json("{\"schema\": \"other\"}", "x", tier).is_none());
        // Missing an operator: the whole model is refused.
        let partial = r#"{
          "schema": "repro-bench-throughput-v1",
          "entries": [{"op": "sum/ST", "n": 10, "ns_per_elem": 1.0, "bytes_per_sec": 1, "seed": 1, "git_rev": "x"}]
        }"#;
        assert!(CostModel::from_baseline_json(partial, "x", tier).is_none());
        // Non-positive timing: refused.
        let zeroed = BASELINE_JSON.replace("\"ns_per_elem\": 0.7496", "\"ns_per_elem\": 0.0");
        assert!(CostModel::from_baseline_json(&zeroed, "x", tier).is_none());
    }

    #[test]
    fn unknown_fold_falls_back_to_rank() {
        let m = CostModel::default();
        assert!(m.cost(Algorithm::Binned { fold: 2 }) > m.cost(Algorithm::Standard));
    }

    #[test]
    fn measured_costs_keep_st_cheapest() {
        // Wall-clock under parallel test load is noisy; PR's margin over ST
        // is the robust signal (>10x in quiet conditions), checked loosely.
        let m = CostModel::measure(16_384, 8, 1);
        assert_eq!(*m.source(), CostSource::Measured);
        let st = m.cost(Algorithm::Standard);
        assert!(
            m.cost(Algorithm::PR) >= st * 2.0,
            "PR {} vs ST {}",
            m.cost(Algorithm::PR),
            st
        );
        assert!(m.absolute_ns(Algorithm::Standard).is_some());
    }
}
