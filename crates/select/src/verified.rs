//! Verified reduction: *measure* the irreproducibility instead of
//! predicting it.
//!
//! The heuristic and calibrated selectors trust a model. [`VerifiedReducer`]
//! trusts nothing: it reduces the data under two independent random
//! reduction orders, and if the two results disagree by more than the
//! tolerance, escalates to the next costlier operator and tries again —
//! a runtime embodiment of the paper's reproducibility definition
//! ("closeness of agreement among repeated simulation results under the
//! same initial conditions"). PR terminates the ladder: its two runs agree
//! bitwise by construction.
//!
//! The price is honest too: every verification pass costs a second
//! reduction, so this mode suits validation runs and selector calibration
//! more than hot loops (the ablation benches quantify the overhead).

use crate::selector::Tolerance;
use repro_fp::rng::DetRng;
use repro_sum::{Accumulator, Algorithm};

/// Outcome of one verified reduction.
#[derive(Clone, Debug)]
pub struct VerifiedOutcome {
    /// The accepted result (from the final algorithm's first run).
    pub sum: f64,
    /// The algorithm that passed verification.
    pub algorithm: Algorithm,
    /// Observed |disagreement| between the two runs of each tried
    /// algorithm, in escalation order (last entry passed).
    pub disagreements: Vec<(Algorithm, f64)>,
}

/// A reducer that verifies reproducibility empirically and escalates on
/// failure.
///
/// ```
/// use repro_select::{Tolerance, VerifiedReducer};
///
/// let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
/// let outcome = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-9), 1)
///     .reduce(&values)
///     .unwrap();
/// assert_eq!(outcome.sum, 5050.0);
/// assert_eq!(outcome.algorithm.abbrev(), "ST"); // benign data passes rung 1
/// ```
#[derive(Clone, Debug)]
pub struct VerifiedReducer {
    tolerance: Tolerance,
    /// Escalation ladder, cheapest first.
    ladder: Vec<Algorithm>,
    seed: u64,
}

impl VerifiedReducer {
    /// New verified reducer over the paper's algorithm ladder.
    pub fn new(tolerance: Tolerance, seed: u64) -> Self {
        Self {
            tolerance,
            ladder: Algorithm::PAPER_SET.to_vec(),
            seed,
        }
    }

    /// Use a custom escalation ladder (cheapest first; the last entry
    /// should be reproducible or verification may fail outright).
    pub fn with_ladder(mut self, ladder: Vec<Algorithm>) -> Self {
        assert!(!ladder.is_empty());
        self.ladder = ladder;
        self
    }

    /// Reduce with verification. Returns `None` only if even the last
    /// ladder entry disagrees with itself beyond the tolerance (impossible
    /// for a reproducible final rung under [`Tolerance::Bitwise`]).
    pub fn reduce(&self, values: &[f64]) -> Option<VerifiedOutcome> {
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut shuffled = values.to_vec();
        let mut disagreements = Vec::new();
        for &alg in &self.ladder {
            // Run 1: given order. Run 2: independent random order.
            let first = run(alg, values);
            rng.shuffle(&mut shuffled);
            let second = run(alg, &shuffled);
            let disagreement = (first - second).abs();
            disagreements.push((alg, disagreement));
            let ok = match self.tolerance {
                Tolerance::Bitwise => first.to_bits() == second.to_bits(),
                Tolerance::AbsoluteSpread(t) => disagreement <= t,
                Tolerance::RelativeSpread(r) => {
                    let scale = first.abs().max(second.abs());
                    scale == 0.0 || disagreement <= r * scale
                }
            };
            if ok {
                return Some(VerifiedOutcome {
                    sum: first,
                    algorithm: alg,
                    disagreements,
                });
            }
        }
        None
    }
}

fn run(alg: Algorithm, values: &[f64]) -> f64 {
    let mut acc = alg.new_accumulator();
    acc.add_slice(values);
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_data_passes_on_the_first_rung() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let r = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-9), 1);
        let out = r.reduce(&values).unwrap();
        assert_eq!(out.algorithm, Algorithm::Standard);
        assert_eq!(out.sum, 500_500.0);
        assert_eq!(out.disagreements.len(), 1);
    }

    #[test]
    fn hostile_data_escalates_past_standard() {
        let values = repro_gen::zero_sum_with_range(20_000, 32, 3);
        let r = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-10), 2);
        let out = r.reduce(&values).unwrap();
        assert!(
            out.algorithm.cost_rank() > Algorithm::Standard.cost_rank(),
            "chose {}",
            out.algorithm
        );
        // The first rung's measured disagreement must be what forced the
        // escalation.
        assert!(out.disagreements[0].1 > 1e-10);
        // And the accepted result is actually good.
        assert!(repro_fp::abs_error(out.sum, &values) <= 1e-9);
    }

    #[test]
    fn bitwise_tolerance_reaches_pr() {
        let values = repro_gen::zero_sum_with_range(5_000, 32, 7);
        let r = VerifiedReducer::new(Tolerance::Bitwise, 9);
        let out = r.reduce(&values).unwrap();
        assert!(out.algorithm.is_reproducible() || out.disagreements.last().unwrap().1 == 0.0);
        // PR's self-disagreement is exactly zero.
        let (last_alg, last_d) = *out.disagreements.last().unwrap();
        assert_eq!(last_alg, out.algorithm);
        assert_eq!(last_d, 0.0);
    }

    #[test]
    fn ladder_without_reproducible_rung_can_fail() {
        let values = repro_gen::zero_sum_with_range(20_000, 32, 5);
        let r = VerifiedReducer::new(Tolerance::Bitwise, 4).with_ladder(vec![Algorithm::Standard]);
        assert!(
            r.reduce(&values).is_none(),
            "ST cannot self-agree bitwise here"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let values = repro_gen::zero_sum_with_range(2_000, 16, 11);
        let a = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-12), 42)
            .reduce(&values)
            .unwrap();
        let b = VerifiedReducer::new(Tolerance::AbsoluteSpread(1e-12), 42)
            .reduce(&values)
            .unwrap();
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        assert_eq!(a.algorithm, b.algorithm);
    }
}
