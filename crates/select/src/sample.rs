//! Deterministic strided **sampled profiling** — the cheap front half of
//! always-on selection.
//!
//! The full [`crate::profile::profile`] pass costs ~26–29 ns/element (it
//! runs compensated binned arithmetic over every value); on a benign
//! million-element workload that is 30× the price of the reduction it is
//! steering. This module estimates the same quantities — `k̂`, `dr`,
//! `Σ|x|` — from a seeded stride-sampled subset (~2k values regardless of
//! `n`), making the profiling overhead O(sample) instead of O(n):
//! well under 1 ns per *input* element at the default scale.
//!
//! Sampling buys speed with uncertainty, so every [`SampledProfile`]
//! carries explicit confidence bounds: the sample is split into two
//! interleaved half-samples and the halves' independent estimates are
//! compared ([`SampledProfile::bounds`]). When the halves disagree beyond
//! the [`SampleConfig`] thresholds the bounds are *loose* — the data's
//! tail is too heavy for 2k points to summarize — and the caller must fall
//! back to the fused full pass ([`crate::profile::profile_and_sum`]),
//! which is exactly what [`crate::AdaptiveReducer::reduce_cached`] does.
//! When the bounds are tight, [`choose_sampled`] additionally inflates the
//! extrapolated `Σ|x|` by a safety factor before consulting the selector,
//! so sampling error pushes the decision toward *more* accuracy, never
//! less.
//!
//! Everything is deterministic: the stride is a pure function of `n` and
//! the config, the offset comes from the config seed, and the half-split
//! alternates sample ordinals — two runs over the same input produce
//! bit-identical profiles, estimates, and decisions.

use crate::profile::DataProfile;
use crate::selector::{Selector, Tolerance};
use repro_sum::Algorithm;

/// How to sample and when to trust the result.
#[derive(Clone, Copy, Debug)]
pub struct SampleConfig {
    /// Target sample size (the stride is `ceil(n / target)`). The default
    /// 2048 keeps the estimate noise ~2% on benign data while the gather
    /// stays cheaper than 0.5 ns per input element at n = 10⁶.
    pub target: usize,
    /// Seed for the deterministic stride offset.
    pub seed: u64,
    /// Bounds threshold: max relative gap between the halves' mean |x|
    /// estimates.
    pub max_abs_rel_gap: f64,
    /// Bounds threshold: max gap between the halves' condition decades
    /// (`log10 k̂`, hostile estimates clamped to one decade past finite).
    pub max_k_decade_gap: f64,
    /// Bounds threshold: max gap between the halves' dynamic ranges, in
    /// binades.
    pub max_dr_binade_gap: i32,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            target: 2048,
            seed: 0x5A4D,
            max_abs_rel_gap: 0.10,
            max_k_decade_gap: 1.0,
            max_dr_binade_gap: 8,
        }
    }
}

/// Safety factor applied to the extrapolated `Σ|x|` when a *sampled*
/// profile drives selection: every candidate's predicted spread scales with
/// `Σ|x|`, so doubling it biases the choice toward stronger operators —
/// the conservative direction for an estimate that could have missed tail
/// mass. (The budget side is resolved from the *uninflated* sum estimate,
/// so the inflation never loosens a relative tolerance.)
pub const SAMPLED_SAFETY_FACTOR: f64 = 2.0;

/// The halves' agreement, quantified. `tight()` per the config thresholds
/// is the precondition for trusting a sampled decision.
#[derive(Clone, Copy, Debug)]
pub struct SampleBounds {
    /// Relative gap between the halves' mean-|x| estimates (0 = perfect
    /// agreement; 1 = one half saw nothing the other did).
    pub abs_rel_gap: f64,
    /// Gap between the halves' condition decades.
    pub k_decade_gap: f64,
    /// Gap between the halves' dynamic ranges, binades.
    pub dr_binade_gap: i32,
    /// Whether the halves agree on the sign of the sum estimate —
    /// required before a sampled profile may resolve a
    /// [`Tolerance::RelativeSpread`] budget (a disputed sign means the sum
    /// magnitude estimate is noise).
    pub sum_sign_agrees: bool,
}

/// A profile estimated from a strided sample, with the split-half state
/// needed to quantify (and re-quantify, after merges) its own reliability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledProfile {
    /// Profile of the even-ordinal half-sample.
    half_a: DataProfile,
    /// Profile of the odd-ordinal half-sample.
    half_b: DataProfile,
    /// Total number of elements in the underlying data (`>=` sample size).
    pub n_total: usize,
    /// The stride used (`1` = the sample is exhaustive).
    pub stride: usize,
}

/// Condition decades with hostile estimates clamped: one decade past the
/// largest k the calibration grid probes (mirrors `calibrate`'s convention)
/// so `inf` and "effectively inf" agree instead of producing a NaN gap.
fn k_decades(k: f64) -> f64 {
    if k.is_finite() {
        k.max(1.0).log10().min(16.0)
    } else {
        16.0
    }
}

impl SampledProfile {
    /// Profile a strided sample of `values`.
    ///
    /// The stride is `ceil(n / target)`; the offset is `seed % stride`.
    /// Sampled ordinals alternate between two half-profiles, giving two
    /// independent interleaved estimates of the same population. With
    /// `n <= target` the sample is exhaustive (stride 1) and the bounds
    /// are exact.
    pub fn collect(values: &[f64], cfg: &SampleConfig) -> Self {
        let n = values.len();
        let target = cfg.target.max(2);
        let stride = n.div_ceil(target).max(1);
        let offset = (cfg.seed % stride as u64) as usize;
        let mut half_a = DataProfile::empty();
        let mut half_b = DataProfile::empty();
        let mut idx = offset;
        let mut ordinal = 0usize;
        while idx < n {
            if ordinal & 1 == 0 {
                half_a.add(values[idx]);
            } else {
                half_b.add(values[idx]);
            }
            ordinal += 1;
            idx += stride;
        }
        Self {
            half_a,
            half_b,
            n_total: n,
            stride,
        }
    }

    /// Number of values actually sampled.
    pub fn sample_len(&self) -> usize {
        self.half_a.n + self.half_b.n
    }

    /// The combined sample profile (both halves merged) — `k̂`, `dr`, and
    /// the extremes as seen by the sample, at sample scale.
    pub fn sample_profile(&self) -> DataProfile {
        let mut p = self.half_a;
        p.merge(&self.half_b);
        p
    }

    /// The profile extrapolated to the full dataset: `n` is the true total,
    /// the sums scale by `n_total / sample_len`, and the scale-invariant
    /// quantities (`k̂`, `dr`, `max|x|`) carry over from the sample. Only
    /// the *public* estimates are extrapolated — do not [`DataProfile::merge`]
    /// the result (merge [`SampledProfile`]s instead, which keeps the
    /// underlying accumulators at sample scale).
    pub fn estimated_profile(&self) -> DataProfile {
        let mut est = self.sample_profile();
        let m = est.n;
        est.n = self.n_total;
        if m > 0 && self.n_total > m {
            let factor = self.n_total as f64 / m as f64;
            est.abs_sum *= factor;
            est.sum_estimate *= factor;
        }
        est
    }

    /// Quantify the halves' agreement.
    pub fn bounds(&self) -> SampleBounds {
        let (a, b) = (&self.half_a, &self.half_b);
        let mean = |p: &DataProfile| {
            if p.n == 0 {
                0.0
            } else {
                p.abs_sum / p.n as f64
            }
        };
        let (ma, mb) = (mean(a), mean(b));
        let abs_rel_gap = if ma.max(mb) == 0.0 {
            0.0
        } else {
            (ma - mb).abs() / ma.max(mb)
        };
        SampleBounds {
            abs_rel_gap,
            k_decade_gap: (k_decades(a.k) - k_decades(b.k)).abs(),
            dr_binade_gap: (a.dr_binades - b.dr_binades).abs(),
            sum_sign_agrees: a.sum_estimate.signum() == b.sum_estimate.signum()
                || a.sum_estimate == 0.0
                || b.sum_estimate == 0.0,
        }
    }

    /// Whether the bounds are tight enough (per `cfg`) for a sampled
    /// decision. An exhaustive sample (stride 1) is always tight — it *is*
    /// the full profile.
    pub fn bounds_tight(&self, cfg: &SampleConfig) -> bool {
        if self.stride == 1 {
            return true;
        }
        // A half that saw nothing cannot vouch for the other.
        if self.half_a.n == 0 || self.half_b.n == 0 {
            return false;
        }
        let b = self.bounds();
        b.abs_rel_gap <= cfg.max_abs_rel_gap
            && b.k_decade_gap <= cfg.max_k_decade_gap
            && b.dr_binade_gap <= cfg.max_dr_binade_gap
    }

    /// Merge another sampled partial (streaming re-selection: each chunk of
    /// the stream is sampled as it arrives, the partials merge, and the
    /// merged estimate re-selects). Requires equal strides — merging
    /// estimates of different densities would silently weight one chunk's
    /// points over the other's. Returns `false` (leaving `self` untouched)
    /// on a stride mismatch.
    ///
    /// Bitwise permutation/tree-invariant, like [`DataProfile::merge`]:
    /// the half-profiles combine half-to-half through the binned
    /// accumulators, so any merge grouping of the same partials produces
    /// identical bits (asserted by property test).
    pub fn merge(&mut self, other: &Self) -> bool {
        if self.stride != other.stride && self.n_total > 0 && other.n_total > 0 {
            return false;
        }
        if other.n_total == 0 {
            return true;
        }
        if self.n_total == 0 {
            *self = *other;
            return true;
        }
        self.half_a.merge(&other.half_a);
        self.half_b.merge(&other.half_b);
        self.n_total += other.n_total;
        true
    }
}

/// Choose an algorithm from a sampled profile, or `None` when the bounds
/// are too loose to separate candidates (caller falls back to the fused
/// full pass).
///
/// The selector sees the extrapolated profile with `Σ|x|` inflated by
/// [`SAMPLED_SAFETY_FACTOR`] — predicted spreads are biased *up*, so a
/// tight-bounds sampled decision lands on the full-profile choice or a
/// **stronger** operator, never a weaker one (property-tested). A
/// [`Tolerance::RelativeSpread`] budget additionally requires the halves to
/// agree on the sum's sign; a disputed sign means the magnitude the budget
/// would be relative to is itself noise.
pub fn choose_sampled<S: Selector + ?Sized>(
    selector: &S,
    tolerance: Tolerance,
    sampled: &SampledProfile,
    cfg: &SampleConfig,
) -> Option<Algorithm> {
    if !sampled.bounds_tight(cfg) {
        return None;
    }
    if matches!(tolerance, Tolerance::RelativeSpread(_))
        && sampled.stride > 1
        && !sampled.bounds().sum_sign_agrees
    {
        return None;
    }
    let mut est = sampled.estimated_profile();
    if sampled.stride > 1 {
        est.abs_sum *= SAMPLED_SAFETY_FACTOR;
    }
    Some(selector.choose(&est, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use crate::selector::HeuristicSelector;

    #[test]
    fn exhaustive_sample_is_the_full_profile() {
        let values: Vec<f64> = (1..=1500).map(|i| i as f64).collect();
        let cfg = SampleConfig::default();
        let s = SampledProfile::collect(&values, &cfg);
        assert_eq!(s.stride, 1);
        assert_eq!(s.sample_len(), values.len());
        assert!(s.bounds_tight(&cfg));
        let full = profile(&values);
        let est = s.estimated_profile();
        assert_eq!(est.n, full.n);
        assert_eq!(est.abs_sum.to_bits(), full.abs_sum.to_bits());
        assert_eq!(est.sum_estimate.to_bits(), full.sum_estimate.to_bits());
        assert_eq!(est.dr_binades, full.dr_binades);
    }

    #[test]
    fn sampled_estimate_tracks_the_full_profile_on_benign_data() {
        let values = repro_gen::uniform(200_000, 0.0, 1.0, 42);
        let cfg = SampleConfig::default();
        let s = SampledProfile::collect(&values, &cfg);
        assert!(s.stride > 1);
        assert!(s.sample_len() >= cfg.target / 2);
        assert!(s.bounds_tight(&cfg), "{:?}", s.bounds());
        let full = profile(&values);
        let est = s.estimated_profile();
        assert_eq!(est.n, full.n);
        let rel = (est.abs_sum - full.abs_sum).abs() / full.abs_sum;
        assert!(rel < 0.05, "abs_sum off by {rel}");
        // The sample's exponent extremes are a subset of the data's, so the
        // dynamic range estimate can only under-shoot, never over-shoot.
        // (Uniform(0,1) has a heavy-tailed *minimum* — a 2k sample misses
        // the deepest binades — which is exactly why dr carries the least
        // weight in the predictors.)
        assert!(est.dr_binades <= full.dr_binades);
        assert!(est.dr_binades >= 5, "one-binade estimate from wide data");
    }

    #[test]
    fn sampling_is_deterministic() {
        let values = repro_gen::uniform(50_000, -1.0, 1.0, 7);
        let cfg = SampleConfig::default();
        let a = SampledProfile::collect(&values, &cfg);
        let b = SampledProfile::collect(&values, &cfg);
        assert_eq!(a, b);
        // And seed-sensitive: a different offset sees different values.
        let c = SampledProfile::collect(
            &values,
            &SampleConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(
            a.sample_profile().abs_sum.to_bits(),
            c.sample_profile().abs_sum.to_bits()
        );
    }

    #[test]
    fn heavy_tail_missed_by_one_half_loosens_the_bounds() {
        // A single enormous outlier: whichever half samples it (or misses
        // it) must disagree with the other, forcing the full-profile
        // fallback instead of a confidently wrong estimate.
        let mut values = repro_gen::uniform(100_000, 0.5, 1.0, 3);
        values[50_001] = 1e18;
        let cfg = SampleConfig::default();
        let s = SampledProfile::collect(&values, &cfg);
        // The outlier either was sampled into exactly one half (abs gap
        // explodes) or missed entirely; if missed, dr still agrees but the
        // estimate is fine for the mass that exists. Force the sampled case
        // by placing the outlier on the stride grid.
        let offset = (cfg.seed % s.stride as u64) as usize;
        values[offset] = 1e18;
        let s = SampledProfile::collect(&values, &cfg);
        assert!(
            !s.bounds_tight(&cfg),
            "outlier in one half must loosen bounds: {:?}",
            s.bounds()
        );
        assert_eq!(
            choose_sampled(
                &HeuristicSelector::default(),
                Tolerance::AbsoluteSpread(1e-9),
                &s,
                &cfg
            ),
            None
        );
    }

    #[test]
    fn sampled_choice_is_never_cheaper_than_the_full_profile_choice() {
        let cfg = SampleConfig::default();
        let sel = HeuristicSelector::default();
        let costs = crate::cost::CostModel::default();
        for (seed, n) in [(1u64, 30_000), (2, 120_000), (3, 60_000)] {
            let values = repro_gen::uniform(n, 0.0, 1.0, seed);
            let s = SampledProfile::collect(&values, &cfg);
            for t in [1e-3, 1e-7, 1e-11] {
                let tol = Tolerance::AbsoluteSpread(t);
                let Some(sampled_choice) = choose_sampled(&sel, tol, &s, &cfg) else {
                    continue; // loose bounds: fallback path, nothing to check
                };
                let full_choice = sel.choose(&profile(&values), tol);
                assert!(
                    costs.cost(sampled_choice) >= costs.cost(full_choice),
                    "sampled {sampled_choice} cheaper than full {full_choice} at t={t:e}"
                );
            }
        }
    }

    #[test]
    fn disputed_sum_sign_blocks_relative_tolerance_decisions() {
        // Zero-sum data: the halves' sum estimates are sampling noise with
        // arbitrary signs. A RelativeSpread budget must not resolve from
        // that. (AbsoluteSpread does not consult the sum sign.)
        let values = repro_gen::zero_sum_with_range(100_000, 4, 11);
        let cfg = SampleConfig::default();
        let s = SampledProfile::collect(&values, &cfg);
        if s.bounds().sum_sign_agrees {
            return; // this seed's halves happened to agree; nothing to test
        }
        assert_eq!(
            choose_sampled(
                &HeuristicSelector::default(),
                Tolerance::RelativeSpread(1e-9),
                &s,
                &cfg
            ),
            None
        );
    }

    #[test]
    fn merge_requires_equal_strides_and_is_order_invariant() {
        let cfg = SampleConfig::default();
        let a = repro_gen::uniform(40_000, 0.0, 1.0, 1);
        let b = repro_gen::uniform(40_000, 0.0, 2.0, 2);
        let sa = SampledProfile::collect(&a, &cfg);
        let sb = SampledProfile::collect(&b, &cfg);
        assert_eq!(sa.stride, sb.stride);
        let mut ab = sa;
        assert!(ab.merge(&sb));
        let mut ba = sb;
        assert!(ba.merge(&sa));
        assert_eq!(ab, ba, "merge must be commutative in bits");
        assert_eq!(ab.n_total, 80_000);
        // Identity on empties.
        let mut e = SampledProfile::collect(&[], &cfg);
        assert!(e.merge(&sa));
        assert_eq!(e, sa);
        // Stride mismatch is refused.
        let small = SampledProfile::collect(&repro_gen::uniform(1_000, 0.0, 1.0, 3), &cfg);
        let mut m = sa;
        assert!(!m.merge(&small));
        assert_eq!(m, sa, "refused merge must not mutate");
    }
}
