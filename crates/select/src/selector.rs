//! Selectors: map `(profile, tolerance)` to the cheapest acceptable
//! algorithm.

use crate::calibrate::CalibrationTable;
use crate::cost::CostModel;
use crate::profile::DataProfile;
use repro_fp::UNIT_ROUNDOFF;
use repro_sum::Algorithm;

/// How much run-to-run variability the application can tolerate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Tolerance {
    /// Absolute spread: the standard deviation of results across reduction
    /// orders must stay below this (the paper's Figure 12 thresholds
    /// `t = 5e-13 … 5e-14` are of this kind).
    AbsoluteSpread(f64),
    /// Spread relative to the magnitude of the result.
    RelativeSpread(f64),
    /// Bitwise reproducibility: only a reproducible operator will do.
    Bitwise,
}

/// A selection policy.
pub trait Selector {
    /// The cheapest algorithm expected to meet `tolerance` on data shaped
    /// like `profile`.
    fn choose(&self, profile: &DataProfile, tolerance: Tolerance) -> Algorithm;
}

/// Analytic selector: closed-form variability predictors per algorithm.
///
/// Predicted spread across reduction orders (absolute):
///
/// | algorithm | predictor | rationale |
/// |-----------|-----------|-----------|
/// | ST | `√n · u · Σ\|x\|` | random-walk roundoff accumulation |
/// | K / Neumaier | `2u · Σ\|x\|` | compensated bound, n-independent |
/// | CP | `n · u² · Σ\|x\|` | second-order residual only |
/// | PR | `0` | bitwise reproducible |
///
/// These are the statistical counterparts of the bounds in `repro-fp`; the
/// calibrated selector replaces them with measurements.
#[derive(Clone, Debug, Default)]
pub struct HeuristicSelector {
    /// Cost model used to order candidates (defaults to flop ratios).
    pub costs: CostModel,
}

/// Predicted absolute spread for one algorithm on one profile.
pub fn predicted_spread(alg: Algorithm, p: &DataProfile) -> f64 {
    let n = p.n.max(1) as f64;
    let a = p.abs_sum;
    match alg {
        Algorithm::Standard => n.sqrt() * UNIT_ROUNDOFF * a,
        Algorithm::Pairwise => n.log2().max(1.0).sqrt() * UNIT_ROUNDOFF * a,
        Algorithm::Kahan | Algorithm::Neumaier => 2.0 * UNIT_ROUNDOFF * a,
        Algorithm::Composite | Algorithm::DoubleDouble => n * UNIT_ROUNDOFF * UNIT_ROUNDOFF * a,
        Algorithm::Binned { .. } | Algorithm::Distill => 0.0,
    }
}

impl Selector for HeuristicSelector {
    fn choose(&self, profile: &DataProfile, tolerance: Tolerance) -> Algorithm {
        let budget = match tolerance {
            Tolerance::Bitwise => {
                return Algorithm::PR;
            }
            Tolerance::AbsoluteSpread(t) => t,
            Tolerance::RelativeSpread(r) => {
                let scale = profile.sum_estimate.abs();
                if scale == 0.0 {
                    // A zero (or fully cancelled) sum has no magnitude to be
                    // relative to: only bitwise reproducibility qualifies.
                    return Algorithm::PR;
                }
                r * scale
            }
        };
        for alg in self.costs.by_cost(&Algorithm::PAPER_SET) {
            if predicted_spread(alg, profile) <= budget {
                return alg;
            }
        }
        Algorithm::PR
    }
}

/// Empirical selector: nearest calibrated `(k, dr)` cell, cheapest
/// algorithm whose **measured** spread fits the budget (scaled by `n`
/// relative to the calibration size for the n-sensitive algorithms).
#[derive(Clone, Debug)]
pub struct CalibratedSelector {
    table: CalibrationTable,
    costs: CostModel,
}

impl CalibratedSelector {
    /// Wrap a calibration table with the default cost model.
    pub fn new(table: CalibrationTable) -> Self {
        Self {
            table,
            costs: CostModel::default(),
        }
    }

    /// Scale a calibrated spread from the calibration `n` to the profile's
    /// `n` (√n growth, per the random-walk model).
    fn rescale(&self, spread: f64, n: usize) -> f64 {
        let ratio = (n.max(1) as f64 / self.table.n.max(1) as f64).sqrt();
        spread * ratio
    }
}

impl Selector for CalibratedSelector {
    fn choose(&self, profile: &DataProfile, tolerance: Tolerance) -> Algorithm {
        let budget = match tolerance {
            Tolerance::Bitwise => return Algorithm::PR,
            Tolerance::AbsoluteSpread(t) => t,
            Tolerance::RelativeSpread(r) => {
                let scale = profile.sum_estimate.abs();
                if scale == 0.0 {
                    return Algorithm::PR;
                }
                r * scale
            }
        };
        let cell = self.table.nearest(profile.k, profile.dr_decades());
        let mut candidates: Vec<(Algorithm, f64)> = cell.spread.clone();
        candidates.sort_by(|a, b| self.costs.cost(a.0).total_cmp(&self.costs.cost(b.0)));
        for (alg, measured) in candidates {
            if self.rescale(measured, profile.n) <= budget {
                return alg;
            }
        }
        Algorithm::PR
    }
}

/// Empirical selector without a calibration table: estimate each
/// algorithm's spread by reducing a **subsample** of the data under a few
/// random shuffles, escalating until the measured spread fits the budget.
///
/// The middle ground between [`HeuristicSelector`] (model, free) and
/// full calibration (measured, expensive): cost is
/// `O(shuffles · subsample)` per choice, independent of `n`.
#[derive(Clone, Debug)]
pub struct SampledSelector {
    /// Values drawn from the data per probe (deterministic stride sample).
    pub subsample: usize,
    /// Shuffled reductions per algorithm probe.
    pub shuffles: u32,
    /// Probe RNG seed.
    pub seed: u64,
    costs: CostModel,
}

impl Default for SampledSelector {
    fn default() -> Self {
        Self {
            subsample: 2_048,
            shuffles: 8,
            seed: 0x5A3D,
            costs: CostModel::default(),
        }
    }
}

impl SampledSelector {
    /// Measured spread of `alg` over shuffled reductions of the subsample,
    /// rescaled from the subsample size to `n` (√ growth model).
    fn probe(&self, alg: Algorithm, sample: &[f64], n: usize) -> f64 {
        use repro_fp::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut work = sample.to_vec();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..self.shuffles.max(2) {
            rng.shuffle(&mut work);
            let r = alg.sum(&work);
            min = min.min(r);
            max = max.max(r);
        }
        let spread = max - min;
        let scale = (n.max(1) as f64 / sample.len().max(1) as f64).sqrt();
        spread * scale
    }
}

impl Selector for SampledSelector {
    fn choose(&self, profile: &DataProfile, tolerance: Tolerance) -> Algorithm {
        // The profile alone cannot carry the sample; selectors are given the
        // derived quantities only, so the sampled probe reconstructs a
        // surrogate workload with the profile's (n, k, dr) via the
        // generator — measuring on data *shaped like* the input.
        let budget = match tolerance {
            Tolerance::Bitwise => return Algorithm::PR,
            Tolerance::AbsoluteSpread(t) => t,
            Tolerance::RelativeSpread(r) => {
                let scale = profile.sum_estimate.abs();
                if scale == 0.0 {
                    return Algorithm::PR;
                }
                r * scale
            }
        };
        let n = profile.n.max(2);
        let m = self.subsample.min(n).max(2);
        let surrogate = repro_gen::grid_cell(
            m,
            if profile.k.is_finite() {
                profile.k.max(1.0)
            } else {
                f64::INFINITY
            },
            profile.dr_decades().max(0) as u32,
            self.seed,
            1e16,
        );
        // Rescale the surrogate to the data's magnitude so absolute spreads
        // are comparable.
        let surrogate_abs = repro_fp::exact_abs_sum(&surrogate);
        let factor = if surrogate_abs > 0.0 {
            profile.abs_sum / surrogate_abs
        } else {
            1.0
        };
        let scaled: Vec<f64> = surrogate.iter().map(|v| v * factor).collect();
        for alg in self.costs.by_cost(&Algorithm::PAPER_SET) {
            if alg.is_reproducible() || self.probe(alg, &scaled, n) <= budget {
                return alg;
            }
        }
        Algorithm::PR
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate, CalibrationConfig};
    use crate::profile::profile;

    #[test]
    fn bitwise_always_selects_pr() {
        let p = profile(&[1.0, 2.0]);
        assert_eq!(
            HeuristicSelector::default().choose(&p, Tolerance::Bitwise),
            Algorithm::PR
        );
    }

    #[test]
    fn loose_tolerance_selects_st_on_benign_data() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let p = profile(&values);
        let alg = HeuristicSelector::default().choose(&p, Tolerance::AbsoluteSpread(1e-6));
        assert_eq!(alg, Algorithm::Standard);
    }

    #[test]
    fn tightening_tolerance_escalates_monotonically() {
        let values = repro_gen::zero_sum_with_range(10_000, 16, 3);
        let p = profile(&values);
        let sel = HeuristicSelector::default();
        let mut last_rank = 0u8;
        for t in [1e-3, 1e-8, 1e-11, 1e-14, 1e-17, 0.0] {
            let alg = sel.choose(&p, Tolerance::AbsoluteSpread(t));
            assert!(
                alg.cost_rank() >= last_rank,
                "tolerance {t:e} de-escalated to {alg}"
            );
            last_rank = alg.cost_rank();
        }
        // The zero-tolerance end must be PR.
        assert_eq!(
            sel.choose(&p, Tolerance::AbsoluteSpread(0.0)),
            Algorithm::PR
        );
    }

    #[test]
    fn relative_tolerance_on_zero_sum_forces_pr() {
        let values = repro_gen::zero_sum_with_range(100, 8, 9);
        let p = profile(&values);
        let alg = HeuristicSelector::default().choose(&p, Tolerance::RelativeSpread(1e-6));
        assert_eq!(alg, Algorithm::PR);
    }

    #[test]
    fn calibrated_selector_is_cost_ordered_and_safe() {
        let table = calibrate(&CalibrationConfig {
            k_targets: vec![1.0, f64::INFINITY],
            dr_targets: vec![0, 16],
            n: 256,
            permutations: 6,
            algorithms: Algorithm::PAPER_SET.to_vec(),
            seed: 7,
        });
        let sel = CalibratedSelector::new(table);
        // Benign cell, generous budget: cheapest algorithm.
        let benign: Vec<f64> = (1..=256).map(|i| i as f64).collect();
        assert_eq!(
            sel.choose(&profile(&benign), Tolerance::AbsoluteSpread(1.0)),
            Algorithm::Standard
        );
        // Hostile cell, zero budget: PR.
        let hostile = repro_gen::zero_sum_with_range(256, 16, 1);
        assert_eq!(
            sel.choose(&profile(&hostile), Tolerance::AbsoluteSpread(0.0)),
            Algorithm::PR
        );
    }

    #[test]
    fn sampled_selector_matches_reality_on_the_extremes() {
        let sel = SampledSelector::default();
        // Benign: generous budget -> ST.
        let benign: Vec<f64> = (1..=4096).map(|i| i as f64).collect();
        assert_eq!(
            sel.choose(&profile(&benign), Tolerance::AbsoluteSpread(1.0)),
            Algorithm::Standard
        );
        // Hostile with a tiny budget -> escalates past ST.
        let hostile = repro_gen::zero_sum_with_range(4096, 24, 3);
        let choice = sel.choose(&profile(&hostile), Tolerance::AbsoluteSpread(1e-13));
        assert!(
            choice.cost_rank() > Algorithm::Standard.cost_rank(),
            "chose {choice}"
        );
        // Bitwise -> PR.
        assert_eq!(
            sel.choose(&profile(&hostile), Tolerance::Bitwise),
            Algorithm::PR
        );
    }

    #[test]
    fn sampled_selector_is_deterministic() {
        let sel = SampledSelector::default();
        let data = repro_gen::zero_sum_with_range(2048, 16, 5);
        let p = profile(&data);
        let a = sel.choose(&p, Tolerance::AbsoluteSpread(1e-12));
        let b = sel.choose(&p, Tolerance::AbsoluteSpread(1e-12));
        assert_eq!(a, b);
    }

    #[test]
    fn predicted_spread_orderings() {
        let values = repro_gen::zero_sum_with_range(4096, 8, 2);
        let p = profile(&values);
        let st = predicted_spread(Algorithm::Standard, &p);
        let k = predicted_spread(Algorithm::Kahan, &p);
        let cp = predicted_spread(Algorithm::Composite, &p);
        let pr = predicted_spread(Algorithm::PR, &p);
        assert!(st > k && k > cp && cp > pr);
        assert_eq!(pr, 0.0);
    }
}
