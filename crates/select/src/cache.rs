//! Decision caching: remember what the selector chose for a **workload
//! shape**, so repeated reductions over same-shaped data skip the selector
//! entirely.
//!
//! Selection is a pure function of the profile's coarse features — the
//! predictors move by decades, not percent — so two workloads whose
//! profiles land in the same [`Fingerprint`] buckets get the same
//! algorithm. The cache maps fingerprints to decisions under a small
//! mutex-protected map; hit/miss/insert/eviction counters publish to a
//! [`repro_obs::Registry`] so an always-on deployment can watch its own
//! hit rate.
//!
//! Caching never touches the numerics: a cached decision only chooses
//! *which* operator runs, and every operator is a deterministic function
//! of the input, so a hit is bitwise identical to the miss that populated
//! it (property-tested). The failure mode is a *stale* decision — a
//! fingerprint populated by data whose realized spread no longer matches
//! — and the realized-spread telemetry from
//! [`crate::AdaptiveReducer::reduce_telemetry`] closes that loop:
//! [`DecisionCache::invalidate_misprediction`] evicts the entry and
//! counts the misprediction, so the next same-shaped reduction re-selects.

use crate::profile::DataProfile;
use crate::selector::Tolerance;
use repro_fp::simd::{self, SimdTier};
use repro_sum::Algorithm;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The coarse shape of one selection problem: everything a decision
/// depends on, bucketed so that same-shaped workloads collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fingerprint {
    /// `floor(log2 n)` — the size octave.
    pub n_log2: u32,
    /// Condition decade: `floor(log10 k̂)` clamped to `0..=16`, with a
    /// hostile (`inf`/`NaN`) estimate pinned one past the top so "beyond
    /// measurable" is its own bucket.
    pub k_decade: i16,
    /// Dynamic range in 4-binade buckets (`dr_binades / 4`).
    pub dr_bucket: i32,
    /// The active SIMD dispatch tier (decisions may price the exact path
    /// per tier, and provenance differs).
    pub tier: SimdTier,
    /// Worker-thread topology of the shared runtime pool.
    pub workers: usize,
    /// The tolerance, exactly: `(kind, bits)` — bucketing the budget would
    /// let a loose request reuse a tight request's (costlier) decision or,
    /// worse, the reverse.
    pub tolerance: (u8, u64),
}

fn tolerance_key(t: Tolerance) -> (u8, u64) {
    match t {
        Tolerance::Bitwise => (0, 0),
        Tolerance::AbsoluteSpread(b) => (1, b.to_bits()),
        Tolerance::RelativeSpread(r) => (2, r.to_bits()),
    }
}

impl Fingerprint {
    /// Fingerprint a profile under a tolerance, stamping the current SIMD
    /// tier and pool topology.
    pub fn of(profile: &DataProfile, tolerance: Tolerance) -> Self {
        let k_decade = if profile.k.is_finite() {
            (profile.k.max(1.0).log10().floor() as i16).clamp(0, 16)
        } else {
            17
        };
        Self {
            n_log2: if profile.n == 0 { 0 } else { profile.n.ilog2() },
            k_decade,
            dr_bucket: profile.dr_binades / 4,
            tier: simd::active_tier(),
            workers: repro_runtime::Runtime::global().workers(),
            tolerance: tolerance_key(tolerance),
        }
    }
}

/// Monotonic cache traffic counters (a snapshot; see
/// [`DecisionCache::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a decision.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Decisions stored.
    pub inserts: u64,
    /// Entries evicted because realized-spread telemetry contradicted the
    /// cached prediction.
    pub mispredictions: u64,
}

/// A shared fingerprint → [`Algorithm`] map with traffic counters.
///
/// Thread-safe; a single instance is meant to be shared across all
/// reductions in a process (or one per tolerance regime — the tolerance is
/// part of the key either way).
#[derive(Debug, Default)]
pub struct DecisionCache {
    map: Mutex<BTreeMap<Fingerprint, Algorithm>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    mispredictions: AtomicU64,
    published: Mutex<CacheCounters>,
}

impl DecisionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn map(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, Algorithm>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up a decision, counting the hit or miss.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<Algorithm> {
        let found = self.map().get(fp).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a decision.
    pub fn insert(&self, fp: Fingerprint, alg: Algorithm) {
        self.map().insert(fp, alg);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Evict a fingerprint whose cached decision the realized-spread
    /// telemetry has contradicted (measured spread over budget). Returns
    /// whether an entry was actually present. The next same-shaped
    /// reduction misses and re-selects from fresh evidence.
    pub fn invalidate_misprediction(&self, fp: &Fingerprint) -> bool {
        let removed = self.map().remove(fp).is_some();
        if removed {
            self.mispredictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached decisions (counters keep counting).
    pub fn clear(&self) {
        self.map().clear();
    }

    /// Current traffic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            mispredictions: self.mispredictions.load(Ordering::Relaxed),
        }
    }

    /// Publish traffic to a metrics registry: counter deltas since the
    /// last publish land on `select.cache.hit`, `select.cache.miss`,
    /// `select.cache.insert`, and `select.cache.misprediction`; the
    /// current size lands on the `select.cache.size` gauge. Safe to call
    /// periodically — the registry counters stay equal to this cache's
    /// lifetime totals.
    pub fn publish(&self, registry: &repro_obs::Registry) {
        let now = self.counters();
        let mut last = self
            .published
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        registry.counter_add("select.cache.hit", now.hits - last.hits);
        registry.counter_add("select.cache.miss", now.misses - last.misses);
        registry.counter_add("select.cache.insert", now.inserts - last.inserts);
        registry.counter_add(
            "select.cache.misprediction",
            now.mispredictions - last.mispredictions,
        );
        registry.gauge_set("select.cache.size", self.len() as f64);
        *last = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;

    #[test]
    fn same_shape_same_fingerprint_different_shape_different() {
        // One binade of values: the dynamic range (and with it the bucket)
        // cannot wobble with the seed, only the shape features we expect
        // to be stable.
        let a = profile(&repro_gen::uniform(10_000, 0.5, 1.0, 1));
        let b = profile(&repro_gen::uniform(10_000, 0.5, 1.0, 2));
        let tol = Tolerance::AbsoluteSpread(1e-9);
        assert_eq!(Fingerprint::of(&a, tol), Fingerprint::of(&b, tol));
        // A different size octave separates.
        let big = profile(&repro_gen::uniform(40_000, 0.5, 1.0, 1));
        assert_ne!(Fingerprint::of(&a, tol), Fingerprint::of(&big, tol));
        // A different tolerance separates even on identical data.
        assert_ne!(
            Fingerprint::of(&a, tol),
            Fingerprint::of(&a, Tolerance::AbsoluteSpread(1e-12))
        );
        assert_ne!(
            Fingerprint::of(&a, Tolerance::Bitwise),
            Fingerprint::of(&a, Tolerance::RelativeSpread(1e-9))
        );
        // A hostile condition estimate gets its own bucket past the decades.
        let hostile = profile(&repro_gen::zero_sum_with_range(4_096, 8, 3));
        let fp = Fingerprint::of(&hostile, tol);
        assert!(
            fp.k_decade >= 1,
            "zero-sum data must not look benign: {fp:?}"
        );
    }

    #[test]
    fn traffic_counters_track_lookups_inserts_and_evictions() {
        let cache = DecisionCache::new();
        let p = profile(&repro_gen::uniform(1_000, 0.0, 1.0, 5));
        let fp = Fingerprint::of(&p, Tolerance::Bitwise);
        assert_eq!(cache.lookup(&fp), None);
        cache.insert(fp, Algorithm::PR);
        assert_eq!(cache.lookup(&fp), Some(Algorithm::PR));
        assert!(cache.invalidate_misprediction(&fp));
        assert!(!cache.invalidate_misprediction(&fp), "double evict");
        assert_eq!(cache.lookup(&fp), None);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 2,
                inserts: 1,
                mispredictions: 1
            }
        );
    }

    #[test]
    fn publish_is_delta_correct_across_calls() {
        let cache = DecisionCache::new();
        let registry = repro_obs::Registry::new();
        let p = profile(&[1.0, 2.0, 3.0]);
        let fp = Fingerprint::of(&p, Tolerance::AbsoluteSpread(1.0));
        cache.lookup(&fp);
        cache.publish(&registry);
        cache.insert(fp, Algorithm::Standard);
        cache.lookup(&fp);
        cache.lookup(&fp);
        cache.publish(&registry);
        // Publishing twice must not double-count the first interval.
        cache.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["select.cache.hit"], 2);
        assert_eq!(snap.counters["select.cache.miss"], 1);
        assert_eq!(snap.counters["select.cache.insert"], 1);
        assert_eq!(snap.gauges["select.cache.size"], 1.0);
    }
}
