//! Empirical calibration: replay the paper's grid methodology (Figure 8) to
//! measure, per `(k, dr)` cell, how much each algorithm's result actually
//! varies across reduction trees — then let the selector interpolate that
//! table at run time.

use repro_fp::{abs_error_vs, exact_sum_acc};
use repro_gen::grid_cell;
use repro_stats::population_stddev;
use repro_sum::Algorithm;
use repro_tree::permute::PermutationStudy;
use repro_tree::{reduce, TreeShape};

/// What to calibrate over.
#[derive(Clone, Debug)]
pub struct CalibrationConfig {
    /// Condition-number decades to probe (log10 k values; `f64::INFINITY`
    /// allowed for the zero-sum column).
    pub k_targets: Vec<f64>,
    /// Dynamic ranges (decimal decades) to probe.
    pub dr_targets: Vec<u32>,
    /// Values per generated cell set.
    pub n: usize,
    /// Leaf permutations per cell and algorithm.
    pub permutations: u64,
    /// Algorithms to calibrate (cheapest-first recommended).
    pub algorithms: Vec<Algorithm>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            k_targets: vec![1.0, 1e2, 1e4, 1e8, 1e12, f64::INFINITY],
            dr_targets: vec![0, 8, 16, 24, 32],
            n: 4096,
            permutations: 30,
            algorithms: Algorithm::PAPER_SET.to_vec(),
            seed: 0xC0FFEE,
        }
    }
}

/// One calibrated cell: targets plus the measured variability (stddev of
/// absolute error across permuted balanced trees) per algorithm.
#[derive(Clone, Debug)]
pub struct CalCell {
    /// Condition-number target of the generated set.
    pub k: f64,
    /// Dynamic-range target (decades).
    pub dr: u32,
    /// `(algorithm, error stddev)` pairs, in the config's algorithm order.
    pub spread: Vec<(Algorithm, f64)>,
}

/// A measured `(k, dr) → variability` table.
#[derive(Clone, Debug)]
pub struct CalibrationTable {
    /// All calibrated cells.
    pub cells: Vec<CalCell>,
    /// The `n` the table was calibrated at (variability scales with n; the
    /// selector compensates when profiles differ wildly).
    pub n: usize,
}

impl CalibrationTable {
    /// Serialize to CSV (`n,k,dr,algorithm,spread` rows) so an expensive
    /// calibration can be reused across runs without a serde dependency.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("n,k,dr,algorithm,spread\n");
        for cell in &self.cells {
            for (alg, spread) in &cell.spread {
                out.push_str(&format!(
                    "{},{},{},{},{:e}\n",
                    self.n,
                    if cell.k.is_infinite() {
                        "inf".into()
                    } else {
                        format!("{:e}", cell.k)
                    },
                    cell.dr,
                    alg,
                    spread
                ));
            }
        }
        out
    }

    /// Parse a table back from [`CalibrationTable::to_csv`] output.
    ///
    /// Returns `None` on any malformed row (calibration data is generated,
    /// not user-authored, so malformation means corruption).
    pub fn from_csv(csv: &str) -> Option<Self> {
        let mut cells: Vec<CalCell> = Vec::new();
        let mut n = 0usize;
        for line in csv.lines().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 5 {
                return None;
            }
            n = parts[0].parse().ok()?;
            let k: f64 = if parts[1] == "inf" {
                f64::INFINITY
            } else {
                parts[1].parse().ok()?
            };
            let dr: u32 = parts[2].parse().ok()?;
            let alg = parse_algorithm(parts[3])?;
            let spread: f64 = parts[4].parse().ok()?;
            match cells.iter_mut().find(|c| c.k == k && c.dr == dr) {
                Some(cell) => cell.spread.push((alg, spread)),
                None => cells.push(CalCell {
                    k,
                    dr,
                    spread: vec![(alg, spread)],
                }),
            }
        }
        if cells.is_empty() {
            return None;
        }
        Some(Self { cells, n })
    }

    /// The cell nearest to `(k, dr)` in `(log10 k, dr)` space.
    pub fn nearest(&self, k: f64, dr_decades: i32) -> &CalCell {
        let lk = log10_clamped(k);
        self.cells
            .iter()
            .min_by(|a, b| {
                let da = cell_distance(lk, dr_decades, a);
                let db = cell_distance(lk, dr_decades, b);
                da.total_cmp(&db)
            })
            .expect("calibration table is never empty")
    }
}

/// Parse an algorithm label as written by `Algorithm`'s `Display` impl.
fn parse_algorithm(s: &str) -> Option<Algorithm> {
    match s {
        "ST" => Some(Algorithm::Standard),
        "K" => Some(Algorithm::Kahan),
        "N" => Some(Algorithm::Neumaier),
        "PW" => Some(Algorithm::Pairwise),
        "CP" => Some(Algorithm::Composite),
        "DD" => Some(Algorithm::DoubleDouble),
        "DS" => Some(Algorithm::Distill),
        _ => {
            let fold = s.strip_prefix("PR(fold=")?.strip_suffix(')')?;
            Some(Algorithm::Binned {
                fold: fold.parse().ok()?,
            })
        }
    }
}

fn log10_clamped(k: f64) -> f64 {
    if k.is_infinite() {
        20.0 // beyond every finite decade the table probes
    } else {
        k.max(1.0).log10()
    }
}

fn cell_distance(lk: f64, dr: i32, cell: &CalCell) -> f64 {
    let dk = lk - log10_clamped(cell.k);
    // One decade of k ≈ four decades of dr in influence (the paper finds k
    // dominates dr), so weight dr down.
    let ddr = (dr - cell.dr as i32) as f64 / 4.0;
    dk * dk + ddr * ddr
}

/// A calibration sweep failure, pinned to the grid cell that caused it.
///
/// Cell workers run generated data through every operator; a failure in
/// one cell (a generator edge case, an operator panic) used to take the
/// whole sweep down as a cascade of worker panics with no indication of
/// *which* `(n, k, dr)` combination was responsible. Now the first failing
/// cell is reported with its coordinates so the sweep is diagnosable and
/// the caller decides whether to retry, shrink the grid, or give up.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationError {
    /// Values per cell the sweep was configured with.
    pub n: usize,
    /// Condition-number target of the failing cell.
    pub k: f64,
    /// Dynamic-range target (decades) of the failing cell.
    pub dr: u32,
    /// What went wrong (a recovered panic message, or a sweep-level
    /// precondition).
    pub message: String,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "calibration failed at cell (n={}, k={:e}, dr={}): {}",
            self.n, self.k, self.dr, self.message
        )
    }
}

impl std::error::Error for CalibrationError {}

/// Render a recovered panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell worker panicked (non-string payload)".to_string()
    }
}

/// Run the calibration sweep: for every `(k, dr)` cell, generate a set,
/// reduce it over permuted balanced trees with every algorithm, and record
/// the stddev of the absolute errors. Cells are independent and run on a
/// small scoped thread pool (paper-scale grids are minutes of CPU; the
/// parallelism is free determinism-wise because every cell is seeded).
///
/// A failing cell surfaces as a [`CalibrationError`] naming its
/// `(n, k, dr)` coordinates; the other workers finish their cells normally
/// instead of cascading.
pub fn try_calibrate(cfg: &CalibrationConfig) -> Result<CalibrationTable, CalibrationError> {
    // The "beyond every finite row" scale for the zero-sum column: one
    // decade past the largest finite k probed.
    let inf_abs = cfg
        .k_targets
        .iter()
        .copied()
        .filter(|k| k.is_finite())
        .fold(1.0f64, f64::max)
        * 10.0;
    let coords: Vec<(usize, f64, usize, u32)> = cfg
        .k_targets
        .iter()
        .enumerate()
        .flat_map(|(ki, &k)| {
            cfg.dr_targets
                .iter()
                .enumerate()
                .map(move |(di, &dr)| (ki, k, di, dr))
        })
        .collect();
    if coords.is_empty() {
        return Err(CalibrationError {
            n: cfg.n,
            k: f64::NAN,
            dr: 0,
            message: "empty calibration grid (no k or dr targets)".into(),
        });
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(coords.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut cells: Vec<Option<Result<CalCell, CalibrationError>>> = vec![None; coords.len()];
    let cell_slots: Vec<std::sync::Mutex<&mut Option<Result<CalCell, CalibrationError>>>> =
        cells.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(ki, k, di, dr)) = coords.get(i) else {
                    return;
                };
                // A panic inside one cell (generator edge case, operator
                // bug) must not poison the scope and mask the culprit:
                // catch it, convert to a coordinate-tagged error, keep
                // working the queue.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    calibrate_cell(cfg, ki, k, di, dr, inf_abs)
                }))
                .map_err(|payload| CalibrationError {
                    n: cfg.n,
                    k,
                    dr,
                    message: panic_message(payload),
                });
                // A neighbour's panic can still have poisoned this slot's
                // mutex on exotic interleavings; the data is ours alone,
                // so recover the guard instead of cascading.
                **cell_slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
            });
        }
    });
    drop(cell_slots);
    let mut done = Vec::with_capacity(coords.len());
    for (slot, &(_, k, _, dr)) in cells.into_iter().zip(&coords) {
        match slot {
            Some(Ok(cell)) => done.push(cell),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(CalibrationError {
                    n: cfg.n,
                    k,
                    dr,
                    message: "cell worker exited without reporting a result".into(),
                })
            }
        }
    }
    Ok(CalibrationTable {
        cells: done,
        n: cfg.n,
    })
}

/// [`try_calibrate`], panicking with the coordinate-tagged diagnostic on
/// failure. Kept for callers treating calibration failure as fatal (the
/// historical behavior, minus the cascade of opaque worker panics).
pub fn calibrate(cfg: &CalibrationConfig) -> CalibrationTable {
    match try_calibrate(cfg) {
        Ok(table) => table,
        Err(e) => panic!("{e}"),
    }
}

/// Measure one `(k, dr)` cell.
fn calibrate_cell(
    cfg: &CalibrationConfig,
    ki: usize,
    k: f64,
    di: usize,
    dr: u32,
    inf_abs: f64,
) -> CalCell {
    let seed = cfg
        .seed
        .wrapping_add((ki as u64) << 32)
        .wrapping_add(di as u64);
    let values = grid_cell(cfg.n, k, dr, seed, inf_abs);
    let exact = exact_sum_acc(&values);
    let mut spread = Vec::with_capacity(cfg.algorithms.len());
    for &alg in &cfg.algorithms {
        let mut errors = Vec::with_capacity(cfg.permutations as usize);
        PermutationStudy::new(&values, cfg.permutations, seed ^ 0xABCD).for_each(|_, permuted| {
            let sum = reduce(permuted, TreeShape::Balanced, alg);
            errors.push(abs_error_vs(&exact, sum));
        });
        spread.push((alg, population_stddev(&errors)));
    }
    CalCell { k, dr, spread }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CalibrationConfig {
        CalibrationConfig {
            k_targets: vec![1.0, 1e6, f64::INFINITY],
            dr_targets: vec![0, 16],
            n: 512,
            permutations: 8,
            algorithms: Algorithm::PAPER_SET.to_vec(),
            seed: 42,
        }
    }

    #[test]
    fn calibration_covers_every_cell() {
        let table = calibrate(&small_cfg());
        assert_eq!(table.cells.len(), 6);
        assert!(table
            .cells
            .iter()
            .all(|c| c.spread.len() == Algorithm::PAPER_SET.len()));
    }

    #[test]
    fn pr_column_is_exactly_zero_spread() {
        let table = calibrate(&small_cfg());
        for cell in &table.cells {
            let (_, pr_spread) = cell
                .spread
                .iter()
                .find(|(a, _)| a.is_reproducible())
                .unwrap();
            assert_eq!(
                *pr_spread, 0.0,
                "PR varied in cell k={:e} dr={}",
                cell.k, cell.dr
            );
        }
    }

    #[test]
    fn hostile_cells_show_more_st_spread_than_benign_cells() {
        let table = calibrate(&small_cfg());
        let st = |cell: &CalCell| cell.spread[0].1;
        let benign = table
            .cells
            .iter()
            .find(|c| c.k == 1.0 && c.dr == 0)
            .unwrap();
        let hostile = table
            .cells
            .iter()
            .find(|c| c.k.is_infinite() && c.dr == 16)
            .unwrap();
        assert!(
            st(hostile) > st(benign),
            "hostile {:e} !> benign {:e}",
            st(hostile),
            st(benign)
        );
    }

    #[test]
    fn csv_round_trip_preserves_the_table() {
        let table = calibrate(&small_cfg());
        let csv = table.to_csv();
        let back = CalibrationTable::from_csv(&csv).expect("parse back");
        assert_eq!(back.n, table.n);
        assert_eq!(back.cells.len(), table.cells.len());
        for (a, b) in table.cells.iter().zip(back.cells.iter()) {
            assert_eq!(a.k.to_bits(), b.k.to_bits());
            assert_eq!(a.dr, b.dr);
            assert_eq!(a.spread.len(), b.spread.len());
            for ((alg_a, s_a), (alg_b, s_b)) in a.spread.iter().zip(b.spread.iter()) {
                assert_eq!(alg_a, alg_b);
                assert_eq!(s_a.to_bits(), s_b.to_bits(), "spread must survive bitwise");
            }
        }
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(CalibrationTable::from_csv("").is_none());
        assert!(CalibrationTable::from_csv("n,k,dr,algorithm,spread\n1,2\n").is_none());
        assert!(
            CalibrationTable::from_csv("n,k,dr,algorithm,spread\n64,1,0,BOGUS,1e-3\n").is_none()
        );
    }

    #[test]
    fn try_calibrate_matches_calibrate_on_a_healthy_grid() {
        let table = try_calibrate(&small_cfg()).expect("healthy grid");
        let direct = calibrate(&small_cfg());
        assert_eq!(table.n, direct.n);
        assert_eq!(table.to_csv(), direct.to_csv());
    }

    #[test]
    fn failing_cell_surfaces_coordinates_not_a_panic_cascade() {
        // n = 0 makes the generator's rescale factor non-finite, so every
        // cell worker panics internally. The sweep must convert that into
        // one coordinate-tagged error instead of crossing the thread scope
        // as a panic.
        let cfg = CalibrationConfig {
            n: 0,
            ..small_cfg()
        };
        let err = try_calibrate(&cfg).expect_err("n = 0 cannot calibrate");
        assert_eq!(err.n, 0);
        assert!(
            cfg.k_targets.contains(&err.k) || err.k.is_infinite(),
            "error names a grid cell: {err:?}"
        );
        assert!(cfg.dr_targets.contains(&err.dr), "{err:?}");
        let text = err.to_string();
        assert!(text.contains("n=0"), "{text}");
        assert!(text.contains("dr="), "{text}");
    }

    #[test]
    fn empty_grid_is_an_error_not_a_panic() {
        let cfg = CalibrationConfig {
            k_targets: vec![],
            ..small_cfg()
        };
        let err = try_calibrate(&cfg).expect_err("nothing to calibrate");
        assert!(err.to_string().contains("empty calibration grid"), "{err}");
    }

    #[test]
    fn calibrate_panics_with_the_tagged_diagnostic() {
        let cfg = CalibrationConfig {
            n: 0,
            ..small_cfg()
        };
        let panic = std::panic::catch_unwind(|| calibrate(&cfg)).expect_err("must panic");
        let msg = panic_message(panic);
        assert!(msg.contains("calibration failed at cell"), "{msg}");
    }

    #[test]
    fn nearest_cell_lookup() {
        let table = calibrate(&small_cfg());
        let c = table.nearest(2.0, 0);
        assert_eq!(c.k, 1.0);
        let c = table.nearest(1e7, 14);
        assert_eq!(c.k, 1e6);
        assert_eq!(c.dr, 16);
        let c = table.nearest(f64::INFINITY, 32);
        assert!(c.k.is_infinite());
    }
}
