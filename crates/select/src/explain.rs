//! Selection transparency: a structured, human-readable account of *why*
//! the heuristic selector picked the operator it picked.
//!
//! Runtime selection only earns trust if its decisions can be audited; an
//! [`Explanation`] records the tolerance budget, every candidate's
//! predicted spread and relative cost, and which constraint eliminated the
//! cheaper candidates. The CLI's `profile` command and the examples render
//! these; tests assert the explanation is *faithful* (re-running the
//! selector reproduces the explained choice).

use crate::cost::CostModel;
use crate::profile::DataProfile;
use crate::selector::{predicted_spread, Tolerance};
use repro_sum::Algorithm;

/// One candidate's audit row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateVerdict {
    /// The algorithm considered.
    pub algorithm: Algorithm,
    /// Predicted absolute spread across reduction orders on this profile.
    pub predicted_spread: f64,
    /// Relative cost (1.0 = recursive summation).
    pub relative_cost: f64,
    /// Whether the predicted spread fit the tolerance budget.
    pub fits: bool,
}

/// A faithful record of one selection decision.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The tolerance requested.
    pub tolerance: Tolerance,
    /// The absolute budget the tolerance resolved to (`None` for bitwise,
    /// which short-circuits candidate comparison).
    pub budget: Option<f64>,
    /// Candidates in the order the selector considered them (cheapest
    /// first); the chosen one is the first with `fits == true`.
    pub candidates: Vec<CandidateVerdict>,
    /// The decision.
    pub chosen: Algorithm,
    /// Which cost numbers ranked the candidates
    /// ([`crate::cost::CostSource::label`]): the calibrated baseline, the
    /// static flop-ratio fallback, or a live measurement.
    pub cost_source: String,
}

impl Explanation {
    /// Render as an aligned ASCII audit trail.
    pub fn render(&self) -> String {
        let mut out = format!("tolerance: {:?}\n", self.tolerance);
        match self.budget {
            Some(b) => out.push_str(&format!("budget (absolute spread): {b:e}\n")),
            None => out.push_str("budget: bitwise (only reproducible operators qualify)\n"),
        }
        out.push_str(&format!("cost model: {}\n", self.cost_source));
        for c in &self.candidates {
            out.push_str(&format!(
                "  {:<12} cost {:>5.1}x  predicted spread {:>12.3e}  {}\n",
                c.algorithm.to_string(),
                c.relative_cost,
                c.predicted_spread,
                if c.algorithm == self.chosen {
                    "<- CHOSEN (cheapest that fits)"
                } else if c.fits {
                    "fits (but costlier)"
                } else {
                    "exceeds budget"
                },
            ));
        }
        out.push_str(&format!("chosen: {}\n", self.chosen));
        out
    }
}

/// Explain a heuristic selection: same decision procedure as
/// [`crate::selector::Selector::choose`] on the
/// [`crate::selector::HeuristicSelector`], with every intermediate
/// recorded.
pub fn explain(profile: &DataProfile, tolerance: Tolerance) -> Explanation {
    let costs = CostModel::default();
    let budget = match tolerance {
        Tolerance::Bitwise => None,
        Tolerance::AbsoluteSpread(t) => Some(t),
        Tolerance::RelativeSpread(r) => {
            let scale = profile.sum_estimate.abs();
            if scale == 0.0 {
                None
            } else {
                Some(r * scale)
            }
        }
    };
    let mut candidates = Vec::new();
    let mut chosen = None;
    for alg in costs.by_cost(&Algorithm::PAPER_SET) {
        let spread = predicted_spread(alg, profile);
        let fits = match budget {
            Some(b) => spread <= b,
            None => alg.is_reproducible(),
        };
        if fits && chosen.is_none() {
            chosen = Some(alg);
        }
        candidates.push(CandidateVerdict {
            algorithm: alg,
            predicted_spread: spread,
            relative_cost: costs.cost(alg),
            fits,
        });
    }
    Explanation {
        tolerance,
        budget,
        candidates,
        chosen: chosen.unwrap_or(Algorithm::PR),
        cost_source: costs.source().label(),
    }
}

/// Emit one selection as a structured `decision` event: the input profile
/// (the estimable quantities the choice was based on), the resolved
/// budget, every candidate's predicted spread / relative cost / verdict
/// (cheapest first, keyed by the algorithm's abbreviation), and the chosen
/// algorithm. One event per selector invocation — the machine-readable
/// counterpart of [`Explanation::render`].
pub fn record_decision(
    scope: &mut repro_obs::Scope,
    profile: &DataProfile,
    explanation: &Explanation,
) {
    record_decision_with_spread(scope, profile, explanation, None);
}

/// [`record_decision`] with an optional **realized** spread appended: the
/// measured run-to-run variability of the chosen operator on this very
/// input (see [`crate::AdaptiveReducer::reduce_telemetry`]). Pairing the
/// prediction and the measurement in one record is what makes calibration
/// drift observable: a selector whose `{alg}_spread` predictions
/// systematically under- or over-shoot `realized_spread` needs
/// recalibration. `None` omits the field, leaving the event bytes
/// identical to [`record_decision`]'s.
pub fn record_decision_with_spread(
    scope: &mut repro_obs::Scope,
    profile: &DataProfile,
    explanation: &Explanation,
    realized_spread: Option<f64>,
) {
    use repro_obs::f;
    if !scope.enabled() {
        return;
    }
    let mut fields = vec![
        f("n", profile.n),
        f("k", profile.k),
        f("dr_binades", profile.dr_binades),
        f("max_abs", profile.max_abs),
        f("abs_sum", profile.abs_sum),
        f("sum_estimate", profile.sum_estimate),
        f("tolerance", format!("{:?}", explanation.tolerance)),
        match explanation.budget {
            Some(b) => f("budget", b),
            None => f("budget", "bitwise"),
        },
    ];
    for c in &explanation.candidates {
        let key = c.algorithm.abbrev();
        fields.push(f(&format!("{key}_spread"), c.predicted_spread));
        fields.push(f(&format!("{key}_cost"), c.relative_cost));
        fields.push(f(&format!("{key}_fits"), c.fits));
    }
    fields.push(f("cost_source", explanation.cost_source.as_str()));
    fields.push(f("chosen", explanation.chosen.abbrev()));
    if let Some(realized) = realized_spread {
        fields.push(f("realized_spread", realized));
    }
    scope.event("decision", fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use crate::selector::{HeuristicSelector, Selector};

    fn check_faithful(values: &[f64], tol: Tolerance) -> Explanation {
        let p = profile(values);
        let e = explain(&p, tol);
        let actual = HeuristicSelector::default().choose(&p, tol);
        assert_eq!(e.chosen, actual, "explanation disagrees with selector");
        e
    }

    #[test]
    fn explanation_is_faithful_across_regimes() {
        let benign: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let hostile = [3.14e16, 1.59, -3.14e16, -1.59];
        for tol in [
            Tolerance::AbsoluteSpread(1.0),
            Tolerance::AbsoluteSpread(1e-12),
            Tolerance::AbsoluteSpread(0.0),
            Tolerance::RelativeSpread(1e-9),
            Tolerance::Bitwise,
        ] {
            check_faithful(&benign, tol);
            check_faithful(&hostile, tol);
        }
    }

    #[test]
    fn loose_budget_explains_cheapest_choice() {
        let e = check_faithful(&[1.0, 2.0, 3.0], Tolerance::AbsoluteSpread(1.0));
        assert_eq!(e.chosen, Algorithm::Standard);
        assert!(e.candidates[0].fits);
        assert_eq!(e.candidates[0].algorithm, Algorithm::Standard);
    }

    #[test]
    fn zero_budget_explains_escalation_to_pr() {
        let e = check_faithful(&[1.0, 1e16, -1e16], Tolerance::AbsoluteSpread(0.0));
        assert_eq!(e.chosen, Algorithm::PR);
        // Every non-reproducible candidate is marked as exceeding budget.
        for c in &e.candidates {
            assert_eq!(c.fits, c.predicted_spread == 0.0, "{:?}", c.algorithm);
        }
    }

    #[test]
    fn bitwise_explanation_has_no_budget() {
        let e = check_faithful(&[2.0, 4.0], Tolerance::Bitwise);
        assert_eq!(e.budget, None);
        assert!(e.chosen.is_reproducible());
    }

    #[test]
    fn render_contains_the_decision_line() {
        let e = check_faithful(&[1.0, 2.0], Tolerance::AbsoluteSpread(1e-30));
        let text = e.render();
        assert!(text.contains("CHOSEN"), "{text}");
        assert!(text.contains(&e.chosen.to_string()), "{text}");
        assert!(text.contains("exceeds budget"), "{text}");
    }

    #[test]
    fn decision_record_carries_profile_candidates_and_choice() {
        let values = [3.14e16, 1.59, -3.14e16, -1.59];
        let p = profile(&values);
        let e = explain(&p, Tolerance::AbsoluteSpread(1e-12));
        let (trace, sink) = repro_obs::Trace::to_memory();
        let mut scope = trace.scope("select");
        record_decision(&mut scope, &p, &e);
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        let json = events[0].to_json();
        let parsed = repro_obs::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("decision"));
        assert_eq!(parsed.get("n").unwrap().as_num(), Some(4.0));
        assert_eq!(
            parsed.get("chosen").unwrap().as_str(),
            Some(e.chosen.abbrev())
        );
        // The record names the cost numbers that ranked the candidates.
        assert_eq!(
            parsed.get("cost_source").unwrap().as_str(),
            Some(e.cost_source.as_str())
        );
        assert!(
            e.cost_source.contains("BENCH") || e.cost_source == "static-flops",
            "{}",
            e.cost_source
        );
        // Every candidate appears with spread, cost, and verdict.
        for c in &e.candidates {
            let key = c.algorithm.abbrev();
            assert!(parsed.get(&format!("{key}_spread")).is_some(), "{json}");
            assert!(parsed.get(&format!("{key}_cost")).is_some(), "{json}");
            assert!(parsed.get(&format!("{key}_fits")).is_some(), "{json}");
        }
    }

    #[test]
    fn candidates_are_ordered_by_cost() {
        let e = check_faithful(&[1.0; 64], Tolerance::AbsoluteSpread(1e-9));
        let costs: Vec<f64> = e.candidates.iter().map(|c| c.relative_cost).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
    }
}
