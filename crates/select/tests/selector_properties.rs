//! Property tests for the selection machinery: the selector's promises must
//! hold over arbitrary profiles and tolerances, not just the grid cells it
//! was designed around.

use proptest::prelude::*;
use repro_select::selector::predicted_spread;
use repro_select::{profile, HeuristicSelector, Selector, SubtreeAdaptive, Tolerance};
use repro_sum::Algorithm;

fn workload() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        // All positive (benign).
        prop::collection::vec(1e-3f64..1e3, 2..300),
        // Mixed signs, wide exponents.
        prop::collection::vec(
            ((-80.0f64..80.0), any::<bool>()).prop_map(|(e, neg)| {
                let v = e.exp2();
                if neg {
                    -v
                } else {
                    v
                }
            }),
            2..300
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chosen algorithm's *predicted* spread always fits the absolute
    /// budget (that is the selector's contract with its model).
    #[test]
    fn choice_satisfies_the_model(values in workload(), t_exp in -20i32..0) {
        let t = 10f64.powi(t_exp);
        let p = profile(&values);
        let alg = HeuristicSelector::default().choose(&p, Tolerance::AbsoluteSpread(t));
        prop_assert!(predicted_spread(alg, &p) <= t || alg == Algorithm::PR,
            "{alg} predicted {:e} > budget {:e}", predicted_spread(alg, &p), t);
    }

    /// No cheaper algorithm than the chosen one would also satisfy the
    /// model (the "cheapest acceptable" property). "Cheaper" is the
    /// calibrated cost model's verdict, not the static `cost_rank` ladder:
    /// the measured baseline prices CP under K, and the selector must be
    /// faithful to the prices it actually ranks by.
    #[test]
    fn choice_is_cheapest_acceptable(values in workload(), t_exp in -20i32..0) {
        let t = 10f64.powi(t_exp);
        let p = profile(&values);
        let sel = HeuristicSelector::default();
        let costs = repro_select::CostModel::default();
        let alg = sel.choose(&p, Tolerance::AbsoluteSpread(t));
        for candidate in Algorithm::PAPER_SET {
            if costs.cost(candidate) < costs.cost(alg) {
                prop_assert!(predicted_spread(candidate, &p) > t,
                    "{candidate} (cheaper than {alg}) also fits budget {:e}", t);
            }
        }
    }

    /// Tolerance monotonicity: loosening the budget never escalates.
    #[test]
    fn looser_budgets_never_escalate(values in workload(), a in -20i32..0, b in -20i32..0) {
        let (lo, hi) = (a.min(b), a.max(b));
        let p = profile(&values);
        let sel = HeuristicSelector::default();
        let tight = sel.choose(&p, Tolerance::AbsoluteSpread(10f64.powi(lo)));
        let loose = sel.choose(&p, Tolerance::AbsoluteSpread(10f64.powi(hi)));
        prop_assert!(loose.cost_rank() <= tight.cost_rank(),
            "loose budget chose {loose}, tight chose {tight}");
    }

    /// Bitwise tolerance always lands on a reproducible operator, and the
    /// reduction result is then permutation-invariant in fact.
    #[test]
    fn bitwise_choice_is_actually_bitwise(mut values in workload(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let reducer = repro_select::AdaptiveReducer::heuristic(Tolerance::Bitwise);
        let (alg, _) = reducer.choose(&values);
        prop_assert!(alg.is_reproducible());
        let reference = reducer.reduce(&values).sum;
        let mut rng = StdRng::seed_from_u64(seed);
        values.shuffle(&mut rng);
        prop_assert_eq!(reducer.reduce(&values).sum.to_bits(), reference.to_bits());
    }

    /// Subtree adaptivity preserves the error budget on arbitrary data.
    #[test]
    fn subtree_reduction_meets_budget(values in workload(), t_exp in -14i32..-4) {
        let t = 10f64.powi(t_exp);
        // Scale the budget with the data so it is achievable at all: add
        // the theoretical floor (CP-level) to the requested tolerance.
        let abs = repro_fp::exact_abs_sum(&values);
        let budget = t.max(abs * repro_fp::UNIT_ROUNDOFF * 4.0);
        let reducer = SubtreeAdaptive::new(
            HeuristicSelector::default(),
            Tolerance::AbsoluteSpread(budget),
            37, // deliberately odd chunk size
        );
        let outcome = reducer.reduce(&values);
        let err = repro_fp::abs_error(outcome.sum, &values);
        prop_assert!(err <= budget, "err {:e} > budget {:e}", err, budget);
        prop_assert_eq!(
            outcome.chunks.len(),
            values.len().div_ceil(37)
        );
    }

    /// Profiles are scale-equivariant where they should be: scaling the
    /// data by a power of two scales abs_sum/max and leaves k and dr alone.
    #[test]
    fn profile_scale_equivariance(values in workload(), scale_exp in -40i32..40) {
        let s = 2f64.powi(scale_exp);
        let scaled: Vec<f64> = values.iter().map(|v| v * s).collect();
        let p1 = profile(&values);
        let p2 = profile(&scaled);
        prop_assert_eq!(p1.n, p2.n);
        prop_assert_eq!(p1.dr_binades, p2.dr_binades);
        if p1.k.is_finite() && p2.k.is_finite() {
            let ratio = p1.k / p2.k;
            prop_assert!((0.999..1.001).contains(&ratio), "k changed under scaling");
        } else {
            prop_assert_eq!(p1.k.is_infinite(), p2.k.is_infinite());
        }
    }
}
