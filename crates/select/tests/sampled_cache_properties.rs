//! Property tests for the always-on selection fast path: sampled
//! profiling and the decision cache must never trade correctness for
//! their speed.
//!
//! Three promises, each tested over arbitrary inputs:
//!
//! 1. Caching is invisible in the bits: a cache-hit reduction is bitwise
//!    identical to the cold (miss) reduction that populated the entry, and
//!    to a reduction through a fresh cache.
//! 2. A tight-bounds sampled decision is safe: the chosen operator also
//!    fits the **full** profile's budget (the safety inflation means
//!    sampling error escalates, never de-escalates).
//! 3. Sampled partials merge permutation/tree-invariantly, bitwise —
//!    streaming re-selection sees the same profile no matter how the
//!    chunk partials were grouped.

use proptest::prelude::*;
use repro_select::sample::{choose_sampled, SampleConfig, SampledProfile};
use repro_select::selector::predicted_spread;
use repro_select::{
    profile, AdaptiveReducer, CostModel, DataProfile, DecisionCache, HeuristicSelector, Selector,
    Tolerance,
};

/// Workloads large enough that the sampler actually strides (the default
/// target is 2048), drawn from families with real shape variety.
fn large_workload() -> impl Strategy<Value = Vec<f64>> {
    (any::<u64>(), 3_000usize..30_000, 0u32..3).prop_map(|(seed, n, family)| match family {
        // Benign uniform positives.
        0 => repro_gen::uniform(n, 0.0, 1.0, seed),
        // Mixed-sign uniforms (mild cancellation).
        1 => repro_gen::uniform(n, -1.0, 1.0, seed),
        // Exact zero sum over a wide dynamic range (hostile condition).
        _ => repro_gen::zero_sum_with_range(n, 16, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Promise 1: the decision cache never changes the bits. Cold miss,
    /// warm hit, and a fresh cache all reduce to the same bit pattern,
    /// with the same chosen operator.
    #[test]
    fn cache_hits_are_bitwise_identical_to_misses(values in large_workload(), t_exp in -14i32..-2) {
        let reducer = AdaptiveReducer::heuristic(Tolerance::AbsoluteSpread(10f64.powi(t_exp)));
        let cache = DecisionCache::new();
        let cold = reducer.reduce_cached(&values, &cache);
        let warm = reducer.reduce_cached(&values, &cache);
        prop_assert_eq!(cold.algorithm, warm.algorithm);
        prop_assert_eq!(cold.sum.to_bits(), warm.sum.to_bits());
        // A fresh cache re-derives the same decision from the same data.
        let fresh = DecisionCache::new();
        let uncached = reducer.reduce_cached(&values, &fresh);
        prop_assert_eq!(cold.algorithm, uncached.algorithm);
        prop_assert_eq!(cold.sum.to_bits(), uncached.sum.to_bits());
        // If the fast path engaged at all, the second run must have hit.
        let c = cache.counters();
        prop_assert!(c.inserts == 0 || c.hits >= 1, "{c:?}");
    }

    /// Promise 2: a tight-bounds sampled decision never lands on an
    /// operator the full profile's budget would reject. (Loose bounds
    /// return `None` — the fallback path — and claim nothing.)
    #[test]
    fn tight_sampled_decisions_fit_the_full_profile_budget(
        values in large_workload(),
        t_exp in -16i32..-2,
    ) {
        let t = 10f64.powi(t_exp);
        let cfg = SampleConfig::default();
        let sel = HeuristicSelector::default();
        let sampled = SampledProfile::collect(&values, &cfg);
        if let Some(choice) = choose_sampled(&sel, Tolerance::AbsoluteSpread(t), &sampled, &cfg) {
            let full = profile(&values);
            let full_choice = sel.choose(&full, Tolerance::AbsoluteSpread(t));
            // Either the choice fits the full budget outright, or it is the
            // escalation terminal (PR fits every budget by construction).
            prop_assert!(
                predicted_spread(choice, &full) <= t || choice == repro_sum::Algorithm::PR,
                "sampled chose {choice}, full profile predicts {:e} > budget {:e}",
                predicted_spread(choice, &full), t
            );
            // And it is never cheaper than what the full profile demands.
            let costs = CostModel::default();
            prop_assert!(
                costs.cost(choice) >= costs.cost(full_choice),
                "sampled {choice} undercuts full-profile {full_choice}"
            );
        }
    }

    /// Promise 3: merging sampled partials is permutation- and
    /// tree-invariant, bitwise — including the extrapolated estimate the
    /// selector actually consumes.
    #[test]
    fn sampled_partial_merge_is_permutation_and_tree_invariant(values in large_workload()) {
        let cfg = SampleConfig {
            // Small per-chunk target so every chunk genuinely strides.
            target: 64,
            ..SampleConfig::default()
        };
        // Four equal-length chunks: equal lengths guarantee equal strides,
        // the precondition merge() enforces (streaming re-selection feeds
        // fixed-size chunks, so this is the shape the API serves).
        let chunk = values.len() / 4;
        prop_assume!(chunk > 0);
        let chunks = [
            &values[..chunk],
            &values[chunk..2 * chunk],
            &values[2 * chunk..3 * chunk],
            &values[3 * chunk..4 * chunk],
        ];
        let parts: Vec<SampledProfile> = chunks
            .iter()
            .map(|c| SampledProfile::collect(c, &cfg))
            .collect();
        assert!(parts.windows(2).all(|w| w[0].stride == w[1].stride));

        let merge_seq = |order: [usize; 4]| {
            let mut acc = parts[order[0]];
            for &i in &order[1..] {
                assert!(acc.merge(&parts[i]));
            }
            acc
        };
        let left_to_right = merge_seq([0, 1, 2, 3]);
        let reversed = merge_seq([3, 2, 1, 0]);
        let shuffled = merge_seq([2, 0, 3, 1]);
        // Balanced tree: (0+1) + (2+3).
        let mut lo = parts[0];
        assert!(lo.merge(&parts[1]));
        let mut hi = parts[2];
        assert!(hi.merge(&parts[3]));
        assert!(lo.merge(&hi));

        for other in [&reversed, &shuffled, &lo] {
            prop_assert_eq!(&left_to_right, other);
            let a = left_to_right.estimated_profile();
            let b = other.estimated_profile();
            prop_assert_eq!(a.n, b.n);
            prop_assert_eq!(a.abs_sum.to_bits(), b.abs_sum.to_bits());
            prop_assert_eq!(a.sum_estimate.to_bits(), b.sum_estimate.to_bits());
            prop_assert_eq!(a.k.to_bits(), b.k.to_bits());
            prop_assert_eq!(a.dr_binades, b.dr_binades);
        }
    }

    /// Promise 3, incremental flavor: a partial built by streaming
    /// [`DataProfile::add`] merges identically to one built by batch
    /// [`profile`] — the add/merge/batch paths are interchangeable.
    #[test]
    fn streamed_and_batch_partials_merge_identically(values in large_workload(), cut_frac in 0.1f64..0.9) {
        let cut = (cut_frac * values.len() as f64) as usize;
        let mut streamed = DataProfile::empty();
        for &x in &values[..cut] {
            streamed.add(x);
        }
        streamed.merge(&profile(&values[cut..]));
        let mut batched = profile(&values[..cut]);
        batched.merge(&profile(&values[cut..]));
        prop_assert_eq!(streamed.n, batched.n);
        prop_assert_eq!(streamed.abs_sum.to_bits(), batched.abs_sum.to_bits());
        prop_assert_eq!(streamed.sum_estimate.to_bits(), batched.sum_estimate.to_bits());
        prop_assert_eq!(streamed.k.to_bits(), batched.k.to_bits());
        prop_assert_eq!(streamed.dr_binades, batched.dr_binades);
        prop_assert_eq!(streamed.max_abs.to_bits(), batched.max_abs.to_bits());
    }
}

/// The misprediction loop: realized-spread telemetry can evict a cached
/// decision, and the next reduction re-selects instead of reusing it.
#[test]
fn misprediction_eviction_forces_reselection() {
    let values = repro_gen::uniform(20_000, 0.0, 1.0, 99);
    let tol = Tolerance::AbsoluteSpread(1e-9);
    let reducer = AdaptiveReducer::heuristic(tol);
    let cache = DecisionCache::new();
    let cold = reducer.reduce_cached(&values, &cache);
    assert_eq!(cache.counters().inserts, 1, "fast path must engage");
    let fp = repro_select::Fingerprint::of(&cold.profile, tol);
    assert!(
        cache.invalidate_misprediction(&fp),
        "entry must be evictable"
    );
    assert!(cache.is_empty());
    let again = reducer.reduce_cached(&values, &cache);
    // Re-selection from the same data reaches the same decision and bits.
    assert_eq!(cold.algorithm, again.algorithm);
    assert_eq!(cold.sum.to_bits(), again.sum.to_bits());
    let c = cache.counters();
    assert_eq!(c.inserts, 2, "eviction must force a fresh insert: {c:?}");
    assert_eq!(c.mispredictions, 1);
}
