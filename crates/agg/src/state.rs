//! Per-shard partial states and the `repro-agg-state-v1` wire format.
//!
//! A shard's state is the thing that makes the whole engine reproducible:
//! both variants are **exact-or-prerounded mergeable monoids**, so any
//! add/merge schedule over the same multiset of values reaches the same
//! state. The wire format serializes that state losslessly (text, one
//! line per shard) so partials can be shipped between nodes and merged,
//! or written as a snapshot and restored after a crash — in both cases
//! bitwise-transparently.
//!
//! The parser is **strict**: unknown schema markers, truncated documents,
//! shard-count mismatches, out-of-order shard lines, operator/checkpoint
//! mismatches, and trailing garbage are all rejected with a
//! [`AggStateError`] — the CLI maps every one of these to the
//! binary-wide schema exit code (2). A corrupt snapshot must never
//! silently decode into a different sum.

use repro_fp::Superaccumulator;
use repro_sum::{Accumulator, BinnedSum};

/// Schema marker opening one serialized aggregate.
pub const STATE_SCHEMA: &str = "repro-agg-state-v1";

/// Schema marker opening a whole-engine snapshot (a counted sequence of
/// [`STATE_SCHEMA`] documents).
pub const SNAPSHOT_SCHEMA: &str = "repro-agg-snapshot-v1";

/// A malformed `repro-agg-state-v1` document. Always a schema-class
/// error: the CLI exit-code contract maps it to exit 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggStateError(pub String);

impl std::fmt::Display for AggStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for AggStateError {}

fn bad(msg: impl Into<String>) -> AggStateError {
    AggStateError(msg.into())
}

/// Which mergeable operator an aggregate's shards run. Chosen once per
/// aggregate (by the selector, under the engine's accuracy budget) and
/// carried by the wire format so a restored or shipped state keeps its
/// operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatorKind {
    /// The paper's PR operator: pre-rounded bins, reproducible by
    /// construction, accuracy set by `fold` (1..=4). Compact state —
    /// cheap to snapshot and ship.
    Binned {
        /// Bins folded per primary (the PR accuracy knob).
        fold: usize,
    },
    /// An exact Kulisch superaccumulator: a true integer sum of the
    /// deposited values. Strongest guarantee, and — counterintuitively —
    /// the fastest batched ingest path (the PR 6 SIMD kernel).
    Exact,
}

impl OperatorKind {
    /// Wire label, e.g. `binned:3` or `exact`.
    pub fn label(&self) -> String {
        match self {
            OperatorKind::Binned { fold } => format!("binned:{fold}"),
            OperatorKind::Exact => "exact".to_string(),
        }
    }

    /// Parse a wire label. Strict: only `exact` and `binned:1..=4`.
    pub fn parse(text: &str) -> Option<Self> {
        if text == "exact" {
            return Some(OperatorKind::Exact);
        }
        let fold: usize = text.strip_prefix("binned:")?.parse().ok()?;
        if !(1..=4).contains(&fold) {
            return None;
        }
        Some(OperatorKind::Binned { fold })
    }

    /// A fresh (zero) shard state running this operator.
    pub fn new_state(&self) -> ShardState {
        match *self {
            OperatorKind::Binned { fold } => ShardState::Binned(BinnedSum::new(fold)),
            OperatorKind::Exact => ShardState::Exact(Superaccumulator::new()),
        }
    }
}

/// One shard's partial state: a mergeable accumulator whose add/merge
/// schedule is irrelevant to the final bits.
#[derive(Clone, Debug)]
pub enum ShardState {
    /// PR partial (see [`OperatorKind::Binned`]).
    Binned(BinnedSum),
    /// Exact partial (see [`OperatorKind::Exact`]).
    Exact(Superaccumulator),
}

impl ShardState {
    /// The operator this state runs.
    pub fn op(&self) -> OperatorKind {
        match self {
            ShardState::Binned(b) => OperatorKind::Binned { fold: b.fold() },
            ShardState::Exact(_) => OperatorKind::Exact,
        }
    }

    /// One-line text checkpoint of the full partial state (lossless).
    pub fn checkpoint(&self) -> String {
        match self {
            ShardState::Binned(b) => b.checkpoint(),
            ShardState::Exact(s) => s.checkpoint(),
        }
    }

    /// Restore a state of the given operator from its checkpoint line.
    /// Strict: the checkpoint must parse *and* match `op` (including the
    /// binned fold), or this returns `None`.
    pub fn restore(op: OperatorKind, text: &str) -> Option<Self> {
        let state = match op {
            OperatorKind::Binned { .. } => ShardState::Binned(BinnedSum::restore(text)?),
            OperatorKind::Exact => ShardState::Exact(Superaccumulator::restore(text)?),
        };
        if state.op() != op {
            return None;
        }
        Some(state)
    }
}

impl Accumulator for ShardState {
    fn add(&mut self, x: f64) {
        match self {
            ShardState::Binned(b) => b.add(x),
            ShardState::Exact(s) => s.add(x),
        }
    }

    /// Merge a sibling shard. Both shards of one aggregate always run the
    /// same operator (the parser and engine enforce it), so a mismatch is
    /// an internal invariant violation, not an input error.
    fn merge(&mut self, other: &Self) {
        match (self, other) {
            (ShardState::Binned(a), ShardState::Binned(b)) => a.merge(b),
            (ShardState::Exact(a), ShardState::Exact(b)) => a.merge(b),
            _ => panic!("shard operator mismatch in merge"),
        }
    }

    fn finalize(&self) -> f64 {
        match self {
            ShardState::Binned(b) => b.finalize(),
            ShardState::Exact(s) => s.to_f64(),
        }
    }

    fn add_slice(&mut self, values: &[f64]) {
        match self {
            ShardState::Binned(b) => b.add_slice(values),
            // The SIMD-dispatched batched deposit from PR 6.
            ShardState::Exact(s) => s.add_slice(values),
        }
    }
}

/// One aggregate decoded from the wire: its metadata plus every shard's
/// restored partial state, in shard order.
#[derive(Clone, Debug)]
pub struct ParsedAggregate {
    /// Aggregate name (validated: `[A-Za-z0-9_.:-]+`).
    pub name: String,
    /// The operator every shard runs.
    pub op: OperatorKind,
    /// Updates (values) ingested into this aggregate so far.
    pub updates: u64,
    /// Batches ingested so far.
    pub batches: u64,
    /// Restored per-shard partial states, shard 0 first.
    pub shards: Vec<ShardState>,
}

/// Whether `name` is a legal aggregate name on the wire (nonempty,
/// `[A-Za-z0-9_.:-]` only — no spaces, so the header line stays
/// unambiguous).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

/// Render one aggregate as a `repro-agg-state-v1` document.
pub fn render_aggregate(
    name: &str,
    op: OperatorKind,
    updates: u64,
    batches: u64,
    shards: &[ShardState],
) -> String {
    let mut out = format!(
        "{STATE_SCHEMA} name={name} op={} shards={} updates={updates} batches={batches}\n",
        op.label(),
        shards.len(),
    );
    for (i, shard) in shards.iter().enumerate() {
        out.push_str(&format!("shard={i};{}\n", shard.checkpoint()));
    }
    out.push_str("end\n");
    out
}

fn header_field<'a>(token: Option<&'a str>, key: &str) -> Result<&'a str, AggStateError> {
    let token = token.ok_or_else(|| bad(format!("truncated header: missing {key}=")))?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| bad(format!("malformed header: expected {key}=, got {token:?}")))
}

/// Parse one `repro-agg-state-v1` document from a line iterator
/// (consuming exactly its lines, so documents can be concatenated).
/// Strict on every axis: schema marker, header field order, shard
/// indices contiguous from 0, checkpoint/operator agreement, and the
/// `end` terminator.
pub fn parse_aggregate<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<ParsedAggregate, AggStateError> {
    let header = lines.next().ok_or_else(|| bad("empty state document"))?;
    let mut tokens = header.split(' ');
    let schema = tokens.next().unwrap_or("");
    if schema != STATE_SCHEMA {
        return Err(bad(format!(
            "unsupported schema {schema:?} (expected {STATE_SCHEMA})"
        )));
    }
    let name = header_field(tokens.next(), "name")?.to_string();
    if !valid_name(&name) {
        return Err(bad(format!("invalid aggregate name {name:?}")));
    }
    let op_label = header_field(tokens.next(), "op")?;
    let op = OperatorKind::parse(op_label)
        .ok_or_else(|| bad(format!("unknown operator {op_label:?}")))?;
    let shard_count: usize = header_field(tokens.next(), "shards")?
        .parse()
        .map_err(|_| bad("malformed shards= count"))?;
    if shard_count == 0 {
        return Err(bad("shards= must be at least 1"));
    }
    let updates: u64 = header_field(tokens.next(), "updates")?
        .parse()
        .map_err(|_| bad("malformed updates= count"))?;
    let batches: u64 = header_field(tokens.next(), "batches")?
        .parse()
        .map_err(|_| bad("malformed batches= count"))?;
    if tokens.next().is_some() {
        return Err(bad("trailing tokens in header"));
    }

    let mut shards = Vec::with_capacity(shard_count);
    for expect in 0..shard_count {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("truncated: missing shard {expect}")))?;
        let rest = line
            .strip_prefix("shard=")
            .ok_or_else(|| bad(format!("expected shard line, got {line:?}")))?;
        let (index, checkpoint) = rest
            .split_once(';')
            .ok_or_else(|| bad("malformed shard line (missing ';')"))?;
        let index: usize = index.parse().map_err(|_| bad("malformed shard index"))?;
        if index != expect {
            return Err(bad(format!(
                "shard {index} out of order (expected {expect})"
            )));
        }
        let state = ShardState::restore(op, checkpoint)
            .ok_or_else(|| bad(format!("corrupt checkpoint for shard {index}")))?;
        shards.push(state);
    }
    match lines.next() {
        Some("end") => {}
        Some(line) => return Err(bad(format!("expected end, got {line:?}"))),
        None => return Err(bad("truncated: missing end marker")),
    }
    Ok(ParsedAggregate {
        name,
        op,
        updates,
        batches,
        shards,
    })
}

/// Render a whole-engine snapshot: a counted header plus one aggregate
/// document per entry.
pub fn render_snapshot(aggregates: &[String]) -> String {
    let mut out = format!("{SNAPSHOT_SCHEMA} aggregates={}\n", aggregates.len());
    for doc in aggregates {
        out.push_str(doc);
    }
    out
}

/// Parse a whole-engine snapshot. Strict: schema marker, exact aggregate
/// count, unique names, and nothing after the last document.
pub fn parse_snapshot(text: &str) -> Result<Vec<ParsedAggregate>, AggStateError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty snapshot"))?;
    let mut tokens = header.split(' ');
    let schema = tokens.next().unwrap_or("");
    if schema != SNAPSHOT_SCHEMA {
        return Err(bad(format!(
            "unsupported schema {schema:?} (expected {SNAPSHOT_SCHEMA})"
        )));
    }
    let count: usize = header_field(tokens.next(), "aggregates")?
        .parse()
        .map_err(|_| bad("malformed aggregates= count"))?;
    if tokens.next().is_some() {
        return Err(bad("trailing tokens in snapshot header"));
    }
    let mut parsed = Vec::with_capacity(count);
    for _ in 0..count {
        parsed.push(parse_aggregate(&mut lines)?);
    }
    if let Some(extra) = lines.next() {
        return Err(bad(format!("trailing garbage after snapshot: {extra:?}")));
    }
    let mut names: Vec<&str> = parsed.iter().map(|p| p.name.as_str()).collect();
    names.sort_unstable();
    if names.windows(2).any(|w| w[0] == w[1]) {
        return Err(bad("duplicate aggregate name in snapshot"));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(op: OperatorKind) -> ShardState {
        let mut s = op.new_state();
        s.add_slice(&[1.5, -2.25e-300, 7.0e250, f64::MIN_POSITIVE, -0.0]);
        s
    }

    #[test]
    fn operator_labels_round_trip() {
        for op in [
            OperatorKind::Exact,
            OperatorKind::Binned { fold: 1 },
            OperatorKind::Binned { fold: 4 },
        ] {
            assert_eq!(OperatorKind::parse(&op.label()), Some(op));
        }
        for garbage in ["", "binned", "binned:0", "binned:5", "binned:x", "EXACT"] {
            assert_eq!(OperatorKind::parse(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn shard_checkpoint_restore_is_bitwise_transparent() {
        for op in [OperatorKind::Exact, OperatorKind::Binned { fold: 3 }] {
            let state = sample_state(op);
            let restored = ShardState::restore(op, &state.checkpoint()).expect("restores");
            assert_eq!(restored.finalize().to_bits(), state.finalize().to_bits());
        }
    }

    #[test]
    fn restore_rejects_operator_mismatch() {
        let exact = sample_state(OperatorKind::Exact);
        assert!(
            ShardState::restore(OperatorKind::Binned { fold: 3 }, &exact.checkpoint()).is_none()
        );
        let binned = sample_state(OperatorKind::Binned { fold: 3 });
        assert!(ShardState::restore(OperatorKind::Exact, &binned.checkpoint()).is_none());
        // Fold is part of the operator, not just the representation.
        assert!(
            ShardState::restore(OperatorKind::Binned { fold: 2 }, &binned.checkpoint()).is_none()
        );
    }

    #[test]
    fn aggregate_document_round_trips() {
        let shards = vec![
            sample_state(OperatorKind::Exact),
            OperatorKind::Exact.new_state(),
        ];
        let doc = render_aggregate("t.agg-1", OperatorKind::Exact, 5, 1, &shards);
        let parsed = parse_aggregate(&mut doc.lines()).expect("parses");
        assert_eq!(parsed.name, "t.agg-1");
        assert_eq!(parsed.op, OperatorKind::Exact);
        assert_eq!(parsed.updates, 5);
        assert_eq!(parsed.batches, 1);
        assert_eq!(parsed.shards.len(), 2);
        assert_eq!(
            parsed.shards[0].finalize().to_bits(),
            shards[0].finalize().to_bits()
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        let shards = vec![sample_state(OperatorKind::Binned { fold: 3 })];
        let good = render_aggregate("a", OperatorKind::Binned { fold: 3 }, 5, 1, &shards);
        assert!(parse_aggregate(&mut good.lines()).is_ok());

        let cases: Vec<String> = vec![
            // Unknown schema version.
            good.replacen("repro-agg-state-v1", "repro-agg-state-v2", 1),
            // Truncated: drop the end marker, drop the shard line.
            good.replacen("end\n", "", 1),
            good.lines().take(1).collect::<Vec<_>>().join("\n"),
            // Header corruption.
            good.replacen("name=a", "name=", 1),
            good.replacen("name=a", "nom=a", 1),
            good.replacen("op=binned:3", "op=binned:9", 1),
            good.replacen("shards=1", "shards=2", 1),
            good.replacen("shards=1", "shards=0", 1),
            good.replacen("updates=5", "updates=x", 1),
            // Shard corruption: bad index, flipped checkpoint byte.
            good.replacen("shard=0;", "shard=1;", 1),
            good.replacen("shard=0;3", "shard=0;4", 1),
            // Trailing garbage.
            format!("{good}junk\n"),
        ];
        for case in cases {
            let mut all = parse_aggregate(&mut case.lines());
            if all.is_ok() {
                // The trailing-garbage case parses the document but the
                // snapshot wrapper must reject the leftovers.
                let wrapped = format!("{SNAPSHOT_SCHEMA} aggregates=1\n{case}");
                all = parse_snapshot(&wrapped).map(|mut v| v.pop().unwrap());
            }
            assert!(all.is_err(), "accepted malformed document:\n{case}");
        }
    }

    #[test]
    fn snapshot_round_trips_and_rejects_duplicates() {
        let a = render_aggregate(
            "a",
            OperatorKind::Exact,
            1,
            1,
            &[sample_state(OperatorKind::Exact)],
        );
        let b = render_aggregate(
            "b",
            OperatorKind::Binned { fold: 2 },
            2,
            1,
            &[sample_state(OperatorKind::Binned { fold: 2 })],
        );
        let snap = render_snapshot(&[a.clone(), b.clone()]);
        let parsed = parse_snapshot(&snap).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].op, OperatorKind::Binned { fold: 2 });

        let dup = render_snapshot(&[a.clone(), a.clone()]);
        assert!(parse_snapshot(&dup).is_err());
        assert!(parse_snapshot("").is_err());
        assert!(parse_snapshot("repro-agg-snapshot-v9 aggregates=0\n").is_err());
        // Count mismatch: header says two, body has one.
        assert!(parse_snapshot(&format!("{SNAPSHOT_SCHEMA} aggregates=2\n{a}")).is_err());
    }
}
