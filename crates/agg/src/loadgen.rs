//! Deterministic load generator: thousands of seeded clients streaming
//! batches into the engine from any number of worker threads.
//!
//! The workload is a *schedule*: the cartesian product of
//! `(aggregate, client, batch)` indices in canonical order, shuffled by a
//! dedicated arrival seed. Each event's payload is derived from
//! `(seed, aggregate, client, batch)` alone — **not** from when or where
//! the event runs — so any arrival order, worker count, or
//! stop/restore/resume split of the schedule deposits the same multiset
//! of values into each aggregate, and the engine's merge invariance does
//! the rest: identical finalized bits, every time.
//!
//! Payload values span ±2³⁰ binades with mixed signs (built from exact
//! powers of two, no libm calls), so the workload actually exercises the
//! cancellation and dynamic range the operators are built for.

use crate::engine::AggEngine;
use repro_fp::rng::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The shape of one load-generator run. Every field participates in the
/// deterministic schedule; two runs with equal specs (any `workers`)
/// produce bitwise-identical aggregate states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadSpec {
    /// Named aggregates (`agg000`, `agg001`, …).
    pub aggregates: usize,
    /// Simulated clients per aggregate.
    pub clients: usize,
    /// Batches each client sends per aggregate.
    pub batches: usize,
    /// Values per batch.
    pub batch_len: usize,
    /// Payload seed: determines every batch's values.
    pub seed: u64,
    /// Arrival seed: determines the (shuffled) event order. Changing it
    /// must not change any finalized sum — the CI smoke gate checks this.
    pub shuffle: u64,
    /// Worker threads draining the schedule (≥ 1).
    pub workers: usize,
}

impl LoadSpec {
    /// Total batch events in the schedule.
    pub fn total_batches(&self) -> usize {
        self.aggregates * self.clients * self.batches
    }

    /// Total values the full schedule deposits.
    pub fn total_updates(&self) -> u64 {
        self.total_batches() as u64 * self.batch_len as u64
    }
}

/// One schedule entry: client `client` sends its `batch`-th batch into
/// aggregate `aggregate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadEvent {
    /// Aggregate index (names via [`aggregate_name`]).
    pub aggregate: u32,
    /// Client id — also the shard-assignment key.
    pub client: u32,
    /// Per-client batch sequence number.
    pub batch: u32,
}

/// Canonical name of the `i`-th loadgen aggregate.
pub fn aggregate_name(i: usize) -> String {
    format!("agg{i:03}")
}

/// 2^e as an exact `f64` (|e| ≤ 1022) — no libm, bit-identical anywhere.
fn pow2(e: i32) -> f64 {
    f64::from_bits(((1023 + e) as u64) << 52)
}

fn mix(seed: u64, a: u64, c: u64, b: u64) -> u64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ c.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ b.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Append the payload for one event into `out` (reusable buffer). A pure
/// function of `(seed, aggregate, client, batch)` — independent of
/// arrival order and worker assignment by construction.
pub fn batch_values_into(seed: u64, event: LoadEvent, len: usize, out: &mut Vec<f64>) {
    out.clear();
    let mut rng = DetRng::seed_from_u64(mix(
        seed,
        event.aggregate as u64,
        event.client as u64,
        event.batch as u64,
    ));
    for _ in 0..len {
        let e = rng.random_range(-30i32..=30);
        out.push((rng.next_f64() - 0.5) * pow2(e));
    }
}

/// The payload for one event, as a fresh vector (see
/// [`batch_values_into`]).
pub fn batch_values(seed: u64, aggregate: u32, client: u32, batch: u32, len: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(len);
    batch_values_into(
        seed,
        LoadEvent {
            aggregate,
            client,
            batch,
        },
        len,
        &mut out,
    );
    out
}

/// The full event schedule: canonical `(aggregate, client, batch)` order,
/// then a Fisher–Yates shuffle seeded by `spec.shuffle`.
pub fn schedule(spec: &LoadSpec) -> Vec<LoadEvent> {
    let mut events = Vec::with_capacity(spec.total_batches());
    for a in 0..spec.aggregates {
        for c in 0..spec.clients {
            for b in 0..spec.batches {
                events.push(LoadEvent {
                    aggregate: a as u32,
                    client: c as u32,
                    batch: b as u32,
                });
            }
        }
    }
    DetRng::seed_from_u64(spec.shuffle).shuffle(&mut events);
    events
}

/// Declare the spec's aggregates (idempotent — restored engines keep
/// their state) and drain the schedule slice `[start_at, stop_at)` with
/// `spec.workers` threads. Returns the number of values deposited.
///
/// Worker `w` takes events `start_at + w, start_at + w + W, …` — a fixed
/// round-robin split, though *any* split would finalize identically.
/// `stop_at` is the kill point for snapshot/restore runs: stop, serialize
/// the engine, restore elsewhere, and resume with `start_at` at the same
/// index — the CI gate asserts the digest matches an uninterrupted run.
pub fn run(engine: &AggEngine, spec: &LoadSpec, start_at: usize, stop_at: Option<usize>) -> u64 {
    let aggregates: Vec<_> = (0..spec.aggregates)
        .map(|a| {
            // The selection probe is the canonical first batch — a fixed
            // function of the spec, never of arrival order.
            let probe = batch_values(spec.seed, a as u32, 0, 0, spec.batch_len.max(1));
            engine.declare(&aggregate_name(a), &probe)
        })
        .collect();
    let events = schedule(spec);
    let stop = stop_at.unwrap_or(events.len()).min(events.len());
    let start = start_at.min(stop);
    let slice = &events[start..stop];
    let workers = spec.workers.max(1);
    let deposited = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..workers {
            let deposited = &deposited;
            let aggregates = &aggregates;
            s.spawn(move || {
                let mut buf = Vec::with_capacity(spec.batch_len);
                let mut local = 0u64;
                let mut idx = w;
                while idx < slice.len() {
                    let event = slice[idx];
                    batch_values_into(spec.seed, event, spec.batch_len, &mut buf);
                    aggregates[event.aggregate as usize].ingest(event.client as u64, &buf);
                    local += buf.len() as u64;
                    idx += workers;
                }
                deposited.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    deposited.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AggConfig;

    fn spec() -> LoadSpec {
        LoadSpec {
            aggregates: 3,
            clients: 20,
            batches: 4,
            batch_len: 64,
            seed: 2015,
            shuffle: 1,
            workers: 3,
        }
    }

    fn digest(spec: &LoadSpec, shards: usize) -> u64 {
        let engine = AggEngine::new(AggConfig {
            shards,
            ..AggConfig::default()
        });
        let n = run(&engine, spec, 0, None);
        assert_eq!(n, spec.total_updates());
        engine.digest_bits()
    }

    #[test]
    fn digest_is_invariant_to_shuffle_workers_and_shards() {
        let base = digest(&spec(), 4);
        for (shuffle, workers, shards) in [(2u64, 1usize, 4usize), (99, 8, 1), (7, 2, 16)] {
            let s = LoadSpec {
                shuffle,
                workers,
                ..spec()
            };
            assert_eq!(
                digest(&s, shards),
                base,
                "shuffle={shuffle} workers={workers} shards={shards}"
            );
        }
    }

    #[test]
    fn payloads_ignore_arrival_context() {
        let a = batch_values(9, 1, 2, 3, 32);
        let b = batch_values(9, 1, 2, 3, 32);
        assert_eq!(a, b);
        assert_ne!(batch_values(9, 1, 2, 4, 32), a);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stop_snapshot_restore_resume_matches_uninterrupted_run() {
        let s = spec();
        let full = AggEngine::new(AggConfig::default());
        run(&full, &s, 0, None);

        let cut = s.total_batches() / 3;
        let first = AggEngine::new(AggConfig::default());
        let n1 = run(&first, &s, 0, Some(cut));
        let snapshot = first.serialize();
        drop(first); // the "kill"

        let resumed = AggEngine::restore(&snapshot, AggConfig::default()).expect("restores");
        let n2 = run(&resumed, &s, cut, None);
        assert_eq!(n1 + n2, s.total_updates());
        assert_eq!(resumed.digest_bits(), full.digest_bits());
        assert_eq!(resumed.total_updates(), full.total_updates());
    }

    #[test]
    fn schedule_is_a_permutation_of_the_canonical_product() {
        let s = spec();
        let mut events = schedule(&s);
        assert_eq!(events.len(), s.total_batches());
        events.sort_by_key(|e| (e.aggregate, e.client, e.batch));
        events.dedup();
        assert_eq!(events.len(), s.total_batches());
        // Different arrival seeds really do reorder.
        assert_ne!(schedule(&s), schedule(&LoadSpec { shuffle: 2, ..s }));
    }
}
