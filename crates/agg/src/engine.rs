//! The aggregation engine: named aggregates, sharded ingest, and the
//! deterministic merge tree.
//!
//! ## Shard layout
//!
//! Each [`Aggregate`] owns `K` mutex-guarded [`ShardState`]s. A client is
//! pinned to shard `client_id mod K` — deterministic, so contention is
//! spread without any routing state — and every batch lands via one lock
//! acquisition and one batched `add_slice` (the SIMD hot path). Two
//! clients on different shards never contend; two on the same shard
//! serialize only against each other.
//!
//! ## Why finalize is bitwise-invariant
//!
//! Both operators' `add`/`merge` are commutative and associative on the
//! partial-state level (integer addition for the exact register,
//! pre-rounded bin addition for PR). Therefore the map from the *multiset
//! of ingested values* to the merged state is independent of: which shard
//! each value landed in (shard count / client assignment), the order
//! values arrived (client interleaving, worker count), and the shape of
//! the merge tree over shards. [`merge_tree`] fixes stride-doubling order
//! anyway — the same schedule the runtime's plan merge uses — so even a
//! hypothetical order-sensitive operator would fail loudly in tests, not
//! silently drift. Rounding to `f64` happens once, in `finalize`, after
//! the last merge.

use crate::state::{self, valid_name, AggStateError, OperatorKind, ParsedAggregate, ShardState};
use repro_select::{DecisionCache, Fingerprint, HeuristicSelector, Selector, Tolerance};
use repro_sum::{Accumulator, Algorithm};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Engine-wide configuration: the shard count for new aggregates, the PR
/// fold, and the accuracy budget the selector chooses operators under.
#[derive(Clone, Copy, Debug)]
pub struct AggConfig {
    /// Shards per newly declared aggregate (≥ 1).
    pub shards: usize,
    /// PR fold (1..=4) used when the selector lands on the binned operator.
    pub fold: usize,
    /// Accuracy budget each aggregate's operator must meet.
    pub budget: Tolerance,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            shards: 4,
            fold: 3,
            budget: Tolerance::Bitwise,
        }
    }
}

/// Map the selector's choice onto a shard-safe operator.
///
/// Sharded ingest only works with operators whose partials merge
/// bitwise-invariantly, so the engine clamps the selector's ladder to the
/// two that qualify:
///
/// * PR (`binned`) stays PR — compact state, cheap snapshots.
/// * A **non-reproducible** choice (ST/K/CP/…) means the budget is loose
///   enough that even the cheapest rung met it; PR's run-to-run spread is
///   zero, so substituting PR keeps the budget trivially while restoring
///   mergeability.
/// * Anything stronger (exact/distillation) becomes the superaccumulator —
///   which is also the fastest *batched* ingest path in the workspace
///   (the PR 6 SIMD kernel: ~0.7 ns/elem vs ~15 for PR).
pub fn operator_for(algorithm: Algorithm, fold: usize) -> OperatorKind {
    match algorithm {
        Algorithm::Binned { fold } => OperatorKind::Binned {
            fold: fold as usize,
        },
        a if a.is_reproducible() => OperatorKind::Exact,
        _ => OperatorKind::Binned { fold },
    }
}

/// Merge shard states with the stride-doubling schedule (partner
/// `i + stride` folds into `i`, stride doubling each round) and return
/// the root state. Returns `None` for an empty input.
pub fn merge_tree(mut states: Vec<ShardState>) -> Option<ShardState> {
    if states.is_empty() {
        return None;
    }
    let mut stride = 1;
    while stride < states.len() {
        let mut i = 0;
        while i + stride < states.len() {
            let (left, right) = states.split_at_mut(i + stride);
            left[i].merge(&right[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
    states.truncate(1);
    states.pop()
}

/// One named aggregate: `K` sharded partial states plus ingest counters.
#[derive(Debug)]
pub struct Aggregate {
    name: String,
    op: OperatorKind,
    shards: Vec<Mutex<ShardState>>,
    updates: AtomicU64,
    batches: AtomicU64,
}

impl Aggregate {
    fn new(name: String, op: OperatorKind, shard_count: usize) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|_| Mutex::new(op.new_state()))
            .collect();
        Aggregate {
            name,
            op,
            shards,
            updates: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    fn from_parsed(parsed: ParsedAggregate) -> Self {
        Aggregate {
            name: parsed.name,
            op: parsed.op,
            shards: parsed.shards.into_iter().map(Mutex::new).collect(),
            updates: AtomicU64::new(parsed.updates),
            batches: AtomicU64::new(parsed.batches),
        }
    }

    /// Aggregate name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator every shard runs.
    pub fn op(&self) -> OperatorKind {
        self.op
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Values ingested so far.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// The shard a client's batches land in: `client_id mod K`.
    pub fn shard_of(&self, client_id: u64) -> usize {
        (client_id % self.shards.len() as u64) as usize
    }

    /// Ingest one batch from `client_id`: one lock, one batched
    /// `add_slice` on the operator's hot path.
    pub fn ingest(&self, client_id: u64, values: &[f64]) {
        lock(&self.shards[self.shard_of(client_id)]).add_slice(values);
        self.updates
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Clone every shard's current state into a
    /// [`repro_runtime::CheckpointStore`], one slot per shard. Each slot
    /// is internally consistent; for a cross-shard-consistent snapshot,
    /// quiesce ingest first (the load generator stops at an event
    /// boundary before snapshotting).
    pub fn snapshot_store(&self) -> repro_runtime::CheckpointStore<ShardState> {
        let mut store = repro_runtime::CheckpointStore::with_slots(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            store.save(i, lock(shard).clone());
        }
        store
    }

    /// The merged root state (stride-doubling over shard clones).
    pub fn merged_state(&self) -> ShardState {
        let store = self.snapshot_store();
        let states: Vec<ShardState> = (0..store.slots())
            .map(|i| store.get(i).expect("snapshot fills every slot").clone())
            .collect();
        merge_tree(states).expect("aggregates have at least one shard")
    }

    /// Finalize: merge all shards, round once.
    pub fn finalize(&self) -> f64 {
        let result = self.merged_state().finalize();
        repro_obs::flight::record_with("agg", "finalize", || {
            vec![
                repro_obs::f("name", self.name.as_str()),
                repro_obs::f("bits", format!("{:016x}", result.to_bits())),
                repro_obs::f("updates", self.updates()),
            ]
        });
        result
    }

    /// [`Aggregate::finalize`] as raw IEEE-754 bits (what the CI identity
    /// gates compare).
    pub fn finalize_bits(&self) -> u64 {
        self.finalize().to_bits()
    }

    /// Serialize this aggregate as one `repro-agg-state-v1` document.
    pub fn serialize(&self) -> String {
        let store = self.snapshot_store();
        let states: Vec<ShardState> = (0..store.slots())
            .map(|i| store.get(i).expect("snapshot fills every slot").clone())
            .collect();
        state::render_aggregate(&self.name, self.op, self.updates(), self.batches(), &states)
    }

    /// Merge a shipped aggregate state into this one. The operator must
    /// match; the remote's shard `i` folds into local shard
    /// `i mod K_local` (any assignment yields the same bits — the
    /// operators are merge-invariant — this one keeps locks short).
    pub fn merge_parsed(&self, remote: &ParsedAggregate) -> Result<(), AggStateError> {
        if remote.op != self.op {
            return Err(AggStateError(format!(
                "operator mismatch for {:?}: local {} remote {}",
                self.name,
                self.op.label(),
                remote.op.label()
            )));
        }
        for (i, shard) in remote.shards.iter().enumerate() {
            lock(&self.shards[i % self.shards.len()]).merge(shard);
        }
        self.updates.fetch_add(remote.updates, Ordering::Relaxed);
        self.batches.fetch_add(remote.batches, Ordering::Relaxed);
        Ok(())
    }
}

/// The engine: a registry of named aggregates sharing one configuration
/// and one selector decision cache.
#[derive(Debug)]
pub struct AggEngine {
    config: AggConfig,
    aggregates: RwLock<BTreeMap<String, Arc<Aggregate>>>,
    cache: DecisionCache,
    selector: HeuristicSelector,
}

impl AggEngine {
    /// An empty engine.
    pub fn new(config: AggConfig) -> Self {
        AggEngine {
            config,
            aggregates: RwLock::new(BTreeMap::new()),
            cache: DecisionCache::new(),
            selector: HeuristicSelector::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AggConfig {
        &self.config
    }

    /// The shared selector decision cache (hit-rate observability).
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<Aggregate>>> {
        self.aggregates
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<Aggregate>>> {
        self.aggregates
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Declare (or fetch) an aggregate. On first declaration the selector
    /// profiles `sample` — a *representative* batch the caller derives
    /// deterministically, **not** whichever batch happens to arrive first,
    /// so the chosen operator is independent of arrival order — and the
    /// decision is cached by workload fingerprint. Redeclaration returns
    /// the existing aggregate untouched (restored state wins).
    ///
    /// # Panics
    /// If `name` is not a legal wire name (`[A-Za-z0-9_.:-]+`).
    pub fn declare(&self, name: &str, sample: &[f64]) -> Arc<Aggregate> {
        assert!(valid_name(name), "invalid aggregate name {name:?}");
        if let Some(existing) = self.read().get(name) {
            return existing.clone();
        }
        let profile = repro_select::profile(sample);
        let fingerprint = Fingerprint::of(&profile, self.config.budget);
        let algorithm = self.cache.lookup(&fingerprint).unwrap_or_else(|| {
            let chosen = self.selector.choose(&profile, self.config.budget);
            self.cache.insert(fingerprint, chosen);
            chosen
        });
        let op = operator_for(algorithm, self.config.fold);
        let mut map = self.write();
        let entry = map.entry(name.to_string()).or_insert_with(|| {
            repro_obs::flight::record_with("agg", "declare", || {
                vec![
                    repro_obs::f("name", name),
                    repro_obs::f("alg", algorithm.abbrev()),
                    repro_obs::f("op", op.label()),
                    repro_obs::f("shards", self.config.shards as u64),
                ]
            });
            Arc::new(Aggregate::new(name.to_string(), op, self.config.shards))
        });
        entry.clone()
    }

    /// Fetch an aggregate by name.
    pub fn get(&self, name: &str) -> Option<Arc<Aggregate>> {
        self.read().get(name).cloned()
    }

    /// All aggregates, in name order.
    pub fn aggregates(&self) -> Vec<Arc<Aggregate>> {
        self.read().values().cloned().collect()
    }

    /// Total values ingested across all aggregates.
    pub fn total_updates(&self) -> u64 {
        self.read().values().map(|a| a.updates()).sum()
    }

    /// Serialize the whole engine as a `repro-agg-snapshot-v1` document.
    pub fn serialize(&self) -> String {
        let aggregates = self.aggregates();
        let docs: Vec<String> = aggregates.iter().map(|a| a.serialize()).collect();
        repro_obs::flight::record_with("agg", "snapshot", || {
            vec![
                repro_obs::f("aggregates", docs.len() as u64),
                repro_obs::f("updates", self.total_updates()),
            ]
        });
        state::render_snapshot(&docs)
    }

    /// Rebuild an engine from a serialized snapshot. Shard counts and
    /// operators come from the wire (they are part of the state), not
    /// from `config`; `config` governs aggregates declared later.
    pub fn restore(text: &str, config: AggConfig) -> Result<Self, AggStateError> {
        let parsed = state::parse_snapshot(text)?;
        let engine = AggEngine::new(config);
        {
            let mut map = engine.write();
            for p in parsed {
                map.insert(p.name.clone(), Arc::new(Aggregate::from_parsed(p)));
            }
        }
        Ok(engine)
    }

    /// Merge a shipped snapshot into this engine: unknown aggregates are
    /// adopted wholesale, known ones shard-merge (operators must match).
    pub fn merge_serialized(&self, text: &str) -> Result<(), AggStateError> {
        let parsed = state::parse_snapshot(text)?;
        for p in parsed {
            let existing = self.get(&p.name);
            match existing {
                Some(agg) => agg.merge_parsed(&p)?,
                None => {
                    self.write()
                        .entry(p.name.clone())
                        .or_insert_with(|| Arc::new(Aggregate::from_parsed(p)));
                }
            }
        }
        Ok(())
    }

    /// A single-`f64` digest of the whole engine: the **exact** sum (via
    /// a superaccumulator) of every aggregate's finalized value, in name
    /// order. This is what an `agg` run manifest records as
    /// `result_bits`, and what `replay` re-derives.
    pub fn digest_bits(&self) -> u64 {
        let mut digest = repro_fp::Superaccumulator::new();
        for agg in self.aggregates() {
            digest.add(agg.finalize());
        }
        digest.to_f64().to_bits()
    }

    /// Publish `agg.*` gauges (engine totals and per-aggregate updates)
    /// plus the decision cache's `select.cache.*` traffic into `registry`.
    pub fn publish(&self, registry: &repro_obs::Registry) {
        let aggregates = self.aggregates();
        registry.gauge_set("agg.aggregates", aggregates.len() as f64);
        registry.gauge_set("agg.updates", self.total_updates() as f64);
        let shards: usize = aggregates.iter().map(|a| a.shard_count()).sum();
        registry.gauge_set("agg.shards", shards as f64);
        for agg in &aggregates {
            registry.gauge_set(&format!("agg.updates.{}", agg.name()), agg.updates() as f64);
            registry.gauge_set(&format!("agg.batches.{}", agg.name()), agg.batches() as f64);
        }
        self.cache.publish(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_fp::rng::DetRng;

    fn hostile(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let e = rng.random_range(-40i32..40) as f64;
                (rng.next_f64() - 0.5) * e.exp2()
            })
            .collect()
    }

    #[test]
    fn operator_mapping_clamps_to_shard_safe_operators() {
        assert_eq!(
            operator_for(Algorithm::PR, 3),
            OperatorKind::Binned { fold: 3 }
        );
        assert_eq!(
            operator_for(Algorithm::Standard, 2),
            OperatorKind::Binned { fold: 2 }
        );
        assert_eq!(operator_for(Algorithm::Distill, 3), OperatorKind::Exact);
    }

    #[test]
    fn sharded_ingest_matches_serial_sum_exactly_under_bitwise_budget() {
        let engine = AggEngine::new(AggConfig::default());
        let agg = engine.declare("t", &hostile(1, 64));
        let values = hostile(2, 4096);
        for (i, chunk) in values.chunks(64).enumerate() {
            agg.ingest(i as u64, chunk);
        }
        let mut serial = OperatorKind::Exact.new_state();
        if agg.op() == OperatorKind::Exact {
            serial.add_slice(&values);
        } else {
            let mut s = agg.op().new_state();
            s.add_slice(&values);
            serial = s;
        }
        assert_eq!(agg.finalize().to_bits(), serial.finalize().to_bits());
        assert_eq!(agg.updates(), 4096);
        assert_eq!(agg.batches(), 64);
    }

    #[test]
    fn finalize_is_invariant_to_shard_count_and_arrival_order() {
        let values = hostile(7, 2048);
        let mut reference: Option<u64> = None;
        for shards in [1usize, 4, 16] {
            for shuffle in [0u64, 9, 42] {
                let engine = AggEngine::new(AggConfig {
                    shards,
                    ..AggConfig::default()
                });
                let agg = engine.declare("t", &hostile(1, 64));
                let mut batches: Vec<(u64, &[f64])> = values
                    .chunks(32)
                    .enumerate()
                    .map(|(i, c)| (i as u64, c))
                    .collect();
                DetRng::seed_from_u64(shuffle).shuffle(&mut batches);
                for (client, batch) in batches {
                    agg.ingest(client, batch);
                }
                let bits = agg.finalize_bits();
                match reference {
                    None => reference = Some(bits),
                    Some(r) => assert_eq!(bits, r, "shards={shards} shuffle={shuffle}"),
                }
            }
        }
    }

    #[test]
    fn merge_tree_shape_does_not_matter() {
        let values = hostile(11, 1000);
        let build = |k: usize| -> Vec<ShardState> {
            let mut states: Vec<ShardState> =
                (0..k).map(|_| OperatorKind::Exact.new_state()).collect();
            for (i, chunk) in values.chunks(50).enumerate() {
                states[i % k].add_slice(chunk);
            }
            states
        };
        let stride = merge_tree(build(7)).unwrap().finalize().to_bits();
        // Sequential left fold — a maximally unbalanced "tree".
        let mut seq = build(7);
        let mut acc = seq.remove(0);
        for s in &seq {
            acc.merge(s);
        }
        assert_eq!(acc.finalize().to_bits(), stride);
        assert!(merge_tree(Vec::new()).is_none());
    }

    #[test]
    fn snapshot_restore_then_resume_is_bitwise_transparent() {
        let values = hostile(3, 2000);
        let (first, second) = values.split_at(1200);

        let full = AggEngine::new(AggConfig::default());
        let agg = full.declare("t", &hostile(1, 64));
        for (i, c) in values.chunks(40).enumerate() {
            agg.ingest(i as u64, c);
        }

        let partial = AggEngine::new(AggConfig::default());
        let agg_p = partial.declare("t", &hostile(1, 64));
        for (i, c) in first.chunks(40).enumerate() {
            agg_p.ingest(i as u64, c);
        }
        let snap = partial.serialize();
        let resumed = AggEngine::restore(&snap, AggConfig::default()).expect("restores");
        // Redeclaration after restore keeps the restored state.
        let agg_r = resumed.declare("t", &hostile(1, 64));
        for (i, c) in second.chunks(40).enumerate() {
            agg_r.ingest((30 + i) as u64, c);
        }
        assert_eq!(agg_r.finalize_bits(), agg.finalize_bits());
        assert_eq!(resumed.digest_bits(), full.digest_bits());
        assert_eq!(agg_r.updates(), 2000);
    }

    #[test]
    fn merge_serialized_combines_two_engines_exactly() {
        let values = hostile(5, 3000);
        let (left, right) = values.split_at(1000);
        let make = |vals: &[f64], shards: usize| {
            let engine = AggEngine::new(AggConfig {
                shards,
                ..AggConfig::default()
            });
            let agg = engine.declare("t", &hostile(1, 64));
            for (i, c) in vals.chunks(100).enumerate() {
                agg.ingest(i as u64, c);
            }
            engine
        };
        let a = make(left, 4);
        let b = make(right, 16); // different shard count on the remote
        a.merge_serialized(&b.serialize()).expect("merges");

        let whole = make(&values, 4);
        assert_eq!(a.digest_bits(), whole.digest_bits());
        assert_eq!(a.total_updates(), 3000);

        // Unknown aggregates are adopted wholesale.
        let fresh = AggEngine::new(AggConfig::default());
        fresh.merge_serialized(&whole.serialize()).expect("adopts");
        assert_eq!(fresh.digest_bits(), whole.digest_bits());
    }

    #[test]
    fn declare_caches_selector_decisions_per_fingerprint() {
        let engine = AggEngine::new(AggConfig::default());
        let sample = hostile(1, 256);
        engine.declare("a", &sample);
        engine.declare("b", &sample); // same shape → cache hit
        let counters = engine.cache().counters();
        assert_eq!(counters.inserts, 1);
        assert!(counters.hits >= 1, "{counters:?}");
        assert_eq!(engine.aggregates().len(), 2);
    }

    #[test]
    fn publish_exports_engine_gauges() {
        let engine = AggEngine::new(AggConfig::default());
        let agg = engine.declare("t", &[1.0, 2.0]);
        agg.ingest(0, &[1.0, 2.0, 3.0]);
        let registry = repro_obs::Registry::new();
        engine.publish(&registry);
        let rendered = registry.snapshot().render();
        assert!(rendered.contains("agg.updates"), "{rendered}");
        assert!(rendered.contains("agg.aggregates"), "{rendered}");
    }
}
