//! # `repro-agg` — sharded reproducible aggregation engine
//!
//! The serving layer the ROADMAP's north star asks for: thousands of
//! concurrent clients stream `f64` batches into **named aggregates**, and
//! every finalized sum is **bitwise identical** regardless of
//!
//! * client arrival order (any interleaving of batches),
//! * shard count (1, 4, 16, … partial states per aggregate),
//! * worker count (how many threads drain the ingest stream), and
//! * snapshot/restore (kill the engine mid-run, restore from the wire
//!   format, finish the run).
//!
//! Grounded in *Reproducible Floating-Point Aggregation in RDBMSs*
//! (Müller et al.): their one-pass binned aggregation is exactly
//! [`repro_sum::BinnedSum`], and this crate adds the concurrent serving
//! layer around it — sharding, a versioned wire format, merge trees over
//! shards, and a deterministic load generator.
//!
//! ## Why the invariance holds
//!
//! Every shard holds a [`ShardState`]: either a [`repro_sum::BinnedSum`]
//! (the paper's PR operator — pre-rounded bins, add/merge commutative and
//! associative by construction) or a [`repro_fp::Superaccumulator`] (an
//! exact Kulisch register — a *true* integer sum, for which commutativity
//! and associativity are inherited from integer addition). For both,
//! `add`/`merge` schedules form a free commutative monoid on the multiset
//! of deposited values: **any** partition of the input into shards, any
//! per-shard arrival order, and any merge-tree shape over the shards
//! reaches the same state, hence the same finalized bits. Rounding to
//! `f64` happens exactly once, after the final merge.
//!
//! ## The moving parts
//!
//! * [`ShardState`] / [`OperatorKind`] — the per-shard partial state and
//!   its `checkpoint`/`restore` text form ([`state`]).
//! * [`Aggregate`] — one named aggregate: `K` mutex-guarded shards,
//!   deterministic `client → shard` assignment, batched
//!   [`repro_sum::Accumulator::add_slice`] ingest on the SIMD hot path,
//!   stride-doubling [`merge_tree`] finalize ([`engine`]).
//! * [`AggEngine`] — the named-aggregate registry, with per-aggregate
//!   operators chosen by the `repro-select` selector under the engine's
//!   accuracy budget and cached in a [`repro_select::DecisionCache`].
//! * `repro-agg-state-v1` — the versioned wire format: serialize an
//!   engine (or one aggregate), ship it, [`AggEngine::merge_serialized`]
//!   it into a peer — and the strict parser that rejects anything
//!   malformed ([`state::parse_snapshot`]).
//! * [`loadgen`] — the seeded load generator: a deterministic schedule of
//!   `(aggregate, client, batch)` events, shuffled by a seed, drained by
//!   any number of worker threads.
//!
//! ```
//! use repro_agg::{AggConfig, AggEngine};
//!
//! let engine = AggEngine::new(AggConfig::default());
//! let agg = engine.declare("demo", &[1.0, 2.5e-3, -7.0]);
//! agg.ingest(0, &[1.0, 2.0, 3.0]);
//! agg.ingest(1, &[4.0]);
//! assert_eq!(agg.finalize(), 10.0);
//!
//! // The wire format round-trips the exact shard states.
//! let restored = AggEngine::restore(&engine.serialize(), AggConfig::default()).unwrap();
//! assert_eq!(
//!     restored.get("demo").unwrap().finalize().to_bits(),
//!     agg.finalize().to_bits(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod loadgen;
pub mod state;

pub use engine::{merge_tree, operator_for, AggConfig, AggEngine, Aggregate};
pub use loadgen::{aggregate_name, batch_values, batch_values_into, schedule, LoadEvent, LoadSpec};
pub use state::{
    parse_aggregate, parse_snapshot, AggStateError, OperatorKind, ParsedAggregate, ShardState,
    SNAPSHOT_SCHEMA, STATE_SCHEMA,
};
