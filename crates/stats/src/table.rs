//! Aligned-column ASCII tables and CSV output for the bench binaries.

use std::fmt::Write as _;

/// A simple right-aligned text table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned, padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "{h:>w$}", w = widths[i]);
            if i + 1 < cols {
                out.push_str("  ");
            }
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{cell:>w$}", w = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header + rows, comma-separated, no quoting — callers
    /// emit numeric data).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float in compact scientific notation for table cells.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["alg", "error"]);
        t.row(&["ST".into(), "1.5e-13".into()]);
        t.row(&["K".into(), "2e-16".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both data rows end aligned at the same column.
        assert_eq!(lines[2].len(), lines[2].trim_end().len());
        assert!(lines[0].contains("alg"));
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[1.5, 2.5]);
        assert_eq!(t.to_csv(), "a,b\n1.5,2.5\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(f64::NAN), "NaN");
        assert!(sci(1.23456e-13).starts_with("1.235e-13"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
