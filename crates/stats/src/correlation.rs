//! Correlation coefficients — Pearson and Spearman — used by the Figure 3
//! analysis ("does a cancellation census predict error magnitude?") and
//! available to downstream analyses of error/feature relationships.
//!
//! Spearman handles **ties by midranking** (the standard convention), which
//! matters here: cancellation counts are small integers with many ties, and
//! naive ordinal ranking would bias the coefficient by iteration order.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `0.0` when either sample is constant (undefined correlation) or
/// when the samples are shorter than 2.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    if a.len() < 2 {
        return 0.0;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Midranks of a sample: tied values all receive the average of the ranks
/// they span (1-based, as in the statistics literature).
pub fn midranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut ranks = vec![0.0; v.len()];
    let mut pos = 0;
    while pos < idx.len() {
        let mut end = pos + 1;
        while end < idx.len() && v[idx[end]] == v[idx[pos]] {
            end += 1;
        }
        // Positions pos..end (0-based) share the midrank of 1-based ranks.
        let mid = (pos + 1 + end) as f64 / 2.0;
        for &i in &idx[pos..end] {
            ranks[i] = mid;
        }
        pos = end;
    }
    ranks
}

/// Spearman rank correlation (Pearson on midranks). Ties are midranked.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    pearson(&midranks(a), &midranks(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_exact_line_is_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|x| -2.0 * x + 1.0).collect();
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases_return_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(
            pearson(&[5.0; 10], &(0..10).map(|i| i as f64).collect::<Vec<_>>()),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_rejects_length_mismatch() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn spearman_is_invariant_under_monotone_transforms() {
        let a: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x.exp().min(1e300)).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        // Pearson is NOT (the exp curve is wildly nonlinear).
        assert!(pearson(&a, &b) < 0.9);
    }

    #[test]
    fn midranks_average_over_ties() {
        // [10, 20, 20, 30]: ranks 1, 2.5, 2.5, 4.
        assert_eq!(
            midranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        // All tied: everyone gets (1+n)/2.
        assert_eq!(midranks(&[7.0; 5]), vec![3.0; 5]);
        assert!(midranks(&[]).is_empty());
    }

    #[test]
    fn spearman_with_heavy_ties_matches_hand_computation() {
        // x = [1,1,2,2], y = [1,2,3,4]: midranks x = [1.5,1.5,3.5,3.5],
        // y = [1,2,3,4]. Pearson of those is 2/sqrt(5) ≈ 0.894427.
        let rho = spearman(&[1.0, 1.0, 2.0, 2.0], &[1.0, 2.0, 3.0, 4.0]);
        assert!((rho - 2.0 / 5.0f64.sqrt()).abs() < 1e-12, "{rho}");
    }

    #[test]
    fn spearman_of_shuffled_independent_data_is_small() {
        // Deterministic quasi-random pairing: golden-ratio stride.
        let a: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.618_033_988_75).fract())
            .collect();
        let b: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.414_213_562_37).fract())
            .collect();
        assert!(spearman(&a, &b).abs() < 0.15);
    }
}
