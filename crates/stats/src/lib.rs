//! # `repro-stats` — descriptive statistics and figure-data rendering
//!
//! Small, dependency-free statistics used by every experiment in the
//! workspace:
//!
//! * [`descriptive`] — means, standard deviations, quantiles, and the
//!   five-number [`descriptive::Boxplot`] summaries behind the paper's
//!   Figure 7 panels.
//! * [`correlation`] — Pearson and tie-aware Spearman coefficients
//!   (Figure 3's cancellation-vs-error analysis).
//! * [`histogram`] — fixed-bin histograms (Figure 2's error distribution).
//! * [`grid`] — labelled 2-D grids of cell values with ASCII heat-map and
//!   CSV rendering (Figures 9–12).
//! * [`online`] — Welford streaming statistics with parallel merge, for
//!   experiments too long to buffer.
//! * [`table`] — aligned-column ASCII tables and CSV writers shared by all
//!   bench binaries.
//!
//! Everything here is deterministic and allocation-light; the experiments'
//! numbers flow through these types on their way to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod descriptive;
pub mod grid;
pub mod histogram;
pub mod online;
pub mod table;

pub use correlation::{pearson, spearman};
pub use descriptive::{
    mean, median_absolute_deviation, population_stddev, quantile, Boxplot, Summary,
};
pub use grid::Grid;
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use table::Table;
