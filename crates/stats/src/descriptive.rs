//! Means, standard deviations, quantiles, and boxplot summaries.

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    // Compensated accumulation: these statistics are *about* rounding
    // error, so the statistics themselves should not add any.
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in data {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum / data.len() as f64
}

/// Population standard deviation (÷ n); `0.0` for fewer than 1 element.
///
/// Used for the cell shading of the paper's Figures 9–11 ("we compute the
/// standard deviation of the errors and shade the cell according to that
/// value").
pub fn population_stddev(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    let var = mean(&data.iter().map(|&x| (x - m) * (x - m)).collect::<Vec<_>>());
    var.sqrt()
}

/// Sample standard deviation (÷ n−1); `0.0` for fewer than 2 elements.
pub fn sample_stddev(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    let ss: f64 = data.iter().map(|&x| (x - m) * (x - m)).sum();
    (ss / (data.len() - 1) as f64).sqrt()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of **sorted** data.
///
/// Panics in debug builds if the data is not sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "data must be sorted"
    );
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Linear-interpolation quantile of unsorted data (sorts a copy).
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut copy = data.to_vec();
    copy.sort_by(f64::total_cmp);
    quantile_sorted(&copy, q)
}

/// Median absolute deviation (MAD): a robust spread estimator, useful when
/// a calibration cell's error sample contains a few wild outliers that
/// would dominate the standard deviation.
pub fn median_absolute_deviation(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let med = quantile(data, 0.5);
    let deviations: Vec<f64> = data.iter().map(|x| (x - med).abs()).collect();
    quantile(&deviations, 0.5)
}

/// A compact numeric summary of one sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarize a sample (NaN-free input expected).
    pub fn of(data: &[f64]) -> Self {
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in data {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            n: data.len(),
            min: if data.is_empty() { f64::NAN } else { min },
            max: if data.is_empty() { f64::NAN } else { max },
            mean: mean(data),
            stddev: population_stddev(data),
        }
    }
}

/// Five-number boxplot summary (Tukey), the representation behind the
/// paper's Figure 6/7 panels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Boxplot {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Lower whisker: smallest observation within 1.5·IQR below Q1.
    pub whisker_lo: f64,
    /// Upper whisker: largest observation within 1.5·IQR above Q3.
    pub whisker_hi: f64,
    /// Number of observations outside the whiskers.
    pub outliers: usize,
}

impl Boxplot {
    /// Compute a boxplot summary of a sample. NaN values are rejected.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "boxplot of empty sample");
        assert!(
            data.iter().all(|x| !x.is_nan()),
            "boxplot input contains NaN"
        );
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.50);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1]);
        let outliers = sorted
            .iter()
            .filter(|&&x| x < lo_fence || x > hi_fence)
            .count();
        Self {
            min: sorted[0],
            q1,
            median,
            q3,
            max: sorted[sorted.len() - 1],
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }

    /// Box width (interquartile range) — the paper's visual proxy for
    /// "how much the sum varies across reduction trees".
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Full spread of the sample.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[5.0]), 5.0);
    }

    #[test]
    fn mean_is_compensated() {
        // 1e16 followed by many 1.0s: naive mean drifts, compensated doesn't.
        let mut data = vec![1e16];
        data.extend(std::iter::repeat(1.0).take(999));
        let expected = (1e16 + 999.0) / 1000.0;
        assert_eq!(mean(&data), expected);
    }

    #[test]
    fn stddev_of_constant_sample_is_zero() {
        assert_eq!(population_stddev(&[4.2; 50]), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(population_stddev(&data), 2.0);
        // Sample stddev is 2 * sqrt(8/7).
        let s = sample_stddev(&data);
        assert!((s - 2.0 * (8.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(quantile(&data, 0.5), 2.5);
        assert_eq!(quantile(&data, 0.25), 1.75);
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        let mut data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let clean_mad = median_absolute_deviation(&data);
        data.push(1e12);
        let dirty_mad = median_absolute_deviation(&data);
        // MAD barely moves; stddev explodes.
        assert!((dirty_mad - clean_mad).abs() <= 1.0);
        assert!(population_stddev(&data) > 1e9);
        assert_eq!(median_absolute_deviation(&[]), 0.0);
        assert_eq!(median_absolute_deviation(&[5.0]), 0.0);
    }

    #[test]
    fn boxplot_of_uniform_grid() {
        let data: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let b = Boxplot::of(&data);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.q1, 26.0);
        assert_eq!(b.q3, 76.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 101.0);
        assert_eq!(b.outliers, 0);
        assert_eq!(b.iqr(), 50.0);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        data.push(1e6);
        let b = Boxplot::of(&data);
        assert_eq!(b.outliers, 1);
        assert!(b.whisker_hi <= 100.0 + 1.5 * b.iqr());
        assert_eq!(b.max, 1e6);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn boxplot_rejects_nan() {
        let _ = Boxplot::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn summary_reports_extremes() {
        let s = Summary::of(&[3.0, -1.0, 4.0, 1.5]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 4.0);
    }
}
