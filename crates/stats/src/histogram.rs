//! Fixed-bin histograms, with optional logarithmic binning for error
//! magnitudes (which span many orders of magnitude in these experiments).

/// A histogram over `[lo, hi)` with equal-width bins, plus underflow and
/// overflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// New histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0, "invalid histogram bounds/bins");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Histogram over log10 magnitudes in `[10^lo_exp, 10^hi_exp)`, one bin
    /// per decade — the natural axis for summation-error magnitudes.
    pub fn log10_decades(lo_exp: i32, hi_exp: i32) -> Self {
        assert!(lo_exp < hi_exp);
        Self::new(lo_exp as f64, hi_exp as f64, (hi_exp - lo_exp) as usize)
    }

    /// Record a raw value.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Record `log10(|x|)` (for [`Histogram::log10_decades`] histograms);
    /// zero magnitudes count as underflow.
    pub fn record_log10(&mut self, x: f64) {
        let m = x.abs();
        if m == 0.0 {
            self.total += 1;
            self.underflow += 1;
        } else {
            self.record(m.log10());
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded observations (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Underflow and overflow counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * i as f64
    }

    /// Render as a horizontal ASCII bar chart, one line per bin.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(
                (c as usize * max_width)
                    .div_ceil(peak as usize)
                    .min(max_width),
            );
            let lo = self.bin_lo(i);
            let hi = self.bin_lo(i + 1);
            out.push_str(&format!("[{lo:>9.3e}, {hi:>9.3e})  {c:>8}  {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow:  {}\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
        assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn out_of_range_goes_to_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi edge is exclusive
        h.record(55.0);
        assert_eq!(h.outliers(), (1, 2));
    }

    #[test]
    fn log_decade_binning() {
        let mut h = Histogram::log10_decades(-16, 0);
        h.record_log10(1e-15); // decade [-15, -14) -> bin 1
        h.record_log10(-3e-8); // |.| in decade [-8, -7) -> bin 8
        h.record_log10(0.0); // underflow
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[8], 1);
        assert_eq!(h.outliers().0, 1);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert!(s.lines().count() >= 2);
    }
}
