//! Streaming (Welford) statistics: numerically stable running mean and
//! variance for experiments too long to buffer — and, fittingly for this
//! workspace, mergeable across partial streams.

/// Numerically stable streaming mean/variance (Welford's algorithm, with
/// Chan et al.'s parallel merge).
///
/// ```
/// use repro_stats::OnlineStats;
/// let stats: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
///     .into_iter()
///     .collect();
/// assert_eq!(stats.mean(), 5.0);
/// assert_eq!(stats.population_stddev(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the current mean.
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty stream.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge a sibling stream (Chan/Golub/LeVeque pairwise update).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty stream).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation (÷ n−1).
    pub fn sample_stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN` for an empty stream).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` for an empty stream).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn matches_batch_statistics() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 31) % 97) as f64 - 48.0).collect();
        let online: OnlineStats = data.iter().copied().collect();
        assert_eq!(online.count(), 1000);
        assert!((online.mean() - descriptive::mean(&data)).abs() < 1e-12);
        assert!((online.population_stddev() - descriptive::population_stddev(&data)).abs() < 1e-9);
        assert_eq!(
            online.min(),
            *data.iter().min_by(|a, b| a.total_cmp(b)).unwrap()
        );
        assert_eq!(
            online.max(),
            *data.iter().max_by(|a, b| a.total_cmp(b)).unwrap()
        );
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 100.0).collect();
        let b_data: Vec<f64> = (0..700).map(|i| (i as f64).cos() * 3.0 + 50.0).collect();
        let mut a: OnlineStats = a_data.iter().copied().collect();
        let b: OnlineStats = b_data.iter().copied().collect();
        a.merge(&b);
        let whole: OnlineStats = a_data.iter().chain(b_data.iter()).copied().collect();
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_streams() {
        let mut a = OnlineStats::new();
        let b: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic catastrophic case for the naive sum-of-squares formula.
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!(
            (s.population_variance() - 0.25).abs() < 1e-6,
            "{}",
            s.population_variance()
        );
    }

    #[test]
    fn empty_stream_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_stddev(), 0.0);
        assert_eq!(s.sample_stddev(), 0.0);
        assert!(s.min().is_nan() && s.max().is_nan());
    }
}
