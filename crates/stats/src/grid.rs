//! Labelled 2-D grids of cell values, with the ASCII heat-map and CSV
//! rendering used to reproduce the paper's Figures 9–12.
//!
//! The paper "represent\[s\] the spaces of (k, dr), (n, dr), and (n, k) as a
//! grid of cells" and shades each cell by the standard deviation of the
//! errors observed there. [`Grid`] is that artifact: rows × cols of `f64`
//! cells plus axis labels; [`Grid::render_heat`] shades cells on a
//! logarithmic scale the way the paper's gray-scale plots do.

use std::fmt::Write as _;

/// A rows × cols grid of `f64` cells with axis labels.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Label of the row axis (e.g. "k").
    pub row_axis: String,
    /// Label of the column axis (e.g. "dr").
    pub col_axis: String,
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    cells: Vec<f64>, // row-major
}

impl Grid {
    /// New grid with all cells `NaN` (unset).
    pub fn new(
        row_axis: impl Into<String>,
        col_axis: impl Into<String>,
        row_labels: Vec<String>,
        col_labels: Vec<String>,
    ) -> Self {
        let cells = vec![f64::NAN; row_labels.len() * col_labels.len()];
        Self {
            row_axis: row_axis.into(),
            col_axis: col_axis.into(),
            row_labels,
            col_labels,
            cells,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_labels.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.col_labels.len()
    }

    /// Set cell `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let c = self.cols();
        self.cells[row * c + col] = value;
    }

    /// Get cell `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.cells[row * self.cols() + col]
    }

    /// Row labels.
    pub fn row_labels(&self) -> &[String] {
        &self.row_labels
    }

    /// Column labels.
    pub fn col_labels(&self) -> &[String] {
        &self.col_labels
    }

    /// Iterate `(row, col, value)` over set cells.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols();
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// CSV rendering: header = column labels, one row per row label.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}\\{}", self.row_axis, self.col_axis);
        for c in &self.col_labels {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for (r, label) in self.row_labels.iter().enumerate() {
            let _ = write!(out, "{label}");
            for c in 0..self.cols() {
                let _ = write!(out, ",{:e}", self.get(r, c));
            }
            out.push('\n');
        }
        out
    }

    /// ASCII heat map: cells shaded by `log10` of their value across the
    /// grid's dynamic range (darker = larger), mirroring the paper's
    /// gray-scale figures. NaN cells render as `··`, exact zeros as `0`.
    pub fn render_heat(&self) -> String {
        const SHADES: [&str; 6] = ["  ", "░░", "▒▒", "▓▓", "██", "██"];
        // Establish the log range over positive cells.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.cells {
            if v.is_finite() && v > 0.0 {
                lo = lo.min(v.log10());
                hi = hi.max(v.log10());
            }
        }
        let span = (hi - lo).max(1e-9);
        let label_w = self
            .row_labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(1)
            .max(self.row_axis.len());

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>label_w$} | {}  (rows: {}, cols: {})",
            self.row_axis, self.col_axis, self.row_axis, self.col_axis
        );
        let _ = write!(out, "{:>label_w$} |", "");
        for c in &self.col_labels {
            let _ = write!(out, " {c:>8}");
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{}-+-{}",
            "-".repeat(label_w),
            "-".repeat(9 * self.cols())
        );
        for (r, label) in self.row_labels.iter().enumerate() {
            let _ = write!(out, "{label:>label_w$} |");
            for c in 0..self.cols() {
                let v = self.get(r, c);
                let cell = if v.is_nan() {
                    "      ··".to_string()
                } else if v == 0.0 {
                    "       0".to_string()
                } else {
                    let t = ((v.log10() - lo) / span * 4.0).round().clamp(0.0, 5.0);
                    format!("{:>6}{}", format_short(v), SHADES[t as usize])
                };
                let _ = write!(out, " {cell}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "shading: log10 scale over [{:.2e}, {:.2e}]",
            10f64.powf(lo),
            10f64.powf(hi)
        );
        out
    }
}

/// Compact scientific formatting for heat-map cells (e.g. `3e-13`).
fn format_short(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let mut exp = v.abs().log10().floor() as i32;
    let mut mant = v / 10f64.powi(exp);
    if mant.abs().round() >= 10.0 {
        mant /= 10.0;
        exp += 1;
    }
    format!("{mant:.0}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn set_get_round_trip() {
        let mut g = Grid::new("k", "dr", labels(&["1", "1e8"]), labels(&["0", "16", "32"]));
        g.set(1, 2, 3.5e-13);
        assert_eq!(g.get(1, 2), 3.5e-13);
        assert!(g.get(0, 0).is_nan());
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut g = Grid::new("n", "dr", labels(&["1000"]), labels(&["0", "8"]));
        g.set(0, 0, 1e-15);
        g.set(0, 1, 2e-14);
        let csv = g.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("n\\dr,0,8"));
        assert!(lines[1].starts_with("1000,1e-15,2e-14"));
    }

    #[test]
    fn heat_map_renders_every_cell() {
        let mut g = Grid::new("k", "dr", labels(&["1", "1e16"]), labels(&["0", "32"]));
        g.set(0, 0, 1e-16);
        g.set(0, 1, 1e-14);
        g.set(1, 0, 1e-10);
        g.set(1, 1, 1e-4);
        let heat = g.render_heat();
        assert!(heat.contains("1e16"));
        assert!(heat.contains("shading"));
        // Largest cell must be darker than the smallest.
        assert!(heat.contains("██"));
    }

    #[test]
    fn iter_visits_row_major() {
        let mut g = Grid::new("a", "b", labels(&["r0", "r1"]), labels(&["c0"]));
        g.set(0, 0, 1.0);
        g.set(1, 0, 2.0);
        let v: Vec<(usize, usize, f64)> = g.iter().collect();
        assert_eq!(v, vec![(0, 0, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn zero_and_nan_cells_render_specially() {
        let mut g = Grid::new("x", "y", labels(&["r"]), labels(&["c0", "c1", "c2"]));
        g.set(0, 0, 0.0);
        g.set(0, 1, 5e-13);
        let heat = g.render_heat();
        assert!(heat.contains("0"));
        assert!(heat.contains("··"));
    }
}
