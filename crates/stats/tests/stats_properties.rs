//! Property tests for the statistics layer: the experiments' conclusions are
//! only as sound as these summaries.

use proptest::prelude::*;
use repro_stats::descriptive::{
    mean, population_stddev, quantile, quantile_sorted, sample_stddev, Boxplot, Summary,
};
use repro_stats::{Grid, Histogram};

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    /// The mean lies within [min, max] and is translation-equivariant.
    #[test]
    fn mean_properties(data in sample(), shift in -1e3f64..1e3) {
        let m = mean(&data);
        let s = Summary::of(&data);
        prop_assert!(m >= s.min - 1e-9 && m <= s.max + 1e-9);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - (m + shift)).abs() < 1e-6);
    }

    /// Standard deviations are nonnegative, zero iff constant, and
    /// scale-equivariant.
    #[test]
    fn stddev_properties(data in sample(), scale in 0.1f64..10.0) {
        let sd = population_stddev(&data);
        prop_assert!(sd >= 0.0);
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        let sd_scaled = population_stddev(&scaled);
        prop_assert!((sd_scaled - sd * scale).abs() <= 1e-9 * (1.0 + sd * scale));
        // Sample stddev >= population stddev (n/(n-1) inflation).
        if data.len() >= 2 {
            prop_assert!(sample_stddev(&data) >= sd - 1e-12);
        }
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantile_monotone(data in sample(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        let qa = quantile(&data, lo);
        let qb = quantile(&data, hi);
        prop_assert!(qa <= qb + 1e-12);
        let s = Summary::of(&data);
        prop_assert!(quantile(&data, 0.0) == s.min && quantile(&data, 1.0) == s.max);
    }

    /// Boxplots are internally ordered and count outliers consistently.
    #[test]
    fn boxplot_ordering(data in sample()) {
        let b = Boxplot::of(&data);
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median);
        prop_assert!(b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.whisker_lo >= b.min && b.whisker_hi <= b.max);
        prop_assert!(b.outliers <= data.len());
        prop_assert!(b.iqr() >= 0.0 && b.range() >= 0.0);
    }

    /// Histograms conserve counts: bins + underflow + overflow == total.
    #[test]
    fn histogram_conserves_mass(data in sample()) {
        let mut h = Histogram::new(-1e5, 1e5, 17);
        for &x in &data {
            h.record(x);
        }
        let binned: u64 = h.counts().iter().sum();
        let (under, over) = h.outliers();
        prop_assert_eq!(binned + under + over, h.total());
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    /// Grid CSV renders every cell it was given.
    #[test]
    fn grid_csv_is_complete(rows in 1usize..8, cols in 1usize..8, fill in -1e3f64..1e3) {
        let row_labels: Vec<String> = (0..rows).map(|r| format!("r{r}")).collect();
        let col_labels: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        let mut g = Grid::new("a", "b", row_labels, col_labels);
        for r in 0..rows {
            for c in 0..cols {
                g.set(r, c, fill + (r * cols + c) as f64);
            }
        }
        let csv = g.to_csv();
        prop_assert_eq!(csv.lines().count(), rows + 1);
        prop_assert!(csv.lines().skip(1).all(|l| l.split(',').count() == cols + 1));
        // And every cell value round-trips through the CSV text.
        for (r, line) in csv.lines().skip(1).enumerate() {
            for (c, cell) in line.split(',').skip(1).enumerate() {
                let parsed: f64 = cell.parse().unwrap();
                prop_assert_eq!(parsed.to_bits(), g.get(r, c).to_bits());
            }
        }
    }

    /// quantile_sorted and quantile agree.
    #[test]
    fn sorted_and_unsorted_quantiles_agree(data in sample(), q in 0.0f64..1.0) {
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(
            quantile(&data, q).to_bits(),
            quantile_sorted(&sorted, q).to_bits()
        );
    }
}

fn paired() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..100).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e6f64..1e6, n),
            prop::collection::vec(-1e6f64..1e6, n),
        )
    })
}

proptest! {
    /// Correlation coefficients live in [−1, 1] and are symmetric in their
    /// arguments.
    #[test]
    fn correlations_are_bounded_and_symmetric((a, b) in paired()) {
        use repro_stats::correlation::{pearson, spearman};
        for f in [pearson, spearman] {
            let r = f(&a, &b);
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r), "{r}");
            prop_assert!((r - f(&b, &a)).abs() <= 1e-12);
        }
    }

    /// Spearman is invariant under strictly increasing transforms of either
    /// argument; Pearson under affine maps with positive slope.
    #[test]
    fn correlation_invariances((a, b) in paired(), scale in 0.1f64..10.0, shift in -1e3f64..1e3) {
        use repro_stats::correlation::{pearson, spearman};
        let cubed: Vec<f64> = a.iter().map(|x| x * x * x).collect();
        prop_assert!((spearman(&cubed, &b) - spearman(&a, &b)).abs() <= 1e-9);
        let affine: Vec<f64> = a.iter().map(|x| scale * x + shift).collect();
        prop_assert!((pearson(&affine, &b) - pearson(&a, &b)).abs() <= 1e-6);
    }

    /// Midranks are a permutation-consistent relabeling: they sum to
    /// n(n+1)/2 and preserve the order of distinct values.
    #[test]
    fn midranks_are_a_valid_ranking(a in prop::collection::vec(-1e3f64..1e3, 1..80)) {
        let r = repro_stats::correlation::midranks(&a);
        let total: f64 = r.iter().sum();
        let n = a.len() as f64;
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() <= 1e-9);
        for i in 0..a.len() {
            for j in 0..a.len() {
                if a[i] < a[j] {
                    prop_assert!(r[i] < r[j]);
                } else if a[i] == a[j] {
                    prop_assert_eq!(r[i], r[j]);
                }
            }
        }
    }
}
