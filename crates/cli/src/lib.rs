//! # `repro-cli` — the `repro-reduce` command
//!
//! A thin, dependency-free command-line front end over `repro-core`:
//!
//! ```text
//! repro-reduce sum     [--alg ST|K|N|PW|CP|DD|PR|DS] [--file F] [VALUES...]
//! repro-reduce profile [--file F] [VALUES...]
//! repro-reduce select  --tolerance T [--relative|--bitwise] [--file F] [VALUES...]
//! repro-reduce verify  --tolerance T [--bitwise] [--file F] [VALUES...]
//! repro-reduce compare [--file F] [VALUES...]
//! repro-reduce gen     --n N [--k K|inf] [--dr D] [--seed S]
//! repro-reduce dot     --file-x FX --file-y FY [--alg ST|CP|PR]
//! repro-reduce calibrate [--n N] [--perms P] [--seed S]
//! repro-reduce tree    [--shape balanced|serial|random|binomial] [--alg A]
//!                      [--dot] [--file F] [VALUES...]
//! repro-reduce chaos   [--ranks R] [--n N] [--dr D] [--seed S] [--drop P]
//!                      [--delay P] [--dup P] [--reorder P] [--kill K]
//!                      [--topology binomial|flat|chain]
//! repro-reduce trace reduce [--n N] [--k K|inf] [--dr D] [--seed S]
//!                      [--tolerance T] [--bitwise] [--wall] [--telemetry]
//!                      [--sample N] [--perturb I] [--file F] [VALUES...]
//! repro-reduce trace chaos  [--ranks R] [--n N] [--dr D] [--seed S] [--drop P]
//!                      [--delay P] [--dup P] [--reorder P] [--kill K]
//!                      [--telemetry] [--sample N] [--perturb I]
//! repro-reduce trace check  --file F
//! repro-reduce trace diff   A.jsonl B.jsonl
//! repro-reduce report  [--format prom|html] [--n N] [--k K|inf] [--dr D]
//!                      [--seed S] [--sample N] [--file F] [VALUES...]
//! repro-reduce bench   [--out PATH|-]
//! repro-reduce simd    [--check scalar|sse2|avx2]
//! repro-reduce agg loadgen [--aggregates A] [--clients C] [--batches B]
//!                      [--batch-len L] [--shards K] [--workers W]
//!                      [--seed S] [--shuffle X]
//! repro-reduce agg serve   (loadgen flags) [--restore PATH] [--snapshot PATH]
//!                      [--start-at I] [--stop-at I] [--manifest PATH]
//! repro-reduce agg bench   (loadgen flags; sweeps shards 1/4/16)
//! repro-reduce agg check   --file F
//! ```
//!
//! Values come from positional arguments and/or `--file` (whitespace- or
//! newline-separated floats; `-` reads stdin). All commands are pure
//! functions from arguments + input to an output string, so the entire CLI
//! is unit-testable without spawning processes.
//!
//! The `trace` family emits JSON Lines observability events (one per line)
//! followed by `#`-prefixed human summary lines; `trace check` re-parses a
//! saved trace and validates the schema contract. `trace chaos` runs a
//! deterministic communication script, so two runs with the same seed
//! produce byte-identical event streams.
//!
//! `--telemetry` adds numerical-accuracy telemetry to a trace: per-node
//! `node` events carrying the partial sum bits, the running Higham error
//! bound, and (at `--sample`d nodes) the exact ulp deviation against a
//! superaccumulator shadow. It is **off by default** — an untelemetried
//! trace is byte-identical to one from before the feature existed.
//! `--perturb I` nudges input `I` up by one ulp, the forensic scenario:
//! `trace diff` aligns two traces by plan-derived node id, reports the
//! first divergent node, and walks the divergence to its leaf-interval
//! origin (exit status 1 when the traces diverge). `report` renders the
//! metrics registry of one telemetried run as Prometheus text exposition
//! or as a self-contained zero-dependency HTML page.
//!
//! The `agg` family drives the sharded aggregation engine (`repro-agg`):
//! `loadgen` runs the deterministic client swarm and prints one
//! byte-comparable `agg <name> <bits> …` line per aggregate plus a
//! `digest <bits>` line — identical for any `--shuffle`, `--shards`, or
//! `--workers`. `serve` adds snapshot/restore (`repro-agg-snapshot-v1`)
//! and kill-point control, and ends a *finished* run with the same
//! `# manifest: {…}` trailer the traced commands emit, so `replay`
//! re-executes the aggregation and verifies the digest bitwise. `agg
//! bench` sweeps shard counts and fails (exit 1) on any digest
//! divergence; `agg check` strict-parses a saved state document (exit 2
//! on schema violations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use repro_core::obs::{FaultSpec, RunManifest};
use repro_core::prelude::*;
use repro_core::select::VerifiedReducer;
use repro_core::stats::{table::sci, Table};

/// CLI errors: user-facing messages, no panics for bad input.
///
/// `code` is the process exit status the binary maps the error to, so
/// scripts can tell *why* a command failed without parsing stderr:
/// `1` for ordinary failures and numerical divergence (`trace diff`
/// finding divergent nodes, `replay` not matching bitwise), `2` for
/// parse/schema errors (a malformed trace or manifest, an unsupported
/// schema version, an invalid environment).
#[derive(Debug, PartialEq)]
pub struct CliError {
    /// The user-facing message.
    pub msg: String,
    /// Process exit code: 1 = failure/divergence, 2 = parse/schema error.
    pub code: i32,
}

impl CliError {
    /// An ordinary failure or numerical divergence (exit code 1).
    pub fn new(msg: impl Into<String>) -> CliError {
        CliError {
            msg: msg.into(),
            code: 1,
        }
    }

    /// A parse/schema error (exit code 2).
    pub fn schema(msg: impl Into<String>) -> CliError {
        CliError {
            msg: msg.into(),
            code: 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError::new(msg)
}

fn err_schema(msg: impl Into<String>) -> CliError {
    CliError::schema(msg)
}

/// Validate the `REPRO_SIMD` dispatch environment: `Ok` when it resolves to
/// a runnable tier, `Err` with the structured [`repro_core::fp::simd::TierError`]
/// rendered as a user-facing message otherwise. The binary calls this before
/// dispatching any command so an invalid override is a clean startup
/// diagnostic (nonzero exit) instead of a mid-run library panic or a silent
/// fallback.
pub fn check_dispatch_env() -> Result<(), CliError> {
    repro_core::fp::simd::try_active_tier()
        .map(|_| ())
        .map_err(|e| err(e.to_string()))
}

/// Usage text.
pub const USAGE: &str = "\
repro-reduce — reproducible floating-point reductions

USAGE:
  repro-reduce sum     [--alg ST|K|N|PW|CP|DD|PR|DS] [--hex] [--file F] [VALUES...]
  repro-reduce profile [--file F] [VALUES...]
  repro-reduce select  --tolerance T [--relative|--bitwise] [--explain]
                       [--file F] [VALUES...]
  repro-reduce verify  [--tolerance T] [--bitwise] [--file F] [VALUES...]
  repro-reduce compare [--file F] [VALUES...]
  repro-reduce gen     --n N [--k K|inf] [--dr D] [--seed S]
  repro-reduce dot     --file-x FX --file-y FY [--alg ST|CP|PR]
  repro-reduce calibrate [--n N] [--perms P] [--seed S]
  repro-reduce tree    [--shape balanced|serial|random|binomial] [--alg A]
                       [--dot] [--seed S] [--file F] [VALUES...]
  repro-reduce chaos   [--ranks R] [--n N] [--dr D] [--seed S] [--drop P]
                       [--delay P] [--dup P] [--reorder P] [--kill K]
                       [--topology binomial|flat|chain]
  repro-reduce trace reduce [--n N] [--k K|inf] [--dr D] [--seed S]
                       [--tolerance T] [--bitwise] [--wall] [--telemetry]
                       [--sample N] [--perturb I] [--file F] [VALUES...]
  repro-reduce trace chaos  [--ranks R] [--n N] [--dr D] [--seed S] [--drop P]
                       [--delay P] [--dup P] [--reorder P] [--kill K]
                       [--telemetry] [--sample N] [--perturb I]
  repro-reduce trace check  --file F
  repro-reduce trace diff   A.jsonl B.jsonl
  repro-reduce report  [--format prom|html] [--n N] [--k K|inf] [--dr D]
                       [--seed S] [--sample N] [--file F] [VALUES...]
  repro-reduce bench   [--out PATH|-]
  repro-reduce simd    [--check scalar|sse2|avx2]
  repro-reduce replay  MANIFEST.json
  repro-reduce flight  [--dump DIR]
  repro-reduce agg loadgen [--aggregates A] [--clients C] [--batches B]
                       [--batch-len L] [--shards K] [--workers W]
                       [--seed S] [--shuffle X]
  repro-reduce agg serve   (loadgen flags) [--restore PATH] [--snapshot PATH]
                       [--start-at I] [--stop-at I] [--manifest PATH]
  repro-reduce agg bench   (loadgen flags; sweeps shards 1/4/16)
  repro-reduce agg check   --file F

Values come from positional args and/or --file (whitespace-separated;
'-' = stdin). trace emits JSONL events plus '#' summary lines; with the
same seed, 'trace chaos' event streams are byte-identical across runs.
--telemetry adds per-node accuracy events (partial sums, Higham bounds,
sampled exact-ulp deviations); 'trace diff' aligns two traces by node id
and walks any divergence to its leaf origin; 'report' renders the
metrics registry as Prometheus text or HTML.

sum / trace reduce / trace chaos end with a '# manifest: {...}' line
capturing the run's full determinism context (--manifest PATH also
writes it to a file); 'replay' re-executes a manifest (or the manifest
line of a saved trace) and succeeds only on bitwise-identical results.
'flight' shows the always-on flight recorder's rings and overhead
accounting; --dump writes a postmortem.jsonl. REPRO_FLIGHT=off disables
the recorder; REPRO_POSTMORTEM=DIR enables incident dumps.

'agg' drives the sharded aggregation engine: 'loadgen' runs the seeded
client swarm and prints byte-comparable 'agg'/'digest' lines (identical
for any --shuffle/--shards/--workers); 'serve' adds snapshot/restore +
kill-point control and ends finished runs with a replayable manifest;
'agg bench' sweeps shards 1/4/16 and exits 1 on digest divergence;
'agg check' strict-parses a saved state document (exit 2 when invalid).
Defaults scale with REPRO_SCALE.

Exit codes: 0 = success; 1 = failure or numerical divergence ('trace
diff' divergent nodes, 'replay' mismatch); 2 = parse/schema error
(malformed trace or manifest, unsupported schema, invalid REPRO_SIMD).";

/// Parsed global options shared by value-consuming commands.
#[derive(Debug, Default)]
struct Opts {
    values: Vec<f64>,
    alg: Option<String>,
    file_x: Option<String>,
    file_y: Option<String>,
    perms: u64,
    tolerance: Option<f64>,
    relative: bool,
    bitwise: bool,
    hex: bool,
    shape: Option<String>,
    dot: bool,
    explain: bool,
    n: Option<usize>,
    k: Option<f64>,
    dr: u32,
    seed: u64,
    ranks: Option<usize>,
    drop: f64,
    delay: f64,
    dup: f64,
    reorder: f64,
    kill: usize,
    topology: Option<String>,
    wall: bool,
    telemetry: bool,
    sample: Option<u64>,
    perturb: Option<usize>,
    format: Option<String>,
    out: Option<String>,
    manifest: Option<String>,
}

fn parse_opts(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<Opts, CliError> {
    let mut o = Opts {
        dr: 0,
        seed: 2015,
        perms: 20,
        ..Default::default()
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let mut take = |name: &str| -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        match a.as_str() {
            "--alg" => o.alg = Some(take("--alg")?),
            "--file" => {
                let path = take("--file")?;
                let text = read_file(&path)?;
                for tok in text.split_whitespace() {
                    o.values.push(
                        tok.parse()
                            .map_err(|_| err(format!("bad value in file: {tok:?}")))?,
                    );
                }
            }
            "--tolerance" => {
                let t = take("--tolerance")?;
                o.tolerance = Some(
                    t.parse()
                        .map_err(|_| err(format!("bad tolerance: {t:?}")))?,
                )
            }
            "--relative" => o.relative = true,
            "--bitwise" => o.bitwise = true,
            "--hex" => o.hex = true,
            "--shape" => o.shape = Some(take("--shape")?),
            "--dot" => o.dot = true,
            "--explain" => o.explain = true,
            "--n" => {
                let v = take("--n")?;
                o.n = Some(v.parse().map_err(|_| err(format!("bad --n: {v:?}")))?)
            }
            "--k" => {
                let v = take("--k")?;
                o.k = Some(if v == "inf" {
                    f64::INFINITY
                } else {
                    v.parse().map_err(|_| err(format!("bad --k: {v:?}")))?
                })
            }
            "--dr" => {
                let v = take("--dr")?;
                o.dr = v.parse().map_err(|_| err(format!("bad --dr: {v:?}")))?
            }
            "--file-x" => o.file_x = Some(take("--file-x")?),
            "--file-y" => o.file_y = Some(take("--file-y")?),
            "--perms" => {
                let v = take("--perms")?;
                o.perms = v.parse().map_err(|_| err(format!("bad --perms: {v:?}")))?
            }
            "--seed" => {
                let v = take("--seed")?;
                o.seed = v.parse().map_err(|_| err(format!("bad --seed: {v:?}")))?
            }
            "--ranks" => {
                let v = take("--ranks")?;
                o.ranks = Some(v.parse().map_err(|_| err(format!("bad --ranks: {v:?}")))?)
            }
            "--drop" => {
                let v = take("--drop")?;
                o.drop = v.parse().map_err(|_| err(format!("bad --drop: {v:?}")))?
            }
            "--delay" => {
                let v = take("--delay")?;
                o.delay = v.parse().map_err(|_| err(format!("bad --delay: {v:?}")))?
            }
            "--dup" => {
                let v = take("--dup")?;
                o.dup = v.parse().map_err(|_| err(format!("bad --dup: {v:?}")))?
            }
            "--reorder" => {
                let v = take("--reorder")?;
                o.reorder = v
                    .parse()
                    .map_err(|_| err(format!("bad --reorder: {v:?}")))?
            }
            "--kill" => {
                let v = take("--kill")?;
                o.kill = v.parse().map_err(|_| err(format!("bad --kill: {v:?}")))?
            }
            "--topology" => o.topology = Some(take("--topology")?),
            "--wall" => o.wall = true,
            "--telemetry" => o.telemetry = true,
            "--sample" => {
                let v = take("--sample")?;
                o.sample = Some(v.parse().map_err(|_| err(format!("bad --sample: {v:?}")))?)
            }
            "--perturb" => {
                let v = take("--perturb")?;
                o.perturb = Some(
                    v.parse()
                        .map_err(|_| err(format!("bad --perturb: {v:?}")))?,
                )
            }
            "--format" => o.format = Some(take("--format")?),
            "--out" => o.out = Some(take("--out")?),
            "--manifest" => o.manifest = Some(take("--manifest")?),
            _ if a.starts_with("--") => return Err(err(format!("unknown option {a}"))),
            _ => o
                .values
                .push(a.parse().map_err(|_| err(format!("bad value: {a:?}")))?),
        }
        i += 1;
    }
    Ok(o)
}

fn parse_algorithm(s: &str) -> Result<Algorithm, CliError> {
    match s.to_ascii_uppercase().as_str() {
        "ST" => Ok(Algorithm::Standard),
        "K" => Ok(Algorithm::Kahan),
        "N" => Ok(Algorithm::Neumaier),
        "PW" => Ok(Algorithm::Pairwise),
        "CP" => Ok(Algorithm::Composite),
        "DD" => Ok(Algorithm::DoubleDouble),
        "PR" => Ok(Algorithm::PR),
        "DS" => Ok(Algorithm::Distill),
        other => Err(err(format!(
            "unknown algorithm {other:?} (expected ST|K|N|PW|CP|DD|PR|DS)"
        ))),
    }
}

fn tolerance_of(o: &Opts) -> Result<Tolerance, CliError> {
    if o.bitwise {
        return Ok(Tolerance::Bitwise);
    }
    let t = o
        .tolerance
        .ok_or_else(|| err("--tolerance (or --bitwise) is required"))?;
    Ok(if o.relative {
        Tolerance::RelativeSpread(t)
    } else {
        Tolerance::AbsoluteSpread(t)
    })
}

fn need_values(o: &Opts) -> Result<&[f64], CliError> {
    if o.values.is_empty() {
        Err(err("no input values (pass numbers or --file)"))
    } else {
        Ok(&o.values)
    }
}

/// Resolve `--telemetry` / `--sample` into a sampling policy. Telemetry is
/// strictly opt-in: without `--telemetry` the config is off and the traced
/// commands stay byte-identical to their pre-telemetry output.
fn telemetry_cfg(o: &Opts) -> repro_core::obs::TelemetryConfig {
    use repro_core::obs::TelemetryConfig;
    if !o.telemetry {
        TelemetryConfig::off()
    } else {
        match o.sample {
            Some(every) => TelemetryConfig::sampled(every),
            None => TelemetryConfig::full(),
        }
    }
}

/// Apply `--perturb I`: nudge input `I` by exactly one ulp (one step in the
/// bit representation). The forensic scenario — a single least-significant
/// perturbation whose propagation `trace diff` then localizes.
fn apply_perturb(values: &mut [f64], perturb: Option<usize>) -> Result<(), CliError> {
    let Some(idx) = perturb else { return Ok(()) };
    let v = *values.get(idx).ok_or_else(|| {
        err(format!(
            "--perturb {idx} out of range (only {} values)",
            values.len()
        ))
    })?;
    values[idx] = f64::from_bits(v.to_bits() + 1);
    Ok(())
}

/// Initialize the process-global flight recorder from the environment
/// (`REPRO_FLIGHT`, `REPRO_POSTMORTEM`) and install the panic hook that
/// dumps a post-mortem when the process dies mid-reduction. The binary
/// calls this once before dispatching; it is idempotent.
pub fn init_flight_from_env() {
    let _ = repro_core::obs::flight::global();
    repro_core::obs::flight::install_panic_hook();
}

/// The `REPRO_*` environment variables that can change a run's numerics
/// or its observability envelope — the set a manifest must capture for
/// the replay contract to hold across shells.
const MANIFEST_ENV_VARS: [&str; 5] = [
    "REPRO_FLIGHT",
    "REPRO_POSTMORTEM",
    "REPRO_RUNTIME_WORKERS",
    "REPRO_SCALE",
    "REPRO_SIMD",
];

/// Capture the manifest-relevant environment: only variables that are
/// actually set, in fixed (sorted) order so the manifest is deterministic.
fn manifest_env() -> Vec<(String, String)> {
    MANIFEST_ENV_VARS
        .iter()
        .filter_map(|name| std::env::var(name).ok().map(|v| (name.to_string(), v)))
        .collect()
}

/// The active SIMD tier's label for manifest embedding. Dispatch was
/// validated at startup, so an error here degenerates to a marker rather
/// than failing the run.
fn simd_tier_label() -> String {
    repro_core::fp::simd::try_active_tier()
        .map(|t| t.label().to_string())
        .unwrap_or_else(|_| "invalid".to_string())
}

/// Render the run's tolerance the way manifests spell it: `bitwise`,
/// `abs:<v>`, or `rel:<v>` (mirrors the `tolerance_of` defaulting used by
/// the traced commands: no `--tolerance` means bitwise).
fn manifest_tolerance(o: &Opts) -> String {
    match o.tolerance {
        _ if o.bitwise => "bitwise".to_string(),
        None => "bitwise".to_string(),
        Some(t) if o.relative => format!("rel:{t}"),
        Some(t) => format!("abs:{t}"),
    }
}

/// Start a manifest for one CLI workload with everything that is known
/// before the reduction runs: shape knobs, tolerance, environment, SIMD
/// tier, telemetry policy, and the input itself (embedded as exact bit
/// patterns when explicit and small enough, else marked generated or
/// external). `pre_perturb` must be the input *before* `--perturb` was
/// applied — replay re-applies the recorded perturbation.
fn manifest_for(cmd: &str, o: &Opts, pre_perturb: &[f64], generated: bool) -> RunManifest {
    use repro_core::obs::manifest::MAX_EMBEDDED_VALUES;
    let mut m = RunManifest::new(cmd);
    m.n = pre_perturb.len() as u64;
    m.dr = o.dr as u64;
    m.seed = o.seed;
    m.tolerance = manifest_tolerance(o);
    m.simd_tier = simd_tier_label();
    m.env = manifest_env();
    m.telemetry = o.telemetry;
    m.sample = o.sample;
    m.perturb = o.perturb.map(|i| i as u64);
    if generated {
        m.source = "generated".to_string();
    } else if pre_perturb.len() <= MAX_EMBEDDED_VALUES {
        m.source = "embedded".to_string();
        m.values_bits = Some(pre_perturb.iter().map(|v| v.to_bits()).collect());
    } else {
        m.source = "external".to_string();
    }
    m
}

/// Finish a manifest-carrying command: append the `# manifest: {...}`
/// trailer (the last line of the output, so `replay` can consume a saved
/// trace directly), park the final manifest on the flight recorder for
/// post-mortem embedding, and honor `--manifest PATH`.
fn finish_with_manifest(
    mut out: String,
    manifest: &RunManifest,
    o: &Opts,
) -> Result<String, CliError> {
    let json = manifest.to_json();
    repro_core::obs::flight::global().set_manifest_json(Some(json.clone()));
    out.push_str("\n# manifest: ");
    out.push_str(&json);
    if let Some(path) = &o.manifest {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| err(format!("writing {path}: {e}")))?;
    }
    Ok(out)
}

/// Run one command; `read_file` abstracts the filesystem for testability.
pub fn run(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(|| err(USAGE))?;
    // `trace check` consumes --file as raw trace text, not floats, so the
    // trace family dispatches before the shared option parser runs.
    if cmd == "trace" {
        return run_trace(rest, read_file);
    }
    // `simd --check <tier>` takes a tier name, not floats.
    if cmd == "simd" {
        return run_simd(rest);
    }
    // `replay` consumes a manifest path, `flight` only takes --dump DIR.
    if cmd == "replay" {
        return run_replay(rest, read_file);
    }
    if cmd == "flight" {
        return run_flight(rest);
    }
    // `agg` has its own flag set (counts, not floats) and subcommands.
    if cmd == "agg" {
        return run_agg(rest, read_file);
    }
    let o = parse_opts(rest, read_file)?;
    match cmd.as_str() {
        "sum" => {
            let values = need_values(&o)?;
            let alg = parse_algorithm(o.alg.as_deref().unwrap_or("PR"))?;
            let result = alg.sum(values);
            let rendered = if o.hex {
                repro_core::fp::format_hex(result)
            } else {
                format!("{result:.17e}")
            };
            let mut manifest = manifest_for("sum", &o, values, false);
            manifest.workers = 1;
            manifest.algorithm = alg.abbrev().to_string();
            manifest.result_bits = Some(result.to_bits());
            finish_with_manifest(
                format!(
                    "{rendered}\n# algorithm: {alg} ({})\n# exact error: {}",
                    alg.name(),
                    sci(repro_core::fp::abs_error(result, values)),
                ),
                &manifest,
                &o,
            )
        }
        "profile" => {
            let values = need_values(&o)?;
            let p = repro_core::select::profile(values);
            let m = repro_core::gen::measure(values);
            let mut t = Table::new(&["quantity", "estimated (1 pass)", "exact"]);
            t.row(&["n".into(), p.n.to_string(), m.n.to_string()]);
            t.row(&["condition number k".into(), sci(p.k), sci(m.k)]);
            t.row(&[
                "dynamic range (decades)".into(),
                p.dr_decades().to_string(),
                m.dr.to_string(),
            ]);
            t.row(&["Σ|x|".into(), sci(p.abs_sum), sci(m.abs_sum)]);
            t.row(&["Σx".into(), sci(p.sum_estimate), sci(m.sum)]);
            let mut rec = Table::new(&["tolerance", "recommended operator"]);
            for r in repro_core::select::recommendations(values) {
                rec.row(&[format!("{:?}", r.tolerance), r.algorithm.to_string()]);
            }
            Ok(format!(
                "{}\nrecommendations:\n{}",
                t.render(),
                rec.render()
            ))
        }
        "select" => {
            let values = need_values(&o)?;
            let tol = tolerance_of(&o)?;
            let reducer = AdaptiveReducer::heuristic(tol);
            let out = reducer.reduce(values);
            let mut text = format!(
                "{:.17e}\n# selected: {} ({})\n# profile: n = {}, k ≈ {}, dr ≈ {} decades",
                out.sum,
                out.algorithm,
                out.algorithm.name(),
                out.profile.n,
                sci(out.profile.k),
                out.profile.dr_decades(),
            );
            if o.explain {
                text.push('\n');
                text.push_str(&repro_core::select::explain(&out.profile, tol).render());
            }
            Ok(text)
        }
        "verify" => {
            let values = need_values(&o)?;
            let tol = if o.bitwise || o.tolerance.is_none() {
                Tolerance::Bitwise
            } else {
                tolerance_of(&o)?
            };
            let reducer = VerifiedReducer::new(tol, o.seed);
            let out = reducer
                .reduce(values)
                .ok_or_else(|| err("no algorithm on the ladder satisfied the tolerance"))?;
            let ladder = out
                .disagreements
                .iter()
                .map(|(a, d)| format!("{}: disagreement {}", a.abbrev(), sci(*d)))
                .collect::<Vec<_>>()
                .join("\n# ");
            Ok(format!(
                "{:.17e}\n# accepted: {}\n# {}",
                out.sum, out.algorithm, ladder
            ))
        }
        "compare" => {
            let values = need_values(&o)?;
            let exact = repro_core::fp::exact_sum_acc(values);
            let mut t = Table::new(&["algorithm", "result", "|error| vs exact", "reproducible"]);
            for alg in Algorithm::ALL {
                let r = alg.sum(values);
                t.row(&[
                    alg.to_string(),
                    format!("{r:+.17e}"),
                    sci(repro_core::fp::abs_error_vs(&exact, r)),
                    if alg.is_reproducible() {
                        "bitwise".into()
                    } else {
                        "no".into()
                    },
                ]);
            }
            t.row(&[
                "exact".into(),
                format!("{:+.17e}", exact.to_f64()),
                "0".into(),
                "—".into(),
            ]);
            Ok(t.render())
        }
        "gen" => {
            let n = o.n.ok_or_else(|| err("gen requires --n"))?;
            let k = o.k.unwrap_or(1.0);
            let values = repro_core::gen::grid_cell(n, k, o.dr, o.seed, 1e16);
            let mut out = String::with_capacity(values.len() * 24);
            for v in &values {
                out.push_str(&format!("{v:e}\n"));
            }
            out.pop();
            Ok(out)
        }
        "dot" => {
            let parse_vec = |path: &Option<String>, flag: &str| -> Result<Vec<f64>, CliError> {
                let path = path
                    .as_ref()
                    .ok_or_else(|| err(format!("dot requires {flag}")))?;
                read_file(path)?
                    .split_whitespace()
                    .map(|t| {
                        t.parse()
                            .map_err(|_| err(format!("bad value {t:?} in {path}")))
                    })
                    .collect()
            };
            let x = parse_vec(&o.file_x, "--file-x")?;
            let y = parse_vec(&o.file_y, "--file-y")?;
            if x.len() != y.len() {
                return Err(err(format!("length mismatch: {} vs {}", x.len(), y.len())));
            }
            use repro_core::sum::{dot2, dot_exact, dot_reproducible, dot_standard};
            let result = match o
                .alg
                .as_deref()
                .unwrap_or("PR")
                .to_ascii_uppercase()
                .as_str()
            {
                "ST" => dot_standard(&x, &y),
                "CP" => dot2(&x, &y),
                "PR" => dot_reproducible(&x, &y, 3),
                other => return Err(err(format!("dot supports ST|CP|PR, got {other:?}"))),
            };
            Ok(format!(
                "{result:.17e}\n# exact error: {}",
                sci((result - dot_exact(&x, &y)).abs())
            ))
        }
        "tree" => {
            let values = need_values(&o)?;
            let shape = match o.shape.as_deref().unwrap_or("balanced") {
                "balanced" => repro_core::tree::TreeShape::Balanced,
                "serial" => repro_core::tree::TreeShape::Serial,
                "random" => repro_core::tree::TreeShape::Random { seed: o.seed },
                "binomial" => repro_core::tree::TreeShape::Binomial,
                other => {
                    return Err(err(format!(
                        "unknown shape {other:?} (expected balanced|serial|random|binomial)"
                    )))
                }
            };
            let tree = repro_core::tree::ReductionTree::build(shape, values.len());
            if o.dot {
                return Ok(tree.render_dot(values));
            }
            let (root, residuals) = tree.error_attribution(values);
            let total = repro_core::fp::exact_sum(&residuals);
            let mut out = tree.render(values);
            out.push_str(&format!(
                "\n# result: {root:.17e}\n# total rounding error: {}\n# worst nodes:",
                sci(total.abs()),
            ));
            for (id, e) in tree.worst_nodes(values, 3) {
                out.push_str(&format!("\n#   node {id}: {}", sci(e)));
            }
            Ok(out)
        }
        "calibrate" => {
            let cfg = repro_core::select::CalibrationConfig {
                n: o.n.unwrap_or(4096),
                permutations: o.perms,
                seed: o.seed,
                ..Default::default()
            };
            let table = repro_core::select::calibrate(&cfg);
            Ok(table.to_csv())
        }
        "chaos" => run_chaos(&o),
        "report" => run_report(&o),
        "bench" => run_bench(&o),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

/// `chaos`: run a fault-injected distributed reduction and check that the
/// healed result is bitwise identical to a sequential reference over the
/// survivor set, then demo the checkpoint-resumable engine on the same data.
fn run_chaos(o: &Opts) -> Result<String, CliError> {
    use repro_core::mpisim::{ft_reduce_sum, FaultPlan, ReduceConfig, ReduceTopology, World};
    use repro_core::runtime::CheckpointStore;

    let ranks = o.ranks.unwrap_or(8);
    let n = o.n.unwrap_or(4096);
    let topo_name = o.topology.as_deref().unwrap_or("binomial");
    let topology = match topo_name {
        "binomial" => ReduceTopology::Binomial,
        "flat" => ReduceTopology::FlatArrival,
        "chain" => ReduceTopology::Chain,
        other => {
            return Err(err(format!(
                "unknown topology {other:?} (expected binomial|flat|chain)"
            )))
        }
    };
    let cfg = ReduceConfig::validated(topology, 0, 0).map_err(|e| err(e.0))?;
    let mut plan = FaultPlan::new(o.seed)
        .with_drop(o.drop)
        .with_delay(o.delay, 1_500)
        .with_duplicate(o.dup)
        .with_reorder(o.reorder)
        .with_timeouts(std::time::Duration::from_millis(10), 2);
    // Kill the K highest ranks a few ops in — early enough that a single
    // collective actually observes the failure and heals around it.
    for i in 0..o.kill.min(ranks.saturating_sub(1)) {
        plan = plan.with_kill(ranks - 1 - i, 3 + i as u64);
    }
    plan.validate().map_err(|e| err(e.0))?;

    let values = repro_core::gen::zero_sum_with_range(n, o.dr, o.seed);
    let per = n.div_ceil(ranks.max(1));
    let chunk = |rank: usize| -> &[f64] { &values[(rank * per).min(n)..((rank + 1) * per).min(n)] };

    let report = World::run_report(ranks, &plan, |comm| {
        ft_reduce_sum(comm, chunk(comm.rank()), Algorithm::PR, 0, &cfg)
    })
    .map_err(|e| err(e.0))?;

    let outcome = match &report.results[0] {
        Ok(out) => out,
        Err(e) => {
            return Err(err(format!(
                "root rank failed: {e}\n# report: {}",
                report.summary()
            )))
        }
    };
    let sum = outcome
        .value
        .ok_or_else(|| err("root rank returned no value"))?;

    // Sequential reference over the survivor set's inputs: PR is bitwise
    // reproducible, so the healed distributed result must match exactly.
    let mut reference = BinnedSum::new(3);
    for &rank in &outcome.survivors {
        reference.add_slice(chunk(rank));
    }
    let check = if reference.finalize().to_bits() == sum.to_bits() {
        "OK (bitwise)".to_string()
    } else {
        format!("FAIL (reference {:.17e})", reference.finalize())
    };

    // Checkpoint-resumable engine demo on the same data: chunk 0 fails its
    // first attempt, the engine retries it and heals the plan.
    let rt = Runtime::new(2);
    let rplan = ReductionPlan::with_chunk_count(values.len(), ranks.max(2));
    let mut store = CheckpointStore::for_plan(&rplan);
    let fail_once = |c: usize, attempt: u32| c == 0 && attempt == 0;
    let (_, stats) = rt
        .accumulate_resumable(
            &values,
            &rplan,
            || BinnedSum::new(3),
            &mut store,
            Some(&fail_once),
        )
        .map_err(|e| err(e.to_string()))?;

    Ok(format!(
        "{sum:.17e}\n\
         # survivors: {:?} (rounds={})\n\
         # report: {}\n\
         # survivor reference (PR fold=3): {check}\n\
         # checkpoint demo: retries={} heals={} checkpoint_restores={}\n\
         # replay: repro-reduce chaos --ranks {ranks} --n {n} --dr {} --seed {} \
         --drop {} --delay {} --dup {} --reorder {} --kill {} --topology {topo_name}",
        outcome.survivors,
        outcome.rounds,
        report.summary(),
        stats.retries,
        stats.heals,
        stats.checkpoint_restores,
        o.dr,
        o.seed,
        o.drop,
        o.delay,
        o.dup,
        o.reorder,
        o.kill,
    ))
}

/// `trace`: the observability family. Dispatches to a subcommand; each one
/// emits JSON Lines events followed by `#`-prefixed human summary lines.
fn run_trace(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let (sub, rest) = args
        .split_first()
        .ok_or_else(|| err("trace needs a subcommand: reduce|chaos|check|diff"))?;
    match sub.as_str() {
        "reduce" => run_trace_reduce(&parse_opts(rest, read_file)?),
        "chaos" => run_trace_chaos(&parse_opts(rest, read_file)?),
        "check" => run_trace_check(rest, read_file),
        "diff" => run_trace_diff(rest, read_file),
        other => Err(err(format!(
            "unknown trace subcommand {other:?} (expected reduce|chaos|check|diff)"
        ))),
    }
}

/// `trace reduce`: run the selector and the threaded runtime over one input
/// with tracing on. The selector contributes a `decision` record in the
/// `select` subsystem; the runtime contributes plan-derived `chunk_exec` /
/// `merge` spans in the `runtime` subsystem (identical for any worker
/// count); execution facts land in the metrics registry, rendered as `#`
/// comment lines so the JSONL stream stays deterministic.
fn run_trace_reduce(o: &Opts) -> Result<String, CliError> {
    let (out, manifest) = trace_reduce_with_manifest(o)?;
    finish_with_manifest(out, &manifest, o)
}

/// The `trace reduce` workload proper, returning the rendered trace (sans
/// manifest trailer) alongside the completed [`RunManifest`] — `replay`
/// re-runs this and compares manifests instead of scraping output text.
fn trace_reduce_with_manifest(o: &Opts) -> Result<(String, RunManifest), CliError> {
    use repro_core::obs::{render_jsonl, Registry, Trace};

    let (mut values, generated): (Vec<f64>, bool) = if o.values.is_empty() {
        let n = o.n.unwrap_or(4096);
        (
            repro_core::gen::grid_cell(n, o.k.unwrap_or(1.0), o.dr, o.seed, 1e16),
            true,
        )
    } else {
        (o.values.clone(), false)
    };
    let mut manifest = manifest_for("reduce", o, &values, generated);
    manifest.workers = 2;
    if generated {
        manifest.k = Some(o.k.unwrap_or(1.0));
    }
    // Park the provisional manifest before any numeric work: a post-mortem
    // from a mid-reduction death must still say what run was in flight.
    repro_core::obs::flight::global().set_manifest_json(Some(manifest.to_json()));
    apply_perturb(&mut values, o.perturb)?;
    let tol = if o.bitwise || o.tolerance.is_none() {
        Tolerance::Bitwise
    } else {
        tolerance_of(o)?
    };
    let telemetry = telemetry_cfg(o);

    let (trace, sink) = Trace::to_memory();
    let trace = trace.with_wall_clock(o.wall);
    let registry = Registry::new();

    let mut select_scope = trace.scope("select");
    let reducer = AdaptiveReducer::heuristic(tol);
    // With telemetry on, the selector also measures the realized spread of
    // its choice and records it beside the prediction (calibration drift).
    let outcome = if telemetry.enabled() {
        reducer.reduce_telemetry(&values, &mut select_scope, Some(&registry))
    } else {
        reducer.reduce_traced(&values, &mut select_scope)
    };

    // Test hook for the post-mortem contract: die between selection and
    // the runtime reduction, exactly where a real crash loses the most
    // context — the subprocess test asserts the dump still explains us.
    if std::env::var("REPRO_FLIGHT_TEST_PANIC").as_deref() == Ok("reduce") {
        panic!("injected mid-reduction panic (REPRO_FLIGHT_TEST_PANIC=reduce)");
    }

    let mut runtime_scope = trace.scope("runtime");
    let rt = Runtime::new(2);
    let plan = ReductionPlan::for_len(values.len());
    let (sum, stats) = rt.reduce_telemetry(
        &values,
        &plan,
        || BinnedSum::new(3),
        &mut runtime_scope,
        telemetry,
        Some(&registry),
    );

    stats.publish(&registry, "runtime");

    manifest.algorithm = outcome.algorithm.abbrev().to_string();
    manifest.cost_source = repro_core::select::explain(&outcome.profile, tol).cost_source;
    manifest.selector_bits = Some(outcome.sum.to_bits());
    manifest.result_bits = Some(sum.to_bits());

    let mut out = render_jsonl(&sink.drain());
    out.push_str(&format!(
        "# trace reduce: n={} selected={} selector sum={:.17e} PR sum={:.17e}\n",
        values.len(),
        outcome.algorithm,
        outcome.sum,
        sum,
    ));
    for line in registry.snapshot().render().lines() {
        out.push_str("# metric ");
        out.push_str(line);
        out.push('\n');
    }
    out.pop();
    Ok((out, manifest))
}

/// `trace chaos`: a fault-injected distributed gather whose event stream is
/// a pure function of the seed. Unlike the `chaos` command's fault-tolerant
/// collective (whose retry/round structure depends on thread timing), this
/// runs a fixed communication script: every non-root rank sends its chunk
/// as [`SEGMENTS`] PR-checkpoint strings on predetermined tags, and the root
/// polls every (rank, segment) slot with directed timed receives in a fixed
/// order, dropping a rank wholesale on its first timeout. All fault draws
/// come from per-rank seeded streams, so two runs with the same seed yield
/// byte-identical JSONL (and PR merging keeps the healed sum bitwise equal
/// to a sequential reference over the survivor set).
fn run_trace_chaos(o: &Opts) -> Result<String, CliError> {
    let (out, manifest) = trace_chaos_with_manifest(o)?;
    finish_with_manifest(out, &manifest, o)
}

/// The `trace chaos` workload proper; see [`trace_reduce_with_manifest`]
/// for the split's rationale.
fn trace_chaos_with_manifest(o: &Opts) -> Result<(String, RunManifest), CliError> {
    use repro_core::mpisim::{FaultError, FaultPlan, World};
    use repro_core::obs::{f, render_jsonl, Trace};

    const SEGMENTS: usize = 4;

    let ranks = o.ranks.unwrap_or(6);
    let n = o.n.unwrap_or(2048);
    let telemetry = telemetry_cfg(o);
    let mut plan = FaultPlan::new(o.seed)
        .with_drop(o.drop)
        .with_delay(o.delay, 1_500)
        .with_duplicate(o.dup)
        .with_reorder(o.reorder)
        .with_timeouts(std::time::Duration::from_millis(10), 2);
    // Same policy as `chaos`: kill the K highest ranks, never the root.
    for i in 0..o.kill.min(ranks.saturating_sub(1)) {
        plan = plan.with_kill(ranks - 1 - i, 3 + i as u64);
    }
    plan.validate().map_err(|e| err(e.0))?;

    let mut values = repro_core::gen::zero_sum_with_range(n, o.dr, o.seed);
    let mut manifest = manifest_for("chaos", o, &values, true);
    manifest.workers = ranks as u64;
    manifest.algorithm = "PR".to_string();
    manifest.fault = Some(FaultSpec {
        drop: o.drop,
        delay: o.delay,
        dup: o.dup,
        reorder: o.reorder,
        kill: o.kill as u64,
    });
    // Parked before the world runs: a fault-plane kill triggers an
    // incident dump that must name this run.
    repro_core::obs::flight::global().set_manifest_json(Some(manifest.to_json()));
    apply_perturb(&mut values, o.perturb)?;
    let values = values;
    let per = n.div_ceil(ranks.max(1));
    let chunk = |rank: usize| -> &[f64] { &values[(rank * per).min(n)..((rank + 1) * per).min(n)] };
    let tag = |rank: usize, seg: usize| ((rank as u64) << 8) | seg as u64;

    let (report, events) = World::run_report_traced(ranks, &plan, true, |comm| {
        let rank = comm.rank();
        let mine = chunk(rank);
        if rank == 0 {
            let mut merged = BinnedSum::new(3);
            merged.add_slice(mine);
            if telemetry.enabled() {
                // The root's own chunk is its leaf in the gather tree.
                chaos_node_event(comm, telemetry, 1, "leaf.r0", 0, merged.finalize(), &[mine]);
            }
            let mut survivors = vec![0usize];
            for src in 1..comm.size() {
                let mut partials = Vec::with_capacity(SEGMENTS);
                for seg in 0..SEGMENTS {
                    match comm.recv_timeout::<String>(src, tag(src, seg)) {
                        Ok(cp) => match BinnedSum::restore(&cp) {
                            Some(p) => partials.push(p),
                            None => {
                                partials.clear();
                                break;
                            }
                        },
                        Err(FaultError::Timeout { .. }) => {
                            // A dead or lossy rank: skip its remaining
                            // segments rather than paying the timeout
                            // budget three more times.
                            partials.clear();
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if partials.len() == SEGMENTS {
                    for p in &partials {
                        merged.merge(p);
                    }
                    survivors.push(src);
                }
            }
            let sum = merged.finalize();
            if telemetry.enabled() {
                // The merged gather result over the survivor set — ordinal 0
                // so the root is always exact-sampled when sampling is on.
                let parts: Vec<&[f64]> = survivors.iter().map(|&r| chunk(r)).collect();
                chaos_node_event(comm, telemetry, 0, "root", 0, sum, &parts);
            }
            comm.trace_event(
                "gather_done",
                vec![
                    f("survivors", format!("{survivors:?}")),
                    f("sum_bits", format!("{:016x}", sum.to_bits())),
                ],
            );
            Ok((sum, survivors))
        } else {
            let seg_len = mine.len().div_ceil(SEGMENTS).max(1);
            for seg in 0..SEGMENTS {
                let lo = (seg * seg_len).min(mine.len());
                let hi = ((seg + 1) * seg_len).min(mine.len());
                let mut part = BinnedSum::new(3);
                part.add_slice(&mine[lo..hi]);
                if telemetry.enabled() {
                    chaos_node_event(
                        comm,
                        telemetry,
                        (rank * SEGMENTS + seg) as u64 + 1,
                        &format!("leaf.r{rank}.s{seg}"),
                        rank * per + lo,
                        part.finalize(),
                        &[&mine[lo..hi]],
                    );
                }
                comm.try_send(0, tag(rank, seg), part.checkpoint())?;
            }
            Ok((0.0, Vec::new()))
        }
    })
    .map_err(|e| err(e.0))?;

    let (sum, survivors) = match &report.results[0] {
        Ok(v) => v.clone(),
        Err(e) => return Err(err(format!("root rank failed: {e}"))),
    };

    // PR finalize is invariant under deposit order and merge trees, so the
    // segment-merged gather must match a flat sequential pass bitwise.
    let mut reference = BinnedSum::new(3);
    for &r in &survivors {
        reference.add_slice(chunk(r));
    }
    let check = if reference.finalize().to_bits() == sum.to_bits() {
        "OK (bitwise)".to_string()
    } else {
        format!("FAIL (reference {:.17e})", reference.finalize())
    };

    // One selector decision record per traced run: profile the full input
    // and record what the selector would do for a bitwise budget.
    let (trace, sink) = Trace::to_memory();
    let mut select_scope = trace.scope("select");
    let profile = repro_core::select::profile_parallel(&values);
    let explanation = repro_core::select::explain(&profile, Tolerance::Bitwise);
    repro_core::select::record_decision(&mut select_scope, &profile, &explanation);
    let select_events = sink.drain();
    let total_events = select_events.len() + events.len();

    let mut out = render_jsonl(&select_events);
    out.push_str(&render_jsonl(&events));
    out.push_str(&format!(
        "# trace chaos: ranks={ranks} n={n} seed={} events={total_events}\n\
         # ranks: completed={} failed={}\n\
         # survivors: {survivors:?}\n\
         # sum: {sum:.17e}\n\
         # survivor reference (PR fold=3): {check}\n\
         # replay: repro-reduce trace chaos --ranks {ranks} --n {n} --dr {} --seed {} \
         --drop {} --delay {} --dup {} --reorder {} --kill {}",
        o.seed,
        report.completed,
        report.failed,
        o.dr,
        o.seed,
        o.drop,
        o.delay,
        o.dup,
        o.reorder,
        o.kill,
    ));
    if o.telemetry {
        out.push_str(" --telemetry");
        if let Some(every) = o.sample {
            out.push_str(&format!(" --sample {every}"));
        }
    }
    if let Some(idx) = o.perturb {
        out.push_str(&format!(" --perturb {idx}"));
    }
    manifest.cost_source = explanation.cost_source.clone();
    manifest.result_bits = Some(sum.to_bits());
    Ok((out, manifest))
}

/// Emit one numerical-telemetry `node` event from the chaos gather script:
/// partial-sum bits, Higham bound over the node's elements, and — when the
/// node's ordinal is exact-sampled — the ulp deviation against a
/// superaccumulator shadow. Node ids (`leaf.r{rank}.s{seg}`, `leaf.r0`,
/// `root`) derive from the fixed gather plan, never from timing, so
/// `trace diff` can align them across runs with different fault draws.
fn chaos_node_event(
    comm: &mut repro_core::mpisim::Comm,
    telemetry: repro_core::obs::TelemetryConfig,
    ordinal: u64,
    node: &str,
    start: usize,
    partial: f64,
    parts: &[&[f64]],
) {
    use repro_core::obs::f;
    let mut exact = Superaccumulator::new();
    let mut abs = Superaccumulator::new();
    let mut n = 0usize;
    for part in parts {
        exact.add_slice(part);
        abs.add_slice_abs(part);
        n += part.len();
    }
    let mut fields = vec![
        f("node", node.to_string()),
        f("start", start as u64),
        f("len", n as u64),
        f("sum_bits", format!("{:016x}", partial.to_bits())),
        f("bound", repro_core::fp::higham_bound(n, abs.to_f64())),
    ];
    if telemetry.sample_exact(ordinal) {
        let shadow = exact.to_f64();
        fields.push(f("ulps", repro_core::fp::ulp_distance(partial, shadow)));
        fields.push(f("exact_bits", format!("{:016x}", shadow.to_bits())));
    }
    comm.trace_event("node", fields);
}

/// `trace diff`: align two saved traces by plan-derived node id (never by
/// sequence position), report the first numerically divergent node, and
/// walk the divergence to its leaf-interval origin. A clean diff returns
/// `Ok` (exit 0); any divergence or alignment gap returns the same report
/// as an error (exit 1), so CI can gate on it directly.
fn run_trace_diff(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let mut paths = Vec::new();
    for a in args {
        if a.starts_with("--") {
            return Err(err(format!(
                "trace diff takes two trace files, got option {a}"
            )));
        }
        paths.push(a.clone());
    }
    if paths.len() != 2 {
        return Err(err(format!(
            "trace diff requires exactly two trace files, got {}",
            paths.len()
        )));
    }
    let a = read_file(&paths[0])?;
    let b = read_file(&paths[1])?;
    // Parse/schema failures exit 2; numerical divergence exits 1 — CI can
    // distinguish "the traces disagree" from "I couldn't read the traces".
    let report = repro_core::obs::forensics::diff_traces(&a, &b)
        .map_err(|e| err_schema(format!("trace diff: {e}")))?;
    let rendered = report.render();
    if report.is_clean() {
        Ok(rendered)
    } else {
        // A divergence is an incident: flush the flight rings so the
        // post-mortem (when configured) carries the forensic context.
        repro_core::obs::flight::incident("trace.diff.divergence");
        Err(err(rendered))
    }
}

/// `simd`: report the runtime SIMD dispatch decision. With no arguments,
/// prints the active tier, where the decision came from (`REPRO_SIMD`
/// override or CPU feature detection), and every tier this CPU supports.
/// `--check <tier>` answers through the exit status — the CI matrix probes
/// it before exporting `REPRO_SIMD=<tier>`, so an unavailable tier is
/// skipped loudly instead of silently exercising the fallback.
fn run_simd(rest: &[String]) -> Result<String, CliError> {
    use repro_core::fp::simd;
    match rest {
        [] => {
            // Surface an invalid REPRO_SIMD as a diagnostic + nonzero exit,
            // not the silent library fallback (and never a panic).
            let active = simd::try_active_tier().map_err(|e| err(e.to_string()))?;
            let tiers: Vec<&str> = simd::supported_tiers().iter().map(|t| t.label()).collect();
            Ok(format!(
                "active: {}\nsource: {}\nsupported: {}",
                active.label(),
                simd::dispatch_source(),
                tiers.join(" "),
            ))
        }
        [flag, tier] if flag == "--check" => {
            let t = simd::SimdTier::parse(tier)
                .ok_or_else(|| err(format!("--check {tier:?}: expected scalar|sse2|avx2")))?;
            if simd::tier_supported(t) {
                Ok(format!("{} supported", t.label()))
            } else {
                Err(err(format!("{} not supported on this CPU", t.label())))
            }
        }
        _ => Err(err("usage: repro-reduce simd [--check scalar|sse2|avx2]")),
    }
}

/// `bench`: run the tracked throughput harness (`repro_bench::throughput`)
/// at the current `REPRO_SCALE` and write the fixed-schema `BENCH_*.json`
/// document — the repo's perf trajectory, one comparable point per PR.
/// `--out -` prints the JSON (plus `#` summary lines) instead of writing;
/// the default target is `BENCH_10.json` in the working directory.
fn run_bench(o: &Opts) -> Result<String, CliError> {
    use repro_bench::throughput;
    let entries = throughput::run_suite();
    let json = throughput::render_json(&entries);
    let ratio = throughput::batched_over_scalar_ratio(&entries)
        .ok_or_else(|| err("bench suite missing superaccumulator entries"))?;
    let summary = format!(
        "# {} ops at scale {:?}, n = {}, seed = {}, rev = {}\n\
         # batched/scalar superaccumulator throughput ratio: {ratio:.2}x",
        entries.len(),
        repro_bench::scale(),
        entries.first().map(|e| e.n).unwrap_or(0),
        entries.first().map(|e| e.seed).unwrap_or(0),
        entries.first().map(|e| e.git_rev.as_str()).unwrap_or("?"),
    );
    let out = o.out.as_deref().unwrap_or("BENCH_10.json");
    if out == "-" {
        Ok(format!("{json}{summary}"))
    } else {
        std::fs::write(out, &json).map_err(|e| err(format!("writing {out}: {e}")))?;
        Ok(format!("# wrote {out}\n{summary}"))
    }
}

/// `report`: run one telemetried workload (selector + threaded runtime over
/// a generated or given input) and render the resulting metrics registry —
/// node counts, the ulp-deviation histogram, predicted vs realized selector
/// spread — as Prometheus text exposition or as a self-contained
/// zero-dependency HTML page with the per-node error trajectory.
fn run_report(o: &Opts) -> Result<String, CliError> {
    use repro_core::obs::{forensics, render_jsonl, report, Registry, TelemetryConfig, Trace};

    let values: Vec<f64> = if o.values.is_empty() {
        let n = o.n.unwrap_or(4096);
        repro_core::gen::grid_cell(n, o.k.unwrap_or(1.0), o.dr, o.seed, 1e16)
    } else {
        o.values.clone()
    };
    // A report without node telemetry would be empty, so the sampling
    // policy defaults to full instead of off here.
    let telemetry = match o.sample {
        Some(every) => TelemetryConfig::sampled(every),
        None => TelemetryConfig::full(),
    };
    let tol = if o.bitwise || o.tolerance.is_none() {
        Tolerance::Bitwise
    } else {
        tolerance_of(o)?
    };

    let (trace, sink) = Trace::to_memory();
    let registry = Registry::new();

    let mut select_scope = trace.scope("select");
    let reducer = AdaptiveReducer::heuristic(tol);
    let outcome = reducer.reduce_telemetry(&values, &mut select_scope, Some(&registry));

    let mut runtime_scope = trace.scope("runtime");
    let rt = Runtime::new(2);
    // Eight-way chunking (rather than the default single chunk at these
    // sizes) so the error trajectory shows a real merge tree.
    let plan = ReductionPlan::with_chunk_count(values.len(), 8);
    let (_, stats) = rt.reduce_telemetry(
        &values,
        &plan,
        || BinnedSum::new(3),
        &mut runtime_scope,
        telemetry,
        Some(&registry),
    );
    stats.publish(&registry, "runtime");

    let text = render_jsonl(&sink.drain());
    let nodes = forensics::collect_nodes(&text).map_err(|e| err(format!("report: {e}")))?;
    let snap = registry.snapshot();
    match o.format.as_deref().unwrap_or("prom") {
        "prom" => Ok(report::render_prometheus(&snap)),
        "html" => Ok(report::render_html(
            &format!(
                "repro-reduce report — n={} seed={} selected={}",
                values.len(),
                o.seed,
                outcome.algorithm,
            ),
            &snap,
            &nodes,
        )),
        other => Err(err(format!(
            "unknown report format {other:?} (expected prom|html)"
        ))),
    }
}

/// `trace check`: re-parse a saved trace and enforce the schema contract
/// (JSON object per line, string `sub`/`kind`, strictly increasing `seq`
/// per subsystem; `#` comments and blank lines ignored).
fn run_trace_check(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--file" => {
                i += 1;
                file = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--file needs a value"))?,
                );
            }
            other => return Err(err(format!("trace check takes only --file, got {other:?}"))),
        }
        i += 1;
    }
    let path = file.ok_or_else(|| err("trace check requires --file"))?;
    let text = read_file(&path)?;
    let summary = repro_core::obs::validate_trace(&text)
        .map_err(|e| err_schema(format!("invalid trace: {e}")))?;
    Ok(format!(
        "# trace OK: events={} subsystems={:?} dropped={}",
        summary.events, summary.subsystems, summary.dropped
    ))
}

/// Pull the manifest JSON out of what `replay` was handed: either a bare
/// manifest file (one JSON object) or a saved trace whose last
/// `# manifest: ` trailer carries it.
fn extract_manifest_json(text: &str) -> Option<&str> {
    let trimmed = text.trim();
    if trimmed.starts_with('{') && !trimmed.contains('\n') {
        return Some(trimmed);
    }
    trimmed
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("# manifest: "))
}

/// `replay`: re-execute the run a manifest describes and compare results
/// bitwise. A manifest that cannot be parsed, has an unsupported schema,
/// or is not replayable exits 2; a bitwise mismatch — the replay contract
/// broken — exits 1; only exact bit-for-bit agreement exits 0.
fn run_replay(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let [path] = args else {
        return Err(err("usage: repro-reduce replay MANIFEST.json"));
    };
    let text = read_file(path)?;
    let json = extract_manifest_json(&text)
        .ok_or_else(|| err_schema(format!("replay: no manifest found in {path}")))?;
    let stored = RunManifest::parse(json).map_err(|e| err_schema(format!("replay: {e}")))?;
    if !stored.replayable() {
        return Err(err_schema(format!(
            "replay: manifest source {:?} is not replayable (input neither embedded nor generated)",
            stored.source
        )));
    }

    let fresh = replay_execute(&stored)?;

    let mut mismatches = Vec::new();
    let mut check_bits = |what: &str, recorded: Option<u64>, replayed: Option<u64>| {
        if let (Some(a), Some(b)) = (recorded, replayed) {
            if a != b {
                mismatches.push(format!("{what}: recorded {a:016x} replayed {b:016x}"));
            }
        }
    };
    check_bits("result_bits", stored.result_bits, fresh.result_bits);
    check_bits("selector_bits", stored.selector_bits, fresh.selector_bits);
    if !stored.algorithm.is_empty() && stored.algorithm != fresh.algorithm {
        mismatches.push(format!(
            "algorithm: recorded {} replayed {}",
            stored.algorithm, fresh.algorithm
        ));
    }
    if !mismatches.is_empty() {
        repro_core::obs::flight::incident("replay.divergence");
        return Err(err(format!(
            "replay DIVERGED: cmd={} n={} seed={}\n  {}",
            stored.cmd,
            stored.n,
            stored.seed,
            mismatches.join("\n  "),
        )));
    }
    let bits = stored.result_bits.unwrap_or(0);
    Ok(format!(
        "replay OK (bitwise): cmd={} n={} seed={} algorithm={} result_bits={bits:016x}\n\
         # manifest simd_tier={} current={}",
        stored.cmd,
        stored.n,
        stored.seed,
        fresh.algorithm,
        stored.simd_tier,
        simd_tier_label(),
    ))
}

/// Re-execute the workload a manifest describes and return the freshly
/// completed manifest (carrying the recomputed result bits).
fn replay_execute(m: &RunManifest) -> Result<RunManifest, CliError> {
    let mut o = Opts {
        dr: m.dr as u32,
        seed: m.seed,
        perms: 20,
        ..Default::default()
    };
    o.n = Some(m.n as usize);
    o.telemetry = m.telemetry;
    o.sample = m.sample;
    o.perturb = m.perturb.map(|i| i as usize);
    match m.tolerance.as_str() {
        "bitwise" => o.bitwise = true,
        t => {
            if let Some(v) = t.strip_prefix("abs:") {
                o.tolerance =
                    Some(v.parse().map_err(|_| {
                        err_schema(format!("replay: bad manifest tolerance {t:?}"))
                    })?);
            } else if let Some(v) = t.strip_prefix("rel:") {
                o.relative = true;
                o.tolerance =
                    Some(v.parse().map_err(|_| {
                        err_schema(format!("replay: bad manifest tolerance {t:?}"))
                    })?);
            } else {
                return Err(err_schema(format!("replay: bad manifest tolerance {t:?}")));
            }
        }
    }
    if let Some(bits) = &m.values_bits {
        o.values = bits.iter().map(|&b| f64::from_bits(b)).collect();
    }
    match m.cmd.as_str() {
        "reduce" => {
            o.k = m.k;
            trace_reduce_with_manifest(&o).map(|(_, manifest)| manifest)
        }
        "chaos" => {
            o.ranks = Some(m.workers as usize);
            if let Some(fault) = &m.fault {
                o.drop = fault.drop;
                o.delay = fault.delay;
                o.dup = fault.dup;
                o.reorder = fault.reorder;
                o.kill = fault.kill as usize;
            }
            trace_chaos_with_manifest(&o).map(|(_, manifest)| manifest)
        }
        "sum" => {
            if o.values.is_empty() {
                return Err(err_schema("replay: sum manifest has no embedded values"));
            }
            let alg = parse_algorithm(&m.algorithm)
                .map_err(|e| err_schema(format!("replay: {}", e.msg)))?;
            let mut fresh = m.clone();
            fresh.result_bits = Some(alg.sum(&o.values).to_bits());
            Ok(fresh)
        }
        // `agg serve` manifests reuse the generic numeric slots (see
        // `agg_manifest`): dr = aggregates, k = clients, perturb =
        // batches, sample = batch_len. Shards and arrival shuffle are
        // deliberately NOT recorded — the digest is invariant to both, so
        // replaying with the defaults is a *stronger* check than
        // repeating the recorded topology.
        "agg" => {
            use repro_core::agg::{loadgen, AggConfig, AggEngine, LoadSpec};
            let spec = LoadSpec {
                aggregates: m.dr as usize,
                clients: m.k.unwrap_or(0.0) as usize,
                batches: m.perturb.unwrap_or(0) as usize,
                batch_len: m.sample.unwrap_or(0) as usize,
                seed: m.seed,
                shuffle: 0,
                workers: (m.workers as usize).max(1),
            };
            if spec.total_updates() == 0 || spec.total_updates() != m.n {
                return Err(err_schema(format!(
                    "replay: agg manifest shape mismatch (n={} vs aggregates*clients*batches*batch_len={})",
                    m.n,
                    spec.total_updates(),
                )));
            }
            let engine = AggEngine::new(AggConfig::default());
            loadgen::run(&engine, &spec, 0, None);
            let mut fresh = m.clone();
            fresh.result_bits = Some(engine.digest_bits());
            Ok(fresh)
        }
        other => Err(err_schema(format!(
            "replay: unknown manifest cmd {other:?}"
        ))),
    }
}

/// `flight`: show the process-global flight recorder — enabled state, ring
/// capacity, per-subsystem retained/dropped/recorded counts, and the
/// `obs.overhead.*` self-accounting. `--dump DIR` additionally writes a
/// `postmortem.jsonl` there, the same document an incident would produce.
fn run_flight(args: &[String]) -> Result<String, CliError> {
    use repro_core::obs::flight;
    let mut dump_dir = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dump" => {
                i += 1;
                dump_dir = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--dump needs a directory"))?,
                );
            }
            other => return Err(err(format!("flight takes only --dump DIR, got {other:?}"))),
        }
        i += 1;
    }
    let rec = flight::global();
    let ring = rec.ring();
    let mut out = format!(
        "# flight recorder: enabled={} capacity={} dumps={}",
        rec.enabled(),
        ring.capacity(),
        rec.dumps_written(),
    );
    for snap in ring.snapshot() {
        out.push_str(&format!(
            "\n# ring {}: retained={} dropped={} recorded={}",
            snap.sub,
            snap.events.len(),
            snap.dropped,
            snap.recorded,
        ));
    }
    let registry = repro_core::obs::Registry::new();
    rec.account(&registry);
    for line in registry.snapshot().render().lines() {
        out.push_str("\n# metric ");
        out.push_str(line);
    }
    if let Some(dir) = dump_dir {
        rec.set_dump_dir(Some(std::path::PathBuf::from(&dir)));
        match rec.dump("cli.flight.dump") {
            Some(path) => out.push_str(&format!("\n# wrote {}", path.display())),
            None => out.push_str("\n# no dump written (recorder disabled)"),
        }
    }
    Ok(out)
}

/// Parsed options for the `agg` family (counts, not floats, so it does
/// not share [`Opts`]).
struct AggOpts {
    spec: repro_core::agg::LoadSpec,
    shards: usize,
    restore: Option<String>,
    snapshot: Option<String>,
    start_at: usize,
    stop_at: Option<usize>,
    manifest: Option<String>,
    file: Option<String>,
}

/// `agg` workload defaults at the current `REPRO_SCALE`:
/// `(aggregates, clients, batches, batch_len)`. The default scale is the
/// headline configuration — thousands of clients, millions of updates —
/// sized so `agg bench` still finishes in seconds.
fn agg_scale_defaults() -> (usize, usize, usize, usize) {
    match repro_bench::scale() {
        repro_bench::Scale::Quick => (2, 64, 4, 64),
        repro_bench::Scale::Default => (4, 1024, 8, 256),
        repro_bench::Scale::Full => (8, 4096, 16, 256),
    }
}

fn parse_agg_opts(args: &[String]) -> Result<AggOpts, CliError> {
    let (aggregates, clients, batches, batch_len) = agg_scale_defaults();
    let mut o = AggOpts {
        spec: repro_core::agg::LoadSpec {
            aggregates,
            clients,
            batches,
            batch_len,
            seed: 2015,
            shuffle: 1,
            workers: 4,
        },
        shards: 4,
        restore: None,
        snapshot: None,
        start_at: 0,
        stop_at: None,
        manifest: None,
        file: None,
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let mut take = |name: &str| -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        let int = |name: &str, v: String| -> Result<usize, CliError> {
            v.parse()
                .map_err(|_| err(format!("{name} {v:?}: expected a non-negative integer")))
        };
        match a.as_str() {
            "--aggregates" => o.spec.aggregates = int(a, take("--aggregates")?)?,
            "--clients" => o.spec.clients = int(a, take("--clients")?)?,
            "--batches" => o.spec.batches = int(a, take("--batches")?)?,
            "--batch-len" => o.spec.batch_len = int(a, take("--batch-len")?)?,
            "--shards" => o.shards = int(a, take("--shards")?)?,
            "--workers" => o.spec.workers = int(a, take("--workers")?)?,
            "--seed" => o.spec.seed = int(a, take("--seed")?)? as u64,
            "--shuffle" => o.spec.shuffle = int(a, take("--shuffle")?)? as u64,
            "--restore" => o.restore = Some(take("--restore")?),
            "--snapshot" => o.snapshot = Some(take("--snapshot")?),
            "--start-at" => o.start_at = int(a, take("--start-at")?)?,
            "--stop-at" => o.stop_at = Some(int(a, take("--stop-at")?)?),
            "--manifest" => o.manifest = Some(take("--manifest")?),
            "--file" => o.file = Some(take("--file")?),
            other => return Err(err(format!("unknown agg option {other:?}"))),
        }
        i += 1;
    }
    if o.spec.aggregates == 0 || o.shards == 0 {
        return Err(err("agg needs --aggregates >= 1 and --shards >= 1"));
    }
    Ok(o)
}

/// The byte-comparable half of `agg` output: one line per aggregate
/// (name order) plus the engine digest. CI smoke gates diff exactly
/// these lines (everything not starting with `#`) across shuffles,
/// shard counts, and kill/restore splits.
fn render_agg_lines(engine: &repro_core::agg::AggEngine) -> String {
    let mut out = String::new();
    for agg in engine.aggregates() {
        let bits = agg.finalize_bits();
        out.push_str(&format!(
            "agg {} {bits:016x} {:.17e} op={} updates={}\n",
            agg.name(),
            f64::from_bits(bits),
            agg.op().label(),
            agg.updates(),
        ));
    }
    out.push_str(&format!("digest {:016x}", engine.digest_bits()));
    out
}

/// Start a manifest for an `agg serve` run. The generic numeric slots
/// carry the load shape — `dr` = aggregates, `k` = clients, `perturb` =
/// batches, `sample` = batch_len, `n` = total updates — and shards /
/// shuffle are intentionally omitted: the digest is invariant to both,
/// so `replay` re-runs with defaults and must still match bitwise.
fn agg_manifest(spec: &repro_core::agg::LoadSpec, result_bits: u64) -> RunManifest {
    let mut m = RunManifest::new("agg");
    m.n = spec.total_updates();
    m.k = Some(spec.clients as f64);
    m.dr = spec.aggregates as u64;
    m.seed = spec.seed;
    m.workers = spec.workers as u64;
    m.sample = Some(spec.batch_len as u64);
    m.perturb = Some(spec.batches as u64);
    m.tolerance = "bitwise".to_string();
    m.simd_tier = simd_tier_label();
    m.env = manifest_env();
    m.source = "generated".to_string();
    m.result_bits = Some(result_bits);
    m
}

/// `agg loadgen` / `agg serve`: drain the seeded client swarm into a
/// fresh (or `--restore`d) engine, print the comparable `agg`/`digest`
/// lines plus `#` throughput stats, optionally `--snapshot` the final
/// state, and — for `serve` runs that completed the schedule — append
/// the replayable `# manifest:` trailer.
fn run_agg_load(
    o: &AggOpts,
    serve: bool,
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    use repro_core::agg::{loadgen, AggConfig, AggEngine};
    let config = AggConfig {
        shards: o.shards,
        ..AggConfig::default()
    };
    let engine = match &o.restore {
        Some(path) => AggEngine::restore(&read_file(path)?, config)
            .map_err(|e| err_schema(format!("agg serve --restore {path}: {e}")))?,
        None => AggEngine::new(config),
    };
    let spec = &o.spec;
    let started = std::time::Instant::now();
    let deposited = loadgen::run(&engine, spec, o.start_at, o.stop_at);
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(path) = &o.snapshot {
        std::fs::write(path, engine.serialize())
            .map_err(|e| err(format!("writing {path}: {e}")))?;
    }
    let rate = if elapsed > 0.0 {
        deposited as f64 / elapsed
    } else {
        f64::INFINITY
    };
    let mut out = render_agg_lines(&engine);
    out.push_str(&format!(
        "\n# agg: aggregates={} clients={} batches={} batch_len={} shards={} workers={} seed={} shuffle={}",
        spec.aggregates,
        spec.clients,
        spec.batches,
        spec.batch_len,
        o.shards,
        spec.workers,
        spec.seed,
        spec.shuffle,
    ));
    out.push_str(&format!(
        "\n# deposited {deposited} updates in {elapsed:.3}s ({rate:.0} updates/sec)"
    ));
    if let Some(path) = &o.snapshot {
        out.push_str(&format!("\n# snapshot: wrote {path}"));
    }
    if !serve {
        return Ok(out);
    }
    // Only a *finished* schedule gets a manifest: a partial run's digest
    // is not what a fresh replay of the full workload would produce.
    let finished = o.stop_at.map_or(true, |stop| stop >= spec.total_batches());
    if !finished {
        out.push_str(&format!(
            "\n# partial run (stopped at event {} of {}): no manifest",
            o.stop_at.unwrap_or(0),
            spec.total_batches(),
        ));
        return Ok(out);
    }
    let manifest = agg_manifest(spec, engine.digest_bits());
    let carrier = Opts {
        manifest: o.manifest.clone(),
        ..Default::default()
    };
    finish_with_manifest(out, &manifest, &carrier)
}

/// `agg bench`: run the identical workload at shard counts 1, 4, and 16,
/// report per-configuration throughput, and fail (exit 1) unless every
/// configuration finalizes to bit-identical digests — the engine's
/// headline claim, measured and enforced in one command.
fn run_agg_bench(o: &AggOpts) -> Result<String, CliError> {
    use repro_core::agg::{loadgen, AggConfig, AggEngine};
    let mut out = String::new();
    let mut digests: Vec<(usize, u64)> = Vec::new();
    let mut last: Option<AggEngine> = None;
    for shards in [1usize, 4, 16] {
        let engine = AggEngine::new(AggConfig {
            shards,
            ..AggConfig::default()
        });
        let started = std::time::Instant::now();
        let deposited = loadgen::run(&engine, &o.spec, 0, None);
        let elapsed = started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            deposited as f64 / elapsed
        } else {
            f64::INFINITY
        };
        out.push_str(&format!(
            "# shards={shards}: {deposited} updates in {elapsed:.3}s ({rate:.0} updates/sec)\n"
        ));
        digests.push((shards, engine.digest_bits()));
        last = Some(engine);
    }
    let base = digests[0].1;
    if let Some(&(shards, bits)) = digests.iter().find(|&&(_, bits)| bits != base) {
        repro_core::obs::flight::incident("agg.bench.divergence");
        return Err(err(format!(
            "agg bench DIVERGED: shards=1 digest {base:016x} but shards={shards} digest {bits:016x}"
        )));
    }
    let engine = last.expect("three configurations ran");
    Ok(format!("{}{}", out, render_agg_lines(&engine)))
}

/// `agg check`: strict-parse a saved `repro-agg-snapshot-v1` (or a single
/// `repro-agg-state-v1` document) and summarize it. Any malformed,
/// truncated, or unknown-schema input exits 2 — the same contract as
/// `trace check` and `replay`.
fn run_agg_check(
    o: &AggOpts,
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    use repro_core::agg::{parse_aggregate, parse_snapshot, ParsedAggregate, STATE_SCHEMA};
    let path = o
        .file
        .as_ref()
        .ok_or_else(|| err("agg check requires --file"))?;
    let text = read_file(path)?;
    let parsed: Vec<ParsedAggregate> = if text.starts_with(STATE_SCHEMA) {
        let mut lines = text.lines();
        let one = parse_aggregate(&mut lines)
            .map_err(|e| err_schema(format!("invalid agg state: {e}")))?;
        if lines.next().is_some() {
            return Err(err_schema(
                "invalid agg state: trailing lines after end marker",
            ));
        }
        vec![one]
    } else {
        parse_snapshot(&text).map_err(|e| err_schema(format!("invalid agg state: {e}")))?
    };
    let updates: u64 = parsed.iter().map(|a| a.updates).sum();
    let mut out = format!(
        "# agg state OK: aggregates={} updates={updates}",
        parsed.len()
    );
    for a in &parsed {
        out.push_str(&format!(
            "\n# {} op={} shards={} updates={} batches={}",
            a.name,
            a.op.label(),
            a.shards.len(),
            a.updates,
            a.batches,
        ));
    }
    Ok(out)
}

/// Dispatch the `agg` subcommands.
fn run_agg(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let (sub, rest) = args
        .split_first()
        .ok_or_else(|| err("usage: repro-reduce agg loadgen|serve|bench|check ..."))?;
    let o = parse_agg_opts(rest)?;
    match sub.as_str() {
        "loadgen" => {
            if o.restore.is_some()
                || o.snapshot.is_some()
                || o.start_at != 0
                || o.stop_at.is_some()
                || o.manifest.is_some()
            {
                return Err(err("agg loadgen does not checkpoint; use agg serve for \
                     --restore/--snapshot/--start-at/--stop-at/--manifest"));
            }
            run_agg_load(&o, false, read_file)
        }
        "serve" => run_agg_load(&o, true, read_file),
        "bench" => run_agg_bench(&o),
        "check" => run_agg_check(&o, read_file),
        other => Err(err(format!(
            "unknown agg subcommand {other:?} (expected loadgen|serve|bench|check)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_fs(_: &str) -> Result<String, CliError> {
        Err(err("no filesystem in tests"))
    }

    fn run_cmd(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, &no_fs)
    }

    #[test]
    fn bench_emits_schema_entries_and_summary() {
        std::env::set_var("REPRO_SCALE", "quick");
        let out = run_cmd(&["bench", "--out", "-"]).unwrap();
        assert!(
            out.contains("\"schema\": \"repro-bench-throughput-v1\""),
            "{out}"
        );
        for op in [
            "superacc/scalar",
            "superacc/batched",
            "lanes/4",
            "select/profile",
        ] {
            assert!(out.contains(op), "missing {op} in {out}");
        }
        assert!(out.contains("# batched/scalar superaccumulator"), "{out}");
        // The document half parses as JSON on its own.
        let json: String = out.lines().take_while(|l| !l.starts_with('#')).collect();
        assert!(repro_core::obs::Json::parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn bench_covers_one_simd_op_per_supported_tier() {
        std::env::set_var("REPRO_SCALE", "quick");
        let out = run_cmd(&["bench", "--out", "-"]).unwrap();
        for tier in repro_core::fp::simd::supported_tiers() {
            let op = format!("simd/{}", tier.label());
            assert!(out.contains(&op), "missing {op} in {out}");
        }
    }

    #[test]
    fn simd_reports_dispatch_and_supported_tiers() {
        let out = run_cmd(&["simd"]).unwrap();
        assert!(out.contains("active: "), "{out}");
        assert!(out.contains("source: "), "{out}");
        assert!(out.contains("supported: scalar"), "{out}");
    }

    #[test]
    fn simd_check_answers_by_exit_status() {
        // scalar is supported everywhere; an unknown tier is a usage error.
        assert!(run_cmd(&["simd", "--check", "scalar"]).is_ok());
        assert!(run_cmd(&["simd", "--check", "mmx"]).is_err());
        assert!(run_cmd(&["simd", "--bogus"]).is_err());
        for tier in ["sse2", "avx2"] {
            let got = run_cmd(&["simd", "--check", tier]);
            let supported = repro_core::fp::simd::SimdTier::parse(tier)
                .map(repro_core::fp::simd::tier_supported)
                .unwrap_or(false);
            assert_eq!(got.is_ok(), supported, "tier {tier}");
        }
    }

    /// The byte-comparable half of agg output (everything not `#`).
    fn agg_lines(out: &str) -> Vec<&str> {
        out.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect()
    }

    const AGG_SMALL: &[&str] = &[
        "--aggregates",
        "2",
        "--clients",
        "12",
        "--batches",
        "3",
        "--batch-len",
        "32",
    ];

    fn agg_cmd(prefix: &[&str], extra: &[&str]) -> Vec<String> {
        prefix
            .iter()
            .chain(AGG_SMALL)
            .chain(extra)
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn agg_loadgen_lines_are_invariant_to_shuffle_shards_workers() {
        let base = run(&agg_cmd(&["agg", "loadgen"], &[]), &no_fs).unwrap();
        assert_eq!(agg_lines(&base).len(), 3, "{base}"); // 2 aggregates + digest
        assert!(base.contains("updates/sec"), "{base}");
        for extra in [
            ["--shuffle", "99", "--shards", "1", "--workers", "1"],
            ["--shuffle", "7", "--shards", "16", "--workers", "8"],
        ] {
            let out = run(&agg_cmd(&["agg", "loadgen"], &extra), &no_fs).unwrap();
            assert_eq!(agg_lines(&out), agg_lines(&base), "extra: {extra:?}");
        }
        // A different payload seed is a genuinely different workload.
        let other = run(&agg_cmd(&["agg", "loadgen"], &["--seed", "3"]), &no_fs).unwrap();
        assert_ne!(agg_lines(&other), agg_lines(&base));
    }

    #[test]
    fn agg_serve_restore_resume_matches_uninterrupted_run() {
        use repro_core::agg::{loadgen, AggConfig, AggEngine, LoadSpec};
        let spec = LoadSpec {
            aggregates: 2,
            clients: 12,
            batches: 3,
            batch_len: 32,
            seed: 2015,
            shuffle: 1,
            workers: 4,
        };
        // First half via the library, "killed" into a snapshot string...
        let first = AggEngine::new(AggConfig::default());
        loadgen::run(&first, &spec, 0, Some(spec.total_batches() / 2));
        let snapshot = first.serialize();
        let fs = move |path: &str| {
            if path == "snap" {
                Ok(snapshot.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        // ...resumed through the CLI from the kill point.
        let cut = (spec.total_batches() / 2).to_string();
        let resumed = run(
            &agg_cmd(
                &["agg", "serve"],
                &["--restore", "snap", "--start-at", &cut],
            ),
            &fs,
        )
        .unwrap();
        let full = run(&agg_cmd(&["agg", "serve"], &[]), &no_fs).unwrap();
        assert_eq!(agg_lines(&resumed), agg_lines(&full));
        assert!(resumed.contains("# manifest: "), "{resumed}");
    }

    #[test]
    fn agg_serve_partial_run_emits_no_manifest() {
        let out = run(&agg_cmd(&["agg", "serve"], &["--stop-at", "5"]), &no_fs).unwrap();
        assert!(out.contains("# partial run"), "{out}");
        assert!(!out.contains("# manifest: "), "{out}");
    }

    #[test]
    fn agg_replay_round_trips_a_serve_manifest() {
        let served = run(&agg_cmd(&["agg", "serve"], &["--workers", "2"]), &no_fs).unwrap();
        let fs = move |path: &str| {
            if path == "run.out" {
                Ok(served.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let out = run(&["replay".to_string(), "run.out".to_string()], &fs).unwrap();
        assert!(out.starts_with("replay OK (bitwise): cmd=agg"), "{out}");
    }

    #[test]
    fn agg_bench_sweeps_shards_and_agrees_bitwise() {
        let out = run(&agg_cmd(&["agg", "bench"], &[]), &no_fs).unwrap();
        for shards in ["# shards=1:", "# shards=4:", "# shards=16:"] {
            assert!(out.contains(shards), "missing {shards} in {out}");
        }
        assert!(agg_lines(&out).last().unwrap().starts_with("digest "));
    }

    #[test]
    fn agg_check_accepts_real_state_and_rejects_garbage_with_exit_2() {
        use repro_core::agg::{AggConfig, AggEngine};
        let engine = AggEngine::new(AggConfig::default());
        engine
            .declare("demo", &[1.0, 2.0])
            .ingest(0, &[1.0, 2.0, 3.0]);
        let good = engine.serialize();
        let truncated: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
        let fs = move |path: &str| match path {
            "good" => Ok(good.clone()),
            "trunc" => Ok(truncated.clone()),
            "garbage" => Ok("repro-agg-snapshot-v9 aggregates=1".to_string()),
            _ => Err(err("unknown file")),
        };
        let args = |f: &str| {
            vec![
                "agg".to_string(),
                "check".to_string(),
                "--file".into(),
                f.into(),
            ]
        };
        let ok = run(&args("good"), &fs).unwrap();
        assert!(ok.contains("agg state OK: aggregates=1 updates=3"), "{ok}");
        for bad in ["trunc", "garbage"] {
            let e = run(&args(bad), &fs).unwrap_err();
            assert_eq!(e.code, 2, "{bad}: {}", e.msg);
        }
    }

    #[test]
    fn agg_loadgen_rejects_serve_only_flags() {
        let e = run(&agg_cmd(&["agg", "loadgen"], &["--stop-at", "3"]), &no_fs).unwrap_err();
        assert!(e.msg.contains("agg serve"), "{}", e.msg);
        let e = run_cmd(&["agg", "frobnicate"]).unwrap_err();
        assert!(e.msg.contains("unknown agg subcommand"), "{}", e.msg);
    }

    #[test]
    fn sum_defaults_to_pr() {
        let out = run_cmd(&["sum", "1e16", "1", "-1e16"]).unwrap();
        assert!(out.starts_with("1.0"), "{out}");
        assert!(out.contains("PR(fold=3)"));
    }

    #[test]
    fn sum_hex_output_round_trips() {
        let out = run_cmd(&["sum", "--hex", "--alg", "CP", "0.1", "0.2"]).unwrap();
        let first = out.lines().next().unwrap();
        let parsed = repro_core::fp::parse_hex(first).unwrap();
        assert_eq!(parsed.to_bits(), (0.1f64 + 0.2f64).to_bits());
    }

    #[test]
    fn sum_with_explicit_algorithm() {
        let out = run_cmd(&["sum", "--alg", "ST", "1e16", "1", "-1e16"]).unwrap();
        assert!(out.starts_with("0"), "{out}");
        assert!(out.contains("exact error: 1.000e0"));
    }

    #[test]
    fn profile_reports_k_dr_and_recommendations() {
        let out = run_cmd(&["profile", "3.14e4", "1.59e-4", "-3.14e4", "-1.59e-4"]).unwrap();
        assert!(out.contains("inf"), "{out}");
        assert!(out.contains('8'), "{out}");
        assert!(out.contains("recommendations"), "{out}");
        assert!(out.contains("Bitwise"), "{out}");
    }

    #[test]
    fn select_escalates_on_hostile_input() {
        let out = run_cmd(&[
            "select",
            "--tolerance",
            "1e-30",
            "3.14e8",
            "1.59e-8",
            "-3.14e8",
            "-1.59e-8",
        ])
        .unwrap();
        assert!(out.contains("PR(fold=3)"), "{out}");
    }

    #[test]
    fn verify_defaults_to_bitwise_and_reports_ladder() {
        let out = run_cmd(&["verify", "1.0", "2.0", "3.0"]).unwrap();
        assert!(out.contains("accepted: ST"), "{out}");
    }

    #[test]
    fn compare_lists_every_algorithm_and_exact() {
        let out = run_cmd(&["compare", "0.1", "0.2", "0.3"]).unwrap();
        for label in ["ST", "K", "CP", "PR(fold=3)", "DS", "exact"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn gen_emits_n_parseable_values_with_target_properties() {
        let out = run_cmd(&[
            "gen", "--n", "100", "--k", "inf", "--dr", "8", "--seed", "7",
        ])
        .unwrap();
        let values: Vec<f64> = out.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(values.len(), 100);
        let m = repro_core::gen::measure(&values);
        assert_eq!(m.sum, 0.0);
    }

    #[test]
    fn gen_pipes_into_sum() {
        let data = run_cmd(&["gen", "--n", "50", "--k", "1000", "--dr", "4"]).unwrap();
        let fs = move |path: &str| {
            if path == "pipe" {
                Ok(data.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["sum", "--file", "pipe"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args, &fs).unwrap();
        assert!(out.contains("algorithm"), "{out}");
    }

    #[test]
    fn dot_command_reads_two_files() {
        let fs = |path: &str| match path {
            "x" => Ok("1 2 3".to_string()),
            "y" => Ok("4 5 6".to_string()),
            _ => Err(err("nope")),
        };
        let args: Vec<String> = ["dot", "--file-x", "x", "--file-y", "y", "--alg", "PR"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args, &fs).unwrap();
        assert!(out.starts_with("3.2"), "{out}"); // 4+10+18 = 32
        assert!(out.contains("exact error: 0"));
    }

    #[test]
    fn calibrate_emits_parseable_csv() {
        let out = run_cmd(&["calibrate", "--n", "128", "--perms", "4"]).unwrap();
        let table = repro_core::select::CalibrationTable::from_csv(&out).expect("parse");
        assert!(!table.cells.is_empty());
        assert_eq!(table.n, 128);
    }

    #[test]
    fn select_explains_its_decision_on_request() {
        let out = run_cmd(&[
            "select",
            "--tolerance",
            "1e-30",
            "--explain",
            "3.14e8",
            "1.59e-8",
            "-3.14e8",
            "-1.59e-8",
        ])
        .unwrap();
        assert!(out.contains("CHOSEN"), "{out}");
        assert!(out.contains("exceeds budget"), "{out}");
        assert!(out.contains("budget (absolute spread)"), "{out}");
    }

    #[test]
    fn tree_renders_ascii_with_attribution() {
        let out = run_cmd(&["tree", "--shape", "serial", "1e16", "1", "-1e16"]).unwrap();
        assert!(out.contains("total rounding error: 1.000e0"), "{out}");
        assert!(out.contains("worst nodes"), "{out}");
        // Balanced shape on the same data commutes the loss to a different node
        // but the CLI still reports it.
        let out = run_cmd(&["tree", "--shape", "balanced", "1", "1e16", "-1e16"]).unwrap();
        assert!(out.contains("result:"), "{out}");
    }

    #[test]
    fn tree_emits_graphviz_dot() {
        let out = run_cmd(&["tree", "--dot", "0.1", "0.2", "0.3"]).unwrap();
        assert!(out.starts_with("digraph"), "{out}");
        assert!(out.contains("->"), "{out}");
    }

    #[test]
    fn tree_rejects_unknown_shape() {
        assert!(run_cmd(&["tree", "--shape", "mobius", "1", "2"]).is_err());
    }

    #[test]
    fn chaos_clean_run_is_bitwise_ok() {
        let out = run_cmd(&["chaos", "--ranks", "6", "--n", "512", "--seed", "42"]).unwrap();
        assert!(out.contains("OK (bitwise)"), "{out}");
        assert!(out.contains("completed=6 failed=0"), "{out}");
        assert!(out.contains("(rounds=1)"), "{out}");
        assert!(out.contains("replay: repro-reduce chaos"), "{out}");
    }

    #[test]
    fn chaos_heals_around_kills_and_stays_bitwise() {
        let out = run_cmd(&[
            "chaos",
            "--ranks",
            "6",
            "--n",
            "512",
            "--seed",
            "7",
            "--kill",
            "1",
            "--drop",
            "0.05",
            "--topology",
            "chain",
        ])
        .unwrap();
        assert!(out.contains("OK (bitwise)"), "{out}");
        assert!(out.contains("failed=1"), "{out}");
        // The checkpoint demo always injects one chunk failure.
        assert!(
            out.contains("checkpoint demo: retries=1 heals=1 checkpoint_restores=0"),
            "{out}"
        );
    }

    #[test]
    fn chaos_replay_is_deterministic() {
        let args = [
            "chaos", "--ranks", "5", "--n", "256", "--seed", "11", "--drop", "0.2",
        ];
        let a = run_cmd(&args).unwrap();
        let b = run_cmd(&args).unwrap();
        let head = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.contains("report:")) // retry counts are timing-dependent
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(head(&a), head(&b));
    }

    #[test]
    fn chaos_rejects_bad_knobs() {
        assert!(run_cmd(&["chaos", "--topology", "mesh"]).is_err());
        assert!(run_cmd(&["chaos", "--drop", "1.5"]).is_err());
        assert!(run_cmd(&["chaos", "--ranks", "0"]).is_err());
    }

    /// JSONL event lines only — the deterministic part of a trace.
    fn event_lines(out: &str) -> Vec<&str> {
        out.lines().filter(|l| !l.starts_with('#')).collect()
    }

    #[test]
    fn trace_reduce_emits_decision_and_runtime_spans() {
        let out = run_cmd(&["trace", "reduce", "--n", "512", "--dr", "8", "--seed", "3"]).unwrap();
        let summary = repro_core::obs::validate_trace(&out).expect("schema");
        assert_eq!(summary.subsystems, vec!["runtime", "select"]);
        let events = event_lines(&out);
        assert!(
            events.iter().any(|l| l.contains("\"kind\":\"decision\"")),
            "{out}"
        );
        assert!(
            events.iter().any(|l| l.contains("\"kind\":\"reduce_end\"")),
            "{out}"
        );
        assert!(
            out.contains("# metric counter runtime.tasks_executed"),
            "{out}"
        );
    }

    #[test]
    fn trace_reduce_event_stream_is_deterministic_without_wall_clock() {
        let args = ["trace", "reduce", "--n", "256", "--k", "inf", "--dr", "4"];
        let a = run_cmd(&args).unwrap();
        let b = run_cmd(&args).unwrap();
        assert_eq!(event_lines(&a), event_lines(&b));
        assert!(!a.contains("wall_us"), "{a}");
        let walled = run_cmd(&["trace", "reduce", "--wall", "--n", "64"]).unwrap();
        assert!(walled.contains("wall_us"), "{walled}");
    }

    #[test]
    fn trace_chaos_replays_byte_identically() {
        let args = [
            "trace", "chaos", "--ranks", "4", "--n", "256", "--seed", "909", "--drop", "0.3",
            "--dup", "0.2", "--kill", "1",
        ];
        let a = run_cmd(&args).unwrap();
        let b = run_cmd(&args).unwrap();
        // Full byte identity — summary lines included — because the script
        // excludes every timing-dependent quantity.
        assert_eq!(a, b);
        let events = event_lines(&a);
        assert!(
            events.iter().any(|l| l.contains("\"kind\":\"decision\"")),
            "{a}"
        );
        assert!(
            events.iter().any(|l| l.contains("\"kind\":\"kill\"")),
            "{a}"
        );
        assert!(
            events
                .iter()
                .any(|l| l.contains("\"kind\":\"gather_done\"")),
            "{a}"
        );
        assert!(a.contains("OK (bitwise)"), "{a}");
        assert!(a.contains("failed=1"), "{a}");
    }

    #[test]
    fn trace_chaos_clean_run_keeps_every_rank() {
        let out = run_cmd(&[
            "trace", "chaos", "--ranks", "3", "--n", "128", "--seed", "5",
        ])
        .unwrap();
        assert!(out.contains("# survivors: [0, 1, 2]"), "{out}");
        assert!(out.contains("OK (bitwise)"), "{out}");
        repro_core::obs::validate_trace(&out).expect("schema");
    }

    #[test]
    fn trace_check_round_trips_a_generated_trace() {
        let trace =
            run_cmd(&["trace", "chaos", "--ranks", "3", "--n", "64", "--seed", "8"]).unwrap();
        let fs = move |path: &str| {
            if path == "t.jsonl" {
                Ok(trace.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["trace", "check", "--file", "t.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args, &fs).unwrap();
        assert!(out.contains("trace OK"), "{out}");
        assert!(out.contains("select"), "{out}");

        let bad_fs = |path: &str| {
            if path == "bad.jsonl" {
                Ok("{\"sub\":\"x\",\"seq\":1,\"kind\":\"a\"}\n{\"sub\":\"x\",\"seq\":1,\"kind\":\"b\"}".to_string())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["trace", "check", "--file", "bad.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &bad_fs).unwrap_err();
        assert!(e.msg.contains("invalid trace"), "{e}");
    }

    #[test]
    fn trace_error_paths() {
        assert!(run_cmd(&["trace"]).is_err(), "needs subcommand");
        assert!(run_cmd(&["trace", "bogus"]).is_err(), "unknown subcommand");
        assert!(run_cmd(&["trace", "check"]).is_err(), "check needs --file");
        assert!(
            run_cmd(&["trace", "check", "--seed", "1"]).is_err(),
            "check rejects stray options"
        );
        assert!(
            run_cmd(&["trace", "chaos", "--drop", "2.0"]).is_err(),
            "invalid fault probability"
        );
    }

    #[test]
    fn trace_reduce_telemetry_emits_node_events_and_realized_spread() {
        let off = run_cmd(&["trace", "reduce", "--n", "256", "--dr", "8", "--seed", "3"]).unwrap();
        assert!(!off.contains("\"kind\":\"node\""), "{off}");
        assert!(!off.contains("realized_spread"), "{off}");
        let on = run_cmd(&[
            "trace",
            "reduce",
            "--n",
            "256",
            "--dr",
            "8",
            "--seed",
            "3",
            "--telemetry",
        ])
        .unwrap();
        repro_core::obs::validate_trace(&on).expect("schema");
        assert!(on.contains("\"kind\":\"node\""), "{on}");
        assert!(on.contains("realized_spread"), "{on}");
        assert!(on.contains("runtime.nodes_observed"), "{on}");
        // Telemetry is additive: the traced run computes the same sum.
        let sum_line = |s: &str| {
            s.lines()
                .find(|l| l.contains("PR sum="))
                .unwrap()
                .to_string()
        };
        assert_eq!(sum_line(&off), sum_line(&on));
    }

    #[test]
    fn trace_diff_is_clean_on_identical_telemetry_traces() {
        let t = run_cmd(&["trace", "reduce", "--n", "128", "--dr", "4", "--telemetry"]).unwrap();
        let fs = move |path: &str| match path {
            "a.jsonl" | "b.jsonl" => Ok(t.clone()),
            _ => Err(err("unknown file")),
        };
        let args: Vec<String> = ["trace", "diff", "a.jsonl", "b.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args, &fs).unwrap();
        assert!(out.contains("no divergent nodes"), "{out}");
    }

    #[test]
    fn trace_diff_localizes_a_one_ulp_perturbation() {
        // The perturbed element dominates its chunk, so the one-ulp nudge
        // survives the leaf's rounding and the diff can name the origin.
        let vals = [
            "1.0", "1e-30", "1e-30", "1e-30", "1e-30", "1e-30", "1e-30", "1e-30",
        ];
        let mut base = vec!["trace", "reduce", "--telemetry"];
        base.extend_from_slice(&vals);
        let a = run_cmd(&base).unwrap();
        let mut pert = vec!["trace", "reduce", "--telemetry", "--perturb", "0"];
        pert.extend_from_slice(&vals);
        let b = run_cmd(&pert).unwrap();
        let fs = move |path: &str| match path {
            "a.jsonl" => Ok(a.clone()),
            "b.jsonl" => Ok(b.clone()),
            _ => Err(err("unknown file")),
        };
        let args: Vec<String> = ["trace", "diff", "a.jsonl", "b.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &fs).unwrap_err();
        assert!(e.msg.contains("first divergent node"), "{e}");
        assert!(
            e.msg
                .contains("origin: node runtime/c0 leaf interval [0, 8)"),
            "{e}"
        );
    }

    #[test]
    fn trace_chaos_telemetry_replays_byte_identically() {
        let args = [
            "trace",
            "chaos",
            "--ranks",
            "3",
            "--n",
            "96",
            "--seed",
            "5",
            "--telemetry",
        ];
        let a = run_cmd(&args).unwrap();
        let b = run_cmd(&args).unwrap();
        assert_eq!(a, b);
        repro_core::obs::validate_trace(&a).expect("schema");
        assert!(a.contains("\"node\":\"root\""), "{a}");
        assert!(a.contains("\"node\":\"leaf.r1.s0\""), "{a}");
        // The replay line advertises the telemetry flag so a copy-pasted
        // rerun reproduces the telemetried stream, not the bare one.
        assert!(a.contains("--kill 0 --telemetry"), "{a}");
    }

    #[test]
    fn trace_chaos_perturbation_diverges_at_the_root() {
        let base = [
            "trace",
            "chaos",
            "--ranks",
            "3",
            "--n",
            "96",
            "--seed",
            "5",
            "--telemetry",
        ];
        let a = run_cmd(&base).unwrap();
        let pert = [
            "trace",
            "chaos",
            "--ranks",
            "3",
            "--n",
            "96",
            "--seed",
            "5",
            "--telemetry",
            "--perturb",
            "40",
        ];
        let b = run_cmd(&pert).unwrap();
        let fs = move |path: &str| match path {
            "a.jsonl" => Ok(a.clone()),
            "b.jsonl" => Ok(b.clone()),
            _ => Err(err("unknown file")),
        };
        let args: Vec<String> = ["trace", "diff", "a.jsonl", "b.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &fs).unwrap_err();
        // The zero-sum input makes the perturbation visible in the merged
        // gather result no matter what the leaf rounding absorbs.
        assert!(e.msg.contains("rank0/root"), "{e}");
        assert!(e.msg.contains("origin: node"), "{e}");
    }

    #[test]
    fn report_renders_prometheus_and_html() {
        let prom = run_cmd(&["report", "--n", "128", "--dr", "4", "--seed", "7"]).unwrap();
        assert!(prom.contains("# TYPE"), "{prom}");
        assert!(prom.contains("runtime_nodes_observed"), "{prom}");
        assert!(prom.contains("select_spread_drift"), "{prom}");
        let html = run_cmd(&[
            "report", "--format", "html", "--n", "128", "--dr", "4", "--seed", "7",
        ])
        .unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
        assert!(html.contains("Error trajectory"), "{html}");
    }

    #[test]
    fn telemetry_error_paths() {
        assert!(
            run_cmd(&["trace", "diff", "only-one.jsonl"]).is_err(),
            "diff needs two files"
        );
        assert!(
            run_cmd(&["trace", "diff", "a", "b", "c"]).is_err(),
            "diff rejects three files"
        );
        assert!(
            run_cmd(&["trace", "diff", "--file", "a"]).is_err(),
            "diff rejects options"
        );
        assert!(
            run_cmd(&["trace", "reduce", "--perturb", "99", "1", "2"]).is_err(),
            "perturb out of range"
        );
        assert!(
            run_cmd(&["report", "--format", "yaml"]).is_err(),
            "unknown report format"
        );
        assert!(
            run_cmd(&["trace", "reduce", "--sample", "-1"]).is_err(),
            "bad sample"
        );
    }

    /// The `# manifest: ` trailer of a command's output.
    fn manifest_line(out: &str) -> &str {
        out.lines()
            .rev()
            .find_map(|l| l.strip_prefix("# manifest: "))
            .expect("output carries a manifest trailer")
    }

    #[test]
    fn trace_reduce_manifest_parses_and_replays_bitwise() {
        let out = run_cmd(&["trace", "reduce", "--n", "256", "--dr", "6", "--seed", "11"]).unwrap();
        let m = RunManifest::parse(manifest_line(&out)).expect("manifest parses");
        assert_eq!(m.cmd, "reduce");
        assert_eq!(m.n, 256);
        assert_eq!(m.seed, 11);
        assert_eq!(m.source, "generated");
        assert!(m.replayable());
        assert!(m.result_bits.is_some());
        assert!(m.selector_bits.is_some());
        assert!(!m.algorithm.is_empty());
        // `replay` accepts the saved trace text directly (manifest trailer).
        let fs = move |path: &str| {
            if path == "t.jsonl" {
                Ok(out.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["replay", "t.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ok = run(&args, &fs).unwrap();
        assert!(ok.contains("replay OK (bitwise)"), "{ok}");
    }

    #[test]
    fn trace_chaos_manifest_round_trips_fault_spec_and_replays() {
        let out = run_cmd(&[
            "trace", "chaos", "--ranks", "4", "--n", "128", "--seed", "9", "--kill", "1", "--drop",
            "0.1",
        ])
        .unwrap();
        let m = RunManifest::parse(manifest_line(&out)).expect("manifest parses");
        assert_eq!(m.cmd, "chaos");
        assert_eq!(m.workers, 4);
        let fault = m.fault.as_ref().expect("chaos manifest carries faults");
        assert_eq!(fault.kill, 1);
        assert_eq!(fault.drop, 0.1);
        let json = m.to_json();
        let fs = move |path: &str| {
            if path == "m.json" {
                Ok(json.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["replay", "m.json"].iter().map(|s| s.to_string()).collect();
        let ok = run(&args, &fs).unwrap();
        assert!(ok.contains("replay OK (bitwise)"), "{ok}");
    }

    #[test]
    fn sum_manifest_embeds_values_and_replays() {
        let out = run_cmd(&["sum", "--alg", "K", "1e16", "1", "-1e16"]).unwrap();
        let m = RunManifest::parse(manifest_line(&out)).expect("manifest parses");
        assert_eq!(m.cmd, "sum");
        assert_eq!(m.source, "embedded");
        assert_eq!(m.values_bits.as_ref().map(Vec::len), Some(3));
        assert_eq!(m.algorithm, "K");
        let json = m.to_json();
        let fs = move |path: &str| {
            if path == "m.json" {
                Ok(json.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["replay", "m.json"].iter().map(|s| s.to_string()).collect();
        assert!(run(&args, &fs).unwrap().contains("replay OK"), "sum replay");
    }

    #[test]
    fn replay_detects_a_perturbed_manifest_with_exit_code_1() {
        let out = run_cmd(&["trace", "reduce", "--n", "128", "--dr", "8", "--seed", "11"]).unwrap();
        // A different seed generates different data: the recorded result
        // bits can no longer be reproduced, which is exactly the
        // divergence the replay gate must catch.
        let perturbed = manifest_line(&out).replace("\"seed\":\"11\"", "\"seed\":\"12\"");
        assert_ne!(perturbed, manifest_line(&out), "seed field must rewrite");
        let fs = move |path: &str| {
            if path == "m.json" {
                Ok(perturbed.clone())
            } else {
                Err(err("unknown file"))
            }
        };
        let args: Vec<String> = ["replay", "m.json"].iter().map(|s| s.to_string()).collect();
        let e = run(&args, &fs).unwrap_err();
        assert_eq!(e.code, 1, "{e}");
        assert!(e.msg.contains("replay DIVERGED"), "{e}");
        assert!(e.msg.contains("result_bits"), "{e}");
    }

    #[test]
    fn replay_rejects_malformed_manifests_with_exit_code_2() {
        let fs = |path: &str| match path {
            "garbage.json" => Ok("this is not a manifest".to_string()),
            "badschema.json" => {
                Ok("{\"schema\":\"repro-manifest-v999\",\"cmd\":\"reduce\"}".to_string())
            }
            _ => Err(err("unknown file")),
        };
        for path in ["garbage.json", "badschema.json"] {
            let args: Vec<String> = ["replay", path].iter().map(|s| s.to_string()).collect();
            let e = run(&args, &fs).unwrap_err();
            assert_eq!(e.code, 2, "{path}: {e}");
        }
        assert!(run_cmd(&["replay"]).is_err(), "replay needs a path");
    }

    #[test]
    fn trace_diff_exit_codes_distinguish_parse_from_divergence() {
        // Unparseable input: schema error, exit 2.
        let bad_fs = |_: &str| Ok("not json at all {".to_string());
        let args: Vec<String> = ["trace", "diff", "a", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &bad_fs).unwrap_err();
        assert_eq!(e.code, 2, "{e}");
        // Numerical divergence: exit 1.
        let vals = ["1.0", "1e-30", "1e-30", "1e-30"];
        let mut base = vec!["trace", "reduce", "--telemetry"];
        base.extend_from_slice(&vals);
        let a = run_cmd(&base).unwrap();
        let mut pert = vec!["trace", "reduce", "--telemetry", "--perturb", "0"];
        pert.extend_from_slice(&vals);
        let b = run_cmd(&pert).unwrap();
        let fs = move |path: &str| match path {
            "a.jsonl" => Ok(a.clone()),
            "b.jsonl" => Ok(b.clone()),
            _ => Err(err("unknown file")),
        };
        let args: Vec<String> = ["trace", "diff", "a.jsonl", "b.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &fs).unwrap_err();
        assert_eq!(e.code, 1, "{e}");
    }

    #[test]
    fn flight_subcommand_reports_rings_and_overhead() {
        // Drive at least one reduction through the process-global recorder
        // so the status has something to show.
        run_cmd(&["trace", "reduce", "--n", "64"]).unwrap();
        let out = run_cmd(&["flight"]).unwrap();
        assert!(out.contains("# flight recorder: enabled="), "{out}");
        assert!(out.contains("capacity="), "{out}");
        assert!(out.contains("obs.overhead.events"), "{out}");
        assert!(out.contains("# ring select:"), "{out}");
        assert!(run_cmd(&["flight", "--bogus"]).is_err());
        assert!(run_cmd(&["flight", "--dump"]).is_err(), "--dump needs dir");
    }

    #[test]
    fn manifests_are_deterministic_across_runs() {
        let args = ["trace", "reduce", "--n", "128", "--dr", "4", "--seed", "3"];
        let a = run_cmd(&args).unwrap();
        let b = run_cmd(&args).unwrap();
        assert_eq!(manifest_line(&a), manifest_line(&b));
    }

    #[test]
    fn error_paths() {
        assert!(run_cmd(&["sum"]).is_err(), "no values");
        assert!(run_cmd(&["sum", "abc"]).is_err(), "bad value");
        assert!(run_cmd(&["sum", "--alg", "XX", "1"]).is_err(), "bad alg");
        assert!(run_cmd(&["select", "1.0"]).is_err(), "missing tolerance");
        assert!(run_cmd(&["gen"]).is_err(), "gen needs --n");
        assert!(run_cmd(&["dot"]).is_err(), "dot needs files");
        assert!(run_cmd(&["bogus"]).is_err(), "unknown command");
        assert!(run_cmd(&["sum", "--nope", "1"]).is_err(), "unknown option");
        let usage = run_cmd(&["help"]).unwrap();
        assert!(usage.contains("USAGE"));
    }
}
