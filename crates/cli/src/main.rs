//! The `repro-reduce` binary: thin I/O shell over [`repro_cli::run`].

use std::io::Read;

fn read_file(path: &str) -> Result<String, repro_cli::CliError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| repro_cli::CliError::new(format!("reading stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| repro_cli::CliError::new(format!("reading {path}: {e}")))
    }
}

fn main() {
    // Arm the always-on flight recorder and its panic hook before anything
    // else: a crash anywhere below leaves a post-mortem (when
    // REPRO_POSTMORTEM is set) instead of a bare backtrace.
    repro_cli::init_flight_from_env();
    // Validate the SIMD dispatch environment before any kernel can consult
    // it: an invalid REPRO_SIMD is a clean diagnostic + nonzero exit here,
    // never a library panic (and never a silent fallback mid-benchmark).
    if let Err(e) = repro_cli::check_dispatch_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match repro_cli::run(&args, &read_file) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
