//! Real-process checks of the `REPRO_SIMD` startup validation: the cached
//! dispatch state is per-process, so only a spawned binary can observe what
//! a user with a bad environment observes. Library panics would surface
//! here as a `panicked at` line and a 101/abort status — the regression this
//! guards against.

use std::process::Command;

fn repro_reduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro-reduce"))
}

#[test]
fn invalid_repro_simd_is_a_clean_diagnostic_not_a_panic() {
    let out = repro_reduce()
        .env("REPRO_SIMD", "bogus")
        .arg("simd")
        .output()
        .expect("spawn repro-reduce");
    assert!(
        !out.status.success(),
        "invalid REPRO_SIMD must exit nonzero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("REPRO_SIMD=\"bogus\"") && stderr.contains("scalar|sse2|avx2|auto"),
        "diagnostic should name the bad value and the accepted ones: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be a diagnostic, not a panic: {stderr}"
    );
}

#[test]
fn invalid_repro_simd_blocks_every_command_at_startup() {
    // The init check runs before command dispatch: even a command that
    // never touches SIMD kernels refuses to run under a bad override.
    let out = repro_reduce()
        .env("REPRO_SIMD", "avx512")
        .args(["sum", "1", "2", "3"])
        .output()
        .expect("spawn repro-reduce");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REPRO_SIMD"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn unsupported_forced_tier_names_the_supported_set() {
    // Find a tier the machine lacks, if any; skip quietly on a box that
    // supports everything (the unparsable-value tests above still run).
    let probe = |tier: &str| {
        repro_reduce()
            .args(["simd", "--check", tier])
            .output()
            .expect("spawn repro-reduce")
            .status
            .success()
    };
    let Some(missing) = ["avx2", "sse2"].into_iter().find(|t| !probe(t)) else {
        return;
    };
    let out = repro_reduce()
        .env("REPRO_SIMD", missing)
        .arg("simd")
        .output()
        .expect("spawn repro-reduce");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("supported:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn valid_overrides_still_run() {
    let out = repro_reduce()
        .env("REPRO_SIMD", "scalar")
        .arg("simd")
        .output()
        .expect("spawn repro-reduce");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("active: scalar"), "{stdout}");
    assert!(stdout.contains("forced by REPRO_SIMD"), "{stdout}");
}
