//! Subprocess tests of the flight recorder's post-mortem contract: a
//! process that dies mid-reduction (or survives a fault-plane incident)
//! must leave a schema-valid `postmortem.jsonl` behind, with the run's
//! manifest embedded — and a clean run must leave nothing.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro-reduce"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-postmortem-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The string value of `field` in the first JSONL line whose `kind` is
/// `kind` — a minimal extractor for the post-mortem header events.
fn field_of(dump: &str, kind: &str, field: &str) -> Option<String> {
    let needle = format!("\"kind\":\"{kind}\"");
    let line = dump.lines().find(|l| l.contains(&needle))?;
    let parsed = repro_core::obs::Json::parse(line).ok()?;
    parsed.get(field)?.as_str().map(|s| s.to_string())
}

#[test]
fn panic_mid_reduction_leaves_a_schema_valid_postmortem_with_manifest() {
    let dir = temp_dir("panic");
    let status = bin()
        .args(["trace", "reduce", "--n", "128", "--dr", "6", "--seed", "7"])
        .env("REPRO_POSTMORTEM", &dir)
        .env("REPRO_FLIGHT_TEST_PANIC", "reduce")
        .output()
        .expect("spawn repro-reduce");
    assert!(
        !status.status.success(),
        "injected panic must fail the process"
    );

    let dump = std::fs::read_to_string(dir.join("postmortem.jsonl"))
        .expect("panic hook writes postmortem.jsonl");
    // The whole dump obeys the trace schema: ring evictions show up as
    // declared drops, never as contiguity violations.
    let summary = repro_core::obs::validate_trace(&dump).expect("postmortem validates");
    assert!(summary.subsystems.iter().any(|s| s == "flight"), "{dump}");
    assert!(
        summary.subsystems.iter().any(|s| s == "select"),
        "the selector decided before the panic: {dump}"
    );
    assert!(dump.contains("\"kind\":\"postmortem\""), "{dump}");
    assert!(dump.contains("\"kind\":\"panic\""), "{dump}");
    assert!(
        dump.contains("REPRO_FLIGHT_TEST_PANIC"),
        "panic message recorded: {dump}"
    );
    assert!(dump.contains("obs.overhead.events"), "{dump}");

    // The parked manifest is embedded and parses back to this very run.
    let manifest_json =
        field_of(&dump, "manifest", "manifest").expect("postmortem embeds the run manifest");
    let manifest =
        repro_core::obs::RunManifest::parse(&manifest_json).expect("embedded manifest parses");
    assert_eq!(manifest.cmd, "reduce");
    assert_eq!(manifest.n, 128);
    assert_eq!(manifest.seed, 7);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_writes_no_postmortem() {
    let dir = temp_dir("clean");
    let out = bin()
        .args(["trace", "reduce", "--n", "64", "--seed", "3"])
        .env("REPRO_POSTMORTEM", &dir)
        .output()
        .expect("spawn repro-reduce");
    assert!(out.status.success(), "{:?}", out);
    assert!(
        !dir.join("postmortem.jsonl").exists(),
        "a clean run must not dump"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_plane_kill_dumps_an_incident_postmortem() {
    let dir = temp_dir("kill");
    let out = bin()
        .args([
            "trace", "chaos", "--ranks", "4", "--n", "128", "--seed", "9", "--kill", "1",
        ])
        .env("REPRO_POSTMORTEM", &dir)
        .output()
        .expect("spawn repro-reduce");
    // The run itself heals and succeeds; the kill still dumps an incident.
    assert!(out.status.success(), "{:?}", out);
    let dump = std::fs::read_to_string(dir.join("postmortem.jsonl"))
        .expect("kill incident writes postmortem.jsonl");
    repro_core::obs::validate_trace(&dump).expect("postmortem validates");
    assert!(dump.contains("\"kind\":\"kill\""), "{dump}");
    let manifest_json =
        field_of(&dump, "manifest", "manifest").expect("incident dump embeds the manifest");
    let manifest = repro_core::obs::RunManifest::parse(&manifest_json).expect("manifest parses");
    assert_eq!(manifest.cmd, "chaos");
    assert_eq!(manifest.fault.expect("fault spec").kill, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_recorder_keeps_output_byte_identical_and_never_dumps() {
    let dir = temp_dir("disabled");
    let args = ["trace", "reduce", "--n", "128", "--dr", "4", "--seed", "5"];
    let on = bin().args(args).output().expect("spawn");
    let off = bin()
        .args(args)
        .env("REPRO_FLIGHT", "off")
        .env("REPRO_POSTMORTEM", &dir)
        .output()
        .expect("spawn");
    assert!(on.status.success() && off.status.success());
    // The recorder is pure observation: turning it off changes nothing in
    // the deterministic JSONL event stream. (`#` summary lines differ
    // legitimately — wall-time metric histograms, and the manifest's env
    // capture records REPRO_FLIGHT itself.)
    let events = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(events(&on.stdout), events(&off.stdout));
    assert!(!dir.join("postmortem.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_codes_surface_through_the_binary() {
    let dir = temp_dir("codes");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad-manifest.json");
    std::fs::write(&bad, "definitely not a manifest\n").unwrap();
    let schema = bin()
        .args(["replay", bad.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(
        schema.status.code(),
        Some(2),
        "schema errors exit 2: {schema:?}"
    );
    let usage = bin().args(["bogus-command"]).output().expect("spawn");
    assert_eq!(usage.status.code(), Some(1), "ordinary failures exit 1");
    let _ = std::fs::remove_dir_all(&dir);
}
