//! Sampling policy for numerical-accuracy telemetry.
//!
//! Error telemetry is *additive* instrumentation: when enabled, every
//! reduction node additionally emits a `node` event carrying its partial
//! sum bits, the running Higham bound `n·u·Σ|xᵢ|` over its element
//! interval, and — at sampled nodes — the exact ulp deviation against a
//! superaccumulator shadow reduction. When disabled (the default), no
//! `node` events are emitted at all and the event stream is byte-identical
//! to an uninstrumented run, preserving the trace-replay contract.
//!
//! The config lives here (rather than in the runtime) because every
//! instrumented layer — thread-pool engine, tree executor, simulated
//! collectives — shares the same policy vocabulary.

/// Which numerical telemetry a traced reduction emits. Off by default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Emit one `node` event per reduction-tree node (leaf chunks and
    /// internal merges) with the node's partial-sum bits and Higham bound.
    pub node_sums: bool,
    /// Measure the exact ulp deviation (against a superaccumulator shadow
    /// reduction) at every `exact_every`-th node, counted in deterministic
    /// plan order. `0` disables exact sampling; `1` samples every node.
    pub exact_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TelemetryConfig {
    /// No numerical telemetry: the instrumented paths emit exactly the
    /// events they emitted before telemetry existed.
    pub fn off() -> Self {
        TelemetryConfig {
            node_sums: false,
            exact_every: 0,
        }
    }

    /// Node sums, bounds, and exact ulp deviation at **every** node — the
    /// forensics setting (roughly doubles the arithmetic: one shadow
    /// superaccumulator tree next to the real one).
    pub fn full() -> Self {
        TelemetryConfig {
            node_sums: true,
            exact_every: 1,
        }
    }

    /// Node sums and bounds everywhere, exact ulp deviation at every
    /// `every`-th node (`0` = never) — the production setting: bound
    /// tracking is O(1) per node, the superaccumulator shadow is paid only
    /// at the sampled nodes.
    pub fn sampled(every: u64) -> Self {
        TelemetryConfig {
            node_sums: true,
            exact_every: every,
        }
    }

    /// Whether any node telemetry is emitted at all.
    pub fn enabled(&self) -> bool {
        self.node_sums
    }

    /// Whether the node with this deterministic ordinal (plan-order node
    /// counter, starting at 0) gets the exact-shadow ulp measurement.
    pub fn sample_exact(&self, ordinal: u64) -> bool {
        self.node_sums && self.exact_every != 0 && ordinal % self.exact_every == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let c = TelemetryConfig::default();
        assert_eq!(c, TelemetryConfig::off());
        assert!(!c.enabled());
        assert!(!c.sample_exact(0));
    }

    #[test]
    fn full_samples_every_node() {
        let c = TelemetryConfig::full();
        assert!(c.enabled());
        for ordinal in 0..10 {
            assert!(c.sample_exact(ordinal));
        }
    }

    #[test]
    fn sampled_hits_every_nth_node() {
        let c = TelemetryConfig::sampled(4);
        assert!(c.enabled());
        let hits: Vec<u64> = (0..12).filter(|&o| c.sample_exact(o)).collect();
        assert_eq!(hits, vec![0, 4, 8]);
        // Sampling period 0 means bounds-only telemetry.
        let bounds_only = TelemetryConfig::sampled(0);
        assert!(bounds_only.enabled());
        assert!((0..12).all(|o| !bounds_only.sample_exact(o)));
    }
}
