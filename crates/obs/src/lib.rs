//! # `repro-obs` — deterministic observability for reproducible reductions
//!
//! The paper's thesis is that a runtime can afford to *observe* its own
//! reductions and act on what it sees. This crate is the other half of that
//! bargain: the runtime must also be able to *explain* what it did, and the
//! explanation must be as reproducible as the arithmetic. Everything here
//! is built around that constraint:
//!
//! * **Events** ([`Event`]) carry a subsystem name, a **logical timestamp**
//!   (a per-subsystem operation counter, not a wall clock), an event kind,
//!   and typed fields. Two runs of the same seeded workload produce
//!   byte-identical event streams; wall-clock time is an *optional* extra
//!   column ([`Trace::with_wall_clock`]) that tooling strips before
//!   comparing.
//! * **Scopes** ([`Scope`]) own one subsystem's counter. A scope is
//!   single-threaded by construction — concurrency is handled by giving
//!   each thread (pool worker, simulated rank) its own scope and
//!   concatenating buffers in a deterministic order afterwards, never by
//!   interleaving live.
//! * **Sinks** ([`Sink`]) decouple recording from output: [`MemorySink`]
//!   for tests and deterministic post-processing, [`JsonlSink`] for
//!   streaming JSON Lines, [`NoopSink`] so a disabled trace costs one
//!   branch per call site.
//! * **Metrics** ([`Registry`]) are counters, gauges, and fixed-bucket
//!   histograms kept in ordered maps, so a snapshot renders identically on
//!   every platform.
//! * **Validation** ([`validate_trace`]) re-parses a JSONL trace with the
//!   built-in parser ([`json::parse`]) and checks the schema contract:
//!   every line parses, `sub`/`seq`/`kind` are present and well-typed, and
//!   logical timestamps are strictly monotone per subsystem.
//!
//! The crate is dependency-free (JSON is hand-rolled both ways) so the
//! instrumented crates pay nothing for it beyond what they use.
//!
//! ```
//! use repro_obs::{f, Trace};
//!
//! let (trace, sink) = Trace::to_memory();
//! let mut scope = trace.scope("runtime");
//! scope.event("chunk_exec", vec![f("chunk", 0usize), f("len", 4096usize)]);
//! scope.event("merge", vec![f("step", 0usize)]);
//!
//! let text = repro_obs::render_jsonl(&sink.drain());
//! let summary = repro_obs::validate_trace(&text).unwrap();
//! assert_eq!(summary.events, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod json;
mod metrics;
mod sink;
mod trace;

pub use event::{f, Event, Value};
pub use json::{validate_trace, Json, TraceSummary};
pub use metrics::{HistogramSnapshot, MetricsSnapshot, Registry, TIME_BUCKET_EDGES_US};
pub use sink::{render_jsonl, JsonlSink, MemorySink, NoopSink, Sink};
pub use trace::{Scope, Trace};
