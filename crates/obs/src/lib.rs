//! # `repro-obs` — deterministic observability for reproducible reductions
//!
//! The paper's thesis is that a runtime can afford to *observe* its own
//! reductions and act on what it sees. This crate is the other half of that
//! bargain: the runtime must also be able to *explain* what it did, and the
//! explanation must be as reproducible as the arithmetic. Everything here
//! is built around that constraint:
//!
//! * **Events** ([`Event`]) carry a subsystem name, a **logical timestamp**
//!   (a per-subsystem operation counter, not a wall clock), an event kind,
//!   and typed fields. Two runs of the same seeded workload produce
//!   byte-identical event streams; wall-clock time is an *optional* extra
//!   column ([`Trace::with_wall_clock`]) that tooling strips before
//!   comparing.
//! * **Scopes** ([`Scope`]) own one subsystem's counter. A scope is
//!   single-threaded by construction — concurrency is handled by giving
//!   each thread (pool worker, simulated rank) its own scope and
//!   concatenating buffers in a deterministic order afterwards, never by
//!   interleaving live.
//! * **Sinks** ([`Sink`]) decouple recording from output: [`MemorySink`]
//!   for tests and deterministic post-processing, [`JsonlSink`] for
//!   streaming JSON Lines, [`NoopSink`] so a disabled trace costs one
//!   branch per call site.
//! * **Metrics** ([`Registry`]) are counters, gauges, and fixed-bucket
//!   histograms kept in ordered maps, so a snapshot renders identically on
//!   every platform.
//! * **Validation** ([`validate_trace`]) re-parses a JSONL trace with the
//!   built-in parser ([`json::parse`]) and checks the schema contract:
//!   every line parses, `sub`/`seq`/`kind` are present and well-typed, and
//!   logical timestamps are contiguous per subsystem — except a head gap
//!   exactly matching a declared ring-eviction drop counter (see
//!   [`flight`]), so eviction is distinguishable from corruption.
//! * **Flight recorder** ([`flight`]) keeps a bounded, always-on ring of
//!   recent events per subsystem and dumps a post-mortem (`postmortem.jsonl`
//!   with the run manifest embedded) on panics, fault-plane kills, and
//!   trace divergences.
//! * **Run manifests** ([`manifest`]) capture the complete determinism
//!   context of a run — seed, input recipe, selected algorithm, SIMD tier,
//!   workers, env, fault plan — as one JSON line that round-trips exactly,
//!   the substrate for `repro-reduce replay`.
//! * **Numerical telemetry** ([`TelemetryConfig`]) is the sampling policy
//!   for per-node accuracy instrumentation (partial-sum bits, Higham
//!   bounds, exact shadow ulps) — **off by default**, and strictly
//!   additive when on, so a run without it is byte-identical to the
//!   pre-telemetry stream.
//! * **Forensics** ([`forensics`]) aligns two traces of the same plan *by
//!   node id, not sequence position*, finds the divergent nodes, and walks
//!   the merge tree down to the leaf interval where divergence originated.
//! * **Reports** ([`report`]) render a metrics snapshot as Prometheus text
//!   exposition or a self-contained zero-dependency HTML page.
//!
//! The only dependency is the workspace's own `repro-fp` (itself
//! dependency-free; forensics needs its ulp distance), so the instrumented
//! crates pay nothing for this crate beyond what they use.
//!
//! ```
//! use repro_obs::{f, Trace};
//!
//! let (trace, sink) = Trace::to_memory();
//! let mut scope = trace.scope("runtime");
//! scope.event("chunk_exec", vec![f("chunk", 0usize), f("len", 4096usize)]);
//! scope.event("merge", vec![f("step", 0usize)]);
//!
//! let text = repro_obs::render_jsonl(&sink.drain());
//! let summary = repro_obs::validate_trace(&text).unwrap();
//! assert_eq!(summary.events, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod flight;
pub mod forensics;
pub mod json;
pub mod manifest;
mod metrics;
pub mod report;
mod sink;
mod telemetry;
mod trace;

pub use event::{f, Event, Value};
pub use flight::{FlightRecorder, RingSink};
pub use json::{validate_trace, Json, TraceSummary};
pub use manifest::{FaultSpec, RunManifest};
pub use metrics::{
    HistogramSnapshot, MetricsSnapshot, Registry, TIME_BUCKET_EDGES_US, ULP_BUCKET_EDGES,
};
pub use sink::{render_jsonl, JsonlSink, MemorySink, NoopSink, Sink};
pub use telemetry::TelemetryConfig;
pub use trace::{Scope, Trace};
