//! Run-provenance manifests: the complete determinism context of one run,
//! serializable to a single JSON line and parseable back without loss.
//!
//! A [`RunManifest`] captures everything needed to re-execute a run and
//! demand a bitwise-identical result: the input recipe (generator seed and
//! shape, or the raw values as bit patterns), the selected algorithm and
//! where its cost model came from, the SIMD tier, worker count, relevant
//! `REPRO_*` environment, fault-plan parameters (the fault plan is seeded
//! by the run seed), and telemetry/sampling/decision-cache configuration.
//! The CLI emits one on every run (`# manifest: {...}` trailer plus
//! `--manifest PATH`), parks it on the flight recorder so crash dumps
//! embed it, and `repro-reduce replay <manifest>` re-executes and compares
//! bit patterns.
//!
//! Exactness rules: [`crate::Json`] keeps numbers as `f64`, so any value
//! that must round-trip beyond 2^53 — the 64-bit seed and all f64 bit
//! patterns — is serialized as a *string* (decimal for the seed, 16-digit
//! hex for bit patterns). Finite floats use Rust's shortest-round-trip
//! `Display`, which re-parses to the identical bits; non-finite floats use
//! the same `"inf"`/`"-inf"`/`"nan"` tags as the event stream.

use crate::event::{push_json_f64, push_json_string};
use crate::json::Json;
use std::fmt::Write as _;

/// Schema marker carried by every manifest (`schema` field). Bump on any
/// incompatible field change; [`RunManifest::parse`] rejects other values
/// so a replay against a future or corrupted manifest fails loudly as a
/// schema error, never as a silent misread.
pub const MANIFEST_SCHEMA: &str = "repro-manifest-v1";

/// Inputs above this length are not embedded in the manifest as bit
/// patterns; such runs replay only when the input came from the seeded
/// generator.
pub const MAX_EMBEDDED_VALUES: usize = 4096;

/// Fault-plane parameters of a chaos run. The fault plan draws every
/// decision from streams seeded by the run seed, so these probabilities
/// plus [`RunManifest::seed`] reproduce the exact kill/drop/delay schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Per-message drop probability.
    pub drop: f64,
    /// Per-message delay probability.
    pub delay: f64,
    /// Per-message duplication probability.
    pub dup: f64,
    /// Per-message reorder probability.
    pub reorder: f64,
    /// Number of ranks killed mid-run.
    pub kill: u64,
}

/// The complete determinism context of one CLI run.
///
/// Serialized by [`RunManifest::to_json`] as one JSON object with a fixed
/// field order, and parsed back by [`RunManifest::parse`]; the two
/// round-trip exactly (asserted by tests), which is what makes
/// `repro-reduce replay` trustworthy.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Which CLI workload this was: `reduce` (selector + threaded runtime),
    /// `chaos` (fault-injected gather script), or `sum` (one operator).
    pub cmd: String,
    /// Input length.
    pub n: u64,
    /// Generator condition number (`--k`; may be infinite). `None` when
    /// the workload's generator does not take one (chaos) or the input was
    /// not generated.
    pub k: Option<f64>,
    /// Generator dynamic range in decades (`--dr`).
    pub dr: u64,
    /// The run seed — generator and fault plan both derive from it.
    /// Serialized as a decimal string (u64 does not survive f64 JSON).
    pub seed: u64,
    /// Worker count: runtime pool workers for `reduce`/`sum`, simulated
    /// ranks for `chaos`.
    pub workers: u64,
    /// Tolerance the selector ran under: `bitwise`, `abs:<v>`, `rel:<v>`.
    pub tolerance: String,
    /// Selected algorithm (abbreviation, e.g. `PR`).
    pub algorithm: String,
    /// Where the selector's cost model came from (its `CostSource` label).
    pub cost_source: String,
    /// Active SIMD dispatch tier label.
    pub simd_tier: String,
    /// Relevant `REPRO_*` environment, sorted by name; only variables that
    /// were actually set are recorded.
    pub env: Vec<(String, String)>,
    /// Whether numerical telemetry was on.
    pub telemetry: bool,
    /// Telemetry sampling stride, when sampled.
    pub sample: Option<u64>,
    /// Index nudged by one ulp (`--perturb`), when set.
    pub perturb: Option<u64>,
    /// Decision-cache state for this run (`off` when the run did not
    /// consult the cache — the traced CLI paths select fresh every time).
    pub cache: String,
    /// Fault-plane parameters, for chaos runs.
    pub fault: Option<FaultSpec>,
    /// Where the input came from: `generated` (seeded generator; replay
    /// regenerates), `embedded` (bit patterns in `values_bits`), or
    /// `external` (a file too large to embed — not replayable).
    pub source: String,
    /// The exact input as f64 bit patterns, when embedded
    /// (≤ [`MAX_EMBEDDED_VALUES`] values).
    pub values_bits: Option<Vec<u64>>,
    /// Bit pattern of the run's primary result (the runtime/world sum).
    pub result_bits: Option<u64>,
    /// Bit pattern of the selector's sum, when the workload computes one
    /// separately from the primary result.
    pub selector_bits: Option<u64>,
}

impl RunManifest {
    /// A mostly-empty manifest for `cmd`; callers fill in what their
    /// workload knows.
    pub fn new(cmd: &str) -> Self {
        RunManifest {
            cmd: cmd.to_string(),
            n: 0,
            k: None,
            dr: 0,
            seed: 0,
            workers: 0,
            tolerance: "bitwise".to_string(),
            algorithm: String::new(),
            cost_source: String::new(),
            simd_tier: String::new(),
            env: Vec::new(),
            telemetry: false,
            sample: None,
            perturb: None,
            cache: "off".to_string(),
            fault: None,
            source: "generated".to_string(),
            values_bits: None,
            result_bits: None,
            selector_bits: None,
        }
    }

    /// Whether [`RunManifest::parse`]d-back state suffices to re-execute:
    /// the input is either embedded or regenerable from the seed.
    pub fn replayable(&self) -> bool {
        self.values_bits.is_some() || self.source == "generated"
    }

    /// Serialize as one JSON object (no trailing newline), fixed field
    /// order, exact round-trip encodings (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        push_json_string(&mut out, MANIFEST_SCHEMA);
        out.push_str(",\"cmd\":");
        push_json_string(&mut out, &self.cmd);
        let _ = write!(out, ",\"n\":{}", self.n);
        out.push_str(",\"k\":");
        match self.k {
            Some(k) => push_json_f64(&mut out, k),
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"dr\":{}", self.dr);
        let _ = write!(out, ",\"seed\":\"{}\"", self.seed);
        let _ = write!(out, ",\"workers\":{}", self.workers);
        out.push_str(",\"tolerance\":");
        push_json_string(&mut out, &self.tolerance);
        out.push_str(",\"algorithm\":");
        push_json_string(&mut out, &self.algorithm);
        out.push_str(",\"cost_source\":");
        push_json_string(&mut out, &self.cost_source);
        out.push_str(",\"simd_tier\":");
        push_json_string(&mut out, &self.simd_tier);
        out.push_str(",\"env\":{");
        for (i, (name, value)) in self.env.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_string(&mut out, value);
        }
        out.push('}');
        let _ = write!(out, ",\"telemetry\":{}", self.telemetry);
        out.push_str(",\"sample\":");
        match self.sample {
            Some(s) => {
                let _ = write!(out, "{s}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"perturb\":");
        match self.perturb {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"cache\":");
        push_json_string(&mut out, &self.cache);
        out.push_str(",\"fault\":");
        match &self.fault {
            None => out.push_str("null"),
            Some(fs) => {
                out.push_str("{\"drop\":");
                push_json_f64(&mut out, fs.drop);
                out.push_str(",\"delay\":");
                push_json_f64(&mut out, fs.delay);
                out.push_str(",\"dup\":");
                push_json_f64(&mut out, fs.dup);
                out.push_str(",\"reorder\":");
                push_json_f64(&mut out, fs.reorder);
                let _ = write!(out, ",\"kill\":{}}}", fs.kill);
            }
        }
        out.push_str(",\"source\":");
        push_json_string(&mut out, &self.source);
        out.push_str(",\"values_bits\":");
        match &self.values_bits {
            None => out.push_str("null"),
            Some(bits) => {
                out.push('[');
                for (i, b) in bits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{b:016x}\"");
                }
                out.push(']');
            }
        }
        out.push_str(",\"result_bits\":");
        push_opt_bits(&mut out, self.result_bits);
        out.push_str(",\"selector_bits\":");
        push_opt_bits(&mut out, self.selector_bits);
        out.push('}');
        out
    }

    /// Parse a manifest back from its JSON form. Any malformed document,
    /// wrong schema marker, or ill-typed field is an error — replay treats
    /// these as schema failures (exit 2), distinct from a numerical
    /// mismatch (exit 1).
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let doc = Json::parse(text.trim()).map_err(|e| format!("manifest: {e}"))?;
        let schema = req_str(&doc, "schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest: unsupported schema {schema:?} (expected {MANIFEST_SCHEMA:?})"
            ));
        }
        let fault = match doc.get("fault") {
            None | Some(Json::Null) => None,
            Some(fj) => Some(FaultSpec {
                drop: req_f64(fj, "drop")?,
                delay: req_f64(fj, "delay")?,
                dup: req_f64(fj, "dup")?,
                reorder: req_f64(fj, "reorder")?,
                kill: req_u64(fj, "kill")?,
            }),
        };
        let env = match doc.get("env") {
            Some(Json::Obj(map)) => map
                .iter()
                .map(|(name, value)| {
                    value
                        .as_str()
                        .map(|v| (name.clone(), v.to_string()))
                        .ok_or(format!("manifest: env {name:?} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("manifest: missing object field \"env\"".to_string()),
        };
        let values_bits = match doc.get("values_bits") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => Some(
                items
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .ok_or("manifest: values_bits entry is not a string".to_string())
                            .and_then(parse_hex_bits)
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(_) => return Err("manifest: values_bits must be an array or null".to_string()),
        };
        Ok(RunManifest {
            cmd: req_str(&doc, "cmd")?,
            n: req_u64(&doc, "n")?,
            k: opt_f64(&doc, "k")?,
            dr: req_u64(&doc, "dr")?,
            seed: req_str(&doc, "seed")?
                .parse()
                .map_err(|_| "manifest: seed is not a decimal u64".to_string())?,
            workers: req_u64(&doc, "workers")?,
            tolerance: req_str(&doc, "tolerance")?,
            algorithm: req_str(&doc, "algorithm")?,
            cost_source: req_str(&doc, "cost_source")?,
            simd_tier: req_str(&doc, "simd_tier")?,
            env,
            telemetry: req_bool(&doc, "telemetry")?,
            sample: opt_u64(&doc, "sample")?,
            perturb: opt_u64(&doc, "perturb")?,
            cache: req_str(&doc, "cache")?,
            fault,
            source: req_str(&doc, "source")?,
            values_bits,
            result_bits: opt_bits(&doc, "result_bits")?,
            selector_bits: opt_bits(&doc, "selector_bits")?,
        })
    }
}

fn push_opt_bits(out: &mut String, bits: Option<u64>) {
    match bits {
        Some(b) => {
            let _ = write!(out, "\"{b:016x}\"");
        }
        None => out.push_str("null"),
    }
}

fn parse_hex_bits(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|_| format!("manifest: bad bit pattern {s:?}"))
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("manifest: missing string field {key:?}"))
}

fn req_bool(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("manifest: missing bool field {key:?}")),
    }
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    let x = doc
        .get(key)
        .and_then(Json::as_num)
        .ok_or(format!("manifest: missing numeric field {key:?}"))?;
    if x < 0.0 || x.fract() != 0.0 || x > 2f64.powi(53) {
        return Err(format!(
            "manifest: {key:?} is not a small non-negative integer, got {x}"
        ));
    }
    Ok(x as u64)
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        _ => req_u64(doc, key).map(Some),
    }
}

/// A float field that may be a plain number or one of the non-finite tags
/// the event serializer uses (`"inf"`, `"-inf"`, `"nan"`).
fn req_f64(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        Some(Json::Num(x)) => Ok(*x),
        Some(Json::Str(s)) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("manifest: {key:?} has non-numeric value {other:?}")),
        },
        _ => Err(format!("manifest: missing numeric field {key:?}")),
    }
}

fn opt_f64(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        _ => req_f64(doc, key).map(Some),
    }
}

fn opt_bits(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => parse_hex_bits(s).map(Some),
        Some(_) => Err(format!("manifest: {key:?} must be a hex string or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("reduce");
        m.n = 4096;
        m.k = Some(f64::INFINITY);
        m.dr = 12;
        m.seed = u64::MAX - 1; // deliberately above 2^53
        m.workers = 2;
        m.tolerance = "abs:1e-12".to_string();
        m.algorithm = "PR".to_string();
        m.cost_source = "baseline BENCH_06.json (avx2)".to_string();
        m.simd_tier = "avx2".to_string();
        m.env = vec![("REPRO_SIMD".to_string(), "avx2".to_string())];
        m.telemetry = true;
        m.sample = Some(3);
        m.perturb = Some(17);
        m.fault = Some(FaultSpec {
            drop: 0.25,
            delay: 0.1,
            dup: 0.0,
            reorder: 0.5,
            kill: 2,
        });
        m.values_bits = Some(vec![0.1f64.to_bits(), (-0.0f64).to_bits(), u64::MAX]);
        m.source = "embedded".to_string();
        m.result_bits = Some(1.5f64.to_bits());
        m.selector_bits = Some(0x0123_4567_89ab_cdef);
        m
    }

    #[test]
    fn round_trips_exactly_including_u64_extremes() {
        let m = sample();
        let json = m.to_json();
        let back = RunManifest::parse(&json).unwrap();
        assert_eq!(back, m);
        // And the serialization itself is stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn minimal_manifest_round_trips() {
        let m = RunManifest::new("chaos");
        let back = RunManifest::parse(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert!(back.replayable());
    }

    #[test]
    fn external_source_without_values_is_not_replayable() {
        let mut m = RunManifest::new("sum");
        m.source = "external".to_string();
        assert!(!m.replayable());
        m.values_bits = Some(vec![0]);
        assert!(m.replayable());
    }

    #[test]
    fn rejects_wrong_schema_garbage_and_bad_fields() {
        assert!(RunManifest::parse("not json").is_err());
        assert!(RunManifest::parse("{\"schema\":\"bogus-v9\"}")
            .unwrap_err()
            .contains("unsupported schema"));
        let mut m = sample();
        m.seed = 7;
        let json = m.to_json().replace("\"seed\":\"7\"", "\"seed\":7");
        assert!(
            RunManifest::parse(&json).is_err(),
            "numeric seed must be rejected"
        );
        let json = m
            .to_json()
            .replace("\"result_bits\":\"", "\"result_bits\":\"zz");
        assert!(RunManifest::parse(&json).is_err());
    }

    #[test]
    fn nonfinite_floats_round_trip_via_tags() {
        let mut m = RunManifest::new("reduce");
        m.k = Some(f64::INFINITY);
        let json = m.to_json();
        assert!(json.contains("\"k\":\"inf\""), "{json}");
        assert_eq!(RunManifest::parse(&json).unwrap().k, Some(f64::INFINITY));
    }
}
