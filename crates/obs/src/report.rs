//! Rendering a metrics snapshot for external consumers: Prometheus text
//! exposition (format 0.0.4) and a self-contained, zero-dependency HTML
//! report with an error-trajectory table and fixed-bucket histograms.
//!
//! Both renderers are pure functions of a [`MetricsSnapshot`] (plus, for
//! HTML, an optional list of node records for the trajectory table), so
//! rendering the same snapshot twice produces byte-identical output —
//! reports obey the same determinism contract as the traces they describe.

use crate::forensics::NodeRecord;
use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Map an internal metric name (`runtime.node_ulp`) to a Prometheus-legal
/// one (`runtime_node_ulp`): every character outside `[a-zA-Z0-9_:]`
/// becomes `_`, and a leading digit gets a `_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Format a float the way Prometheus expects (`+Inf`/`-Inf`/`NaN` spelled
/// out; otherwise Rust's shortest round-trip formatting).
fn prom_num(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

/// Render a metrics snapshot as Prometheus text exposition: counters as
/// `counter`, gauges as `gauge`, histograms as the conventional
/// `_bucket{le="..."}` / `_sum` / `_count` triple with cumulative buckets
/// ending at `le="+Inf"`, followed by estimated `_p50`/`_p95`/`_p99`
/// gauges derived from the fixed buckets (linear interpolation; a quantile
/// landing in the overflow bucket renders as `+Inf` rather than a
/// fabricated finite value).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_num(*v));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (edge, cum) in h.cumulative() {
            let le = match edge {
                Some(e) => e.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            if let Some(estimate) = h.quantile(q) {
                let _ = writeln!(out, "# TYPE {n}_{label} gauge");
                let _ = writeln!(out, "{n}_{label} {}", prom_num(estimate));
            }
        }
    }
    out
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a self-contained HTML report: no external scripts, stylesheets,
/// fonts, or images — a single file that renders anywhere, suitable as a CI
/// artifact. Contains the counters/gauges tables, every histogram as a
/// cumulative bucket table plus inline bar chart, and — when `nodes` is
/// non-empty — the error trajectory: one row per telemetry node in
/// emission order with its interval, partial sum, Higham bound, and
/// sampled exact ulp deviation.
pub fn render_html(title: &str, snap: &MetricsSnapshot, nodes: &[NodeRecord]) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>{}</title>\n<style>\n\
         body{{font:14px/1.4 system-ui,sans-serif;margin:2em auto;max-width:60em;color:#222}}\n\
         h1{{font-size:1.4em}} h2{{font-size:1.1em;margin-top:2em}}\n\
         table{{border-collapse:collapse;width:100%}}\n\
         th,td{{border:1px solid #ccc;padding:.3em .6em;text-align:left}}\n\
         th{{background:#f4f4f4}} td.num{{text-align:right;font-variant-numeric:tabular-nums}}\n\
         .bar{{background:#4a7db5;height:.9em;display:inline-block;min-width:1px}}\n\
         .empty{{color:#999}}\n\
         </style></head><body>\n<h1>{}</h1>\n",
        escape_html(title),
        escape_html(title)
    );

    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        out.push_str(
            "<h2>Counters &amp; gauges</h2>\n<table><tr><th>metric</th><th>value</th></tr>\n",
        );
        for (name, v) in &snap.counters {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td class=\"num\">{v}</td></tr>",
                escape_html(name)
            );
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td></tr>",
                escape_html(name),
                prom_num(*v)
            );
        }
        out.push_str("</table>\n");
    }

    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "<h2>Histogram: {}</h2>", escape_html(name));
        let _ = writeln!(
            out,
            "<p>count={} sum={} overflow={}</p>",
            h.count,
            h.sum,
            h.overflow()
        );
        out.push_str("<table><tr><th>bucket (le)</th><th>count</th><th></th></tr>\n");
        let max = h.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, (edge, _cum)) in h.cumulative().into_iter().enumerate() {
            let label = match edge {
                Some(e) => e.to_string(),
                None => "+Inf".to_string(),
            };
            let count = h.counts[i];
            // Fixed-width inline bars: width in tenths of em, capped at 20em.
            let width = (count as f64 / max as f64 * 200.0).round() as u64;
            let _ = writeln!(
                out,
                "<tr><td class=\"num\">{label}</td><td class=\"num\">{count}</td>\
                 <td><span class=\"bar\" style=\"width:{}em\"></span></td></tr>",
                width as f64 / 10.0
            );
        }
        out.push_str("</table>\n");
    }

    if !nodes.is_empty() {
        out.push_str(
            "<h2>Error trajectory</h2>\n\
             <table><tr><th>sub</th><th>node</th><th>interval</th><th>partial sum</th>\
             <th>Higham bound</th><th>exact ulps</th></tr>\n",
        );
        for n in nodes {
            let bound = n
                .bound
                .map(prom_num)
                .unwrap_or_else(|| "<span class=\"empty\">—</span>".to_string());
            let ulps = n
                .ulps
                .map(|u| u.to_string())
                .unwrap_or_else(|| "<span class=\"empty\">unsampled</span>".to_string());
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td class=\"num\">[{}, {})</td>\
                 <td class=\"num\">{:e}</td><td class=\"num\">{bound}</td>\
                 <td class=\"num\">{ulps}</td></tr>",
                escape_html(&n.sub),
                escape_html(&n.node),
                n.start,
                n.start + n.len,
                n.sum()
            );
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Registry, ULP_BUCKET_EDGES};

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter_add("runtime.nodes_observed", 7);
        r.gauge_set("select.realized_spread", 1.5e-12);
        r.observe("runtime.node_ulp", ULP_BUCKET_EDGES, 0);
        r.observe("runtime.node_ulp", ULP_BUCKET_EDGES, 3);
        r.observe("runtime.node_ulp", ULP_BUCKET_EDGES, u64::MAX);
        r.snapshot()
    }

    #[test]
    fn prometheus_rendering_has_types_buckets_and_inf() {
        let text = render_prometheus(&sample_snapshot());
        assert!(
            text.contains("# TYPE runtime_nodes_observed counter"),
            "{text}"
        );
        assert!(text.contains("runtime_nodes_observed 7"), "{text}");
        assert!(
            text.contains("# TYPE select_realized_spread gauge"),
            "{text}"
        );
        assert!(text.contains("# TYPE runtime_node_ulp histogram"), "{text}");
        assert!(
            text.contains("runtime_node_ulp_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("runtime_node_ulp_bucket{le=\"4\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("runtime_node_ulp_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("runtime_node_ulp_count 3"), "{text}");
        // Dots are not legal in Prometheus metric names.
        assert!(!text.contains("runtime.node_ulp"), "{text}");
    }

    #[test]
    fn prometheus_rendering_carries_estimated_quantiles() {
        // sample_snapshot: ulps 0, 3, u64::MAX → p50 in the (1, 2] bucket,
        // p99 in the overflow bucket (explicit +Inf, never a fake finite).
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE runtime_node_ulp_p50 gauge"), "{text}");
        assert!(text.contains("runtime_node_ulp_p50 "), "{text}");
        assert!(text.contains("runtime_node_ulp_p99 +Inf"), "{text}");
        // An empty histogram emits no quantile lines at all.
        let r = Registry::new();
        r.counter_add("only.counter", 1);
        assert!(!render_prometheus(&r.snapshot()).contains("_p50"));
    }

    #[test]
    fn prometheus_rendering_is_deterministic() {
        let snap = sample_snapshot();
        assert_eq!(render_prometheus(&snap), render_prometheus(&snap));
    }

    #[test]
    fn html_report_is_self_contained() {
        let nodes = vec![NodeRecord {
            sub: "runtime".into(),
            node: "c0".into(),
            start: 0,
            len: 256,
            sum_bits: 256.0f64.to_bits(),
            bound: Some(5.7e-14),
            ulps: Some(0),
        }];
        let html = render_html("repro-report", &sample_snapshot(), &nodes);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>\n"));
        // Self-contained: no external fetches of any kind.
        for needle in [
            "<script src",
            "<link",
            "href=\"http",
            "src=\"http",
            "@import",
            "url(",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        assert!(html.contains("Error trajectory"), "{html}");
        assert!(html.contains("[0, 256)"), "{html}");
        assert!(html.contains("runtime.node_ulp"), "{html}");
    }

    #[test]
    fn html_escapes_metric_names() {
        let r = Registry::new();
        r.counter_add("weird<name>&", 1);
        let html = render_html("t", &r.snapshot(), &[]);
        assert!(html.contains("weird&lt;name&gt;&amp;"), "{html}");
    }
}
