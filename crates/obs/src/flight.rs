//! Always-on flight recorder: bounded per-subsystem ring buffers with
//! post-mortem dumps.
//!
//! The tracing layer ([`crate::Trace`]) is opt-in and post-hoc: when a run
//! that nobody thought to trace goes wrong, it leaves nothing behind. The
//! flight recorder closes that gap. Every subsystem records its
//! load-bearing events (reductions, selector decisions, fault-plane kills)
//! into a fixed-capacity, overwrite-oldest ring per subsystem — cheap
//! enough to leave enabled in every run — and three triggers flush the
//! rings to a `postmortem.jsonl`: a process panic (see
//! [`install_panic_hook`]), an mpisim fault-plane kill/heal, or a
//! `trace diff` divergence.
//!
//! Determinism contract: recording never touches the run's outputs. The
//! rings are only read at dump time, so a run with the recorder disabled
//! (`REPRO_FLIGHT=off`) is byte-identical to one with it enabled — a
//! property the CI trace job asserts.
//!
//! Eviction is *accounted, not hidden*: each ring keeps a drop counter,
//! and the post-mortem header declares it per subsystem so
//! [`crate::validate_trace`] can tell ring eviction (legal head gap,
//! exactly matching the declared drop count) from corruption (any other
//! gap — still an error).

use crate::event::{f, Event, Value};
use crate::metrics::Registry;
use crate::sink::Sink;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Schema marker carried by the first line of every post-mortem dump.
pub const POSTMORTEM_SCHEMA: &str = "repro-postmortem-v1";

/// Default per-subsystem ring capacity (events retained per subsystem).
/// Small on purpose: the recorder holds "the last few moments", not a
/// full trace — full traces are what `trace reduce`/`trace chaos` are for.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One subsystem's bounded event ring.
struct Ring {
    events: VecDeque<Event>,
    /// Events evicted from this ring since process start.
    dropped: u64,
    /// Events ever recorded into this ring; doubles as the next logical
    /// timestamp when the recorder assigns sequence numbers itself.
    recorded: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            events: VecDeque::new(),
            dropped: 0,
            recorded: 0,
        }
    }
}

/// A point-in-time copy of one subsystem's ring, for dumps and tests.
#[derive(Clone, Debug)]
pub struct RingSnapshot {
    /// Subsystem name.
    pub sub: String,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted (overwritten) since process start.
    pub dropped: u64,
    /// Events ever recorded (retained + dropped).
    pub recorded: u64,
}

/// A bounded per-subsystem ring-buffer [`Sink`]: fixed capacity per
/// subsystem, overwrite-oldest on overflow, per-subsystem drop counters.
///
/// Also usable as a plain trace sink (the `obs/ring` bench entry measures
/// exactly that), but its main consumer is the [`FlightRecorder`], which
/// assigns logical timestamps itself so independent subsystems can record
/// without sharing a [`crate::Scope`].
pub struct RingSink {
    capacity: usize,
    rings: Mutex<BTreeMap<String, Ring>>,
    /// Total events recorded, across all subsystems (self-accounting).
    events: AtomicU64,
    /// Estimated serialized bytes recorded (self-accounting; a cheap
    /// deterministic estimate, not an exact JSONL byte count).
    bytes: AtomicU64,
}

impl RingSink {
    /// A ring sink retaining at most `capacity` events per subsystem
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            rings: Mutex::new(BTreeMap::new()),
            events: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Per-subsystem retained capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events recorded since construction (including evicted ones).
    pub fn events_recorded(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Estimated bytes recorded since construction. Deterministic function
    /// of the recorded events (names, strings, one flat cost per scalar),
    /// so two identical runs report identical byte counts.
    pub fn bytes_recorded(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn with_rings<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Ring>) -> R) -> R {
        match self.rings.lock() {
            Ok(mut guard) => f(&mut guard),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }

    fn account(&self, event: &Event) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(estimate_event_bytes(event), Ordering::Relaxed);
    }

    fn push_event(&self, event: Event) {
        self.account(&event);
        self.with_rings(|rings| {
            let ring = rings.entry(event.sub.clone()).or_insert_with(Ring::new);
            if ring.events.len() == self.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.recorded += 1;
            ring.events.push_back(event);
        });
    }

    /// Record an event, assigning the subsystem's next logical timestamp
    /// (events ever recorded for that subsystem). The first retained event
    /// after eviction therefore has `seq == dropped`, which is exactly the
    /// contract [`crate::validate_trace`] checks against the declared drop
    /// counter.
    pub fn push_assigning(&self, sub: &str, kind: &str, fields: Vec<(String, Value)>) {
        let event = self.with_rings(|rings| {
            let ring = rings.entry(sub.to_string()).or_insert_with(Ring::new);
            let event = Event {
                sub: sub.to_string(),
                seq: ring.recorded,
                kind: kind.to_string(),
                wall_us: None,
                fields,
            };
            if ring.events.len() == self.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.recorded += 1;
            ring.events.push_back(event.clone());
            event
        });
        self.account(&event);
    }

    /// Copy out every ring, sorted by subsystem name.
    pub fn snapshot(&self) -> Vec<RingSnapshot> {
        self.with_rings(|rings| {
            rings
                .iter()
                .map(|(sub, ring)| RingSnapshot {
                    sub: sub.clone(),
                    events: ring.events.iter().cloned().collect(),
                    dropped: ring.dropped,
                    recorded: ring.recorded,
                })
                .collect()
        })
    }
}

impl Sink for RingSink {
    fn record(&self, event: Event) {
        self.push_event(event);
    }
}

/// Deterministic serialized-size estimate for self-accounting: string
/// lengths plus a flat 8 bytes per scalar field and a small per-event
/// constant. Close enough to steer capacity decisions without paying for
/// real serialization on the hot path.
fn estimate_event_bytes(event: &Event) -> u64 {
    let mut bytes = 32 + event.sub.len() as u64 + event.kind.len() as u64;
    for (name, value) in &event.fields {
        bytes += name.len() as u64 + 4;
        bytes += match value {
            Value::Str(s) => s.len() as u64 + 2,
            _ => 8,
        };
    }
    bytes
}

/// The process-wide flight recorder: a [`RingSink`] plus the run context
/// needed to turn its contents into an actionable post-mortem (the current
/// run's manifest, a dump directory, an enabled flag).
///
/// Subsystems record through [`record`] (the free function, which hits the
/// process-global instance); the CLI parks the active run's manifest with
/// [`FlightRecorder::set_manifest_json`] so a crash dump carries enough
/// context for `repro-reduce replay`.
pub struct FlightRecorder {
    ring: RingSink,
    enabled: AtomicBool,
    dump_dir: Mutex<Option<PathBuf>>,
    manifest_json: Mutex<Option<String>>,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with the given per-subsystem ring capacity, enabled, with
    /// no dump directory (dumps are skipped until one is configured).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: RingSink::new(capacity),
            enabled: AtomicBool::new(true),
            dump_dir: Mutex::new(None),
            manifest_json: Mutex::new(None),
            dumps: AtomicU64::new(0),
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording. Disabled, [`FlightRecorder::record`]
    /// and [`FlightRecorder::dump`] are no-ops.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The underlying ring sink (for self-accounting and tests).
    pub fn ring(&self) -> &RingSink {
        &self.ring
    }

    /// Number of post-mortem dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Set (or clear) the directory `postmortem.jsonl` is written into.
    pub fn set_dump_dir(&self, dir: Option<PathBuf>) {
        match self.dump_dir.lock() {
            Ok(mut guard) => *guard = dir,
            Err(poisoned) => *poisoned.into_inner() = dir,
        }
    }

    /// Park the active run's manifest JSON so dumps can embed it.
    pub fn set_manifest_json(&self, manifest: Option<String>) {
        match self.manifest_json.lock() {
            Ok(mut guard) => *guard = manifest,
            Err(poisoned) => *poisoned.into_inner() = manifest,
        }
    }

    fn manifest_json_clone(&self) -> Option<String> {
        match self.manifest_json.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn dump_dir_clone(&self) -> Option<PathBuf> {
        match self.dump_dir.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Record one event under `sub`, assigning the subsystem's next
    /// logical timestamp. One atomic load and an early return when
    /// disabled.
    pub fn record(&self, sub: &str, kind: &str, fields: Vec<(String, Value)>) {
        if !self.enabled() {
            return;
        }
        self.ring.push_assigning(sub, kind, fields);
    }

    /// Record one event with lazily built fields: when recording is
    /// disabled the closure never runs, so hot paths pay one atomic load
    /// and a branch — no `Vec`, no key `String`s. Prefer this over
    /// [`FlightRecorder::record`] anywhere the call sits inside a loop.
    #[inline]
    pub fn record_with(
        &self,
        sub: &str,
        kind: &str,
        fields: impl FnOnce() -> Vec<(String, Value)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.ring.push_assigning(sub, kind, fields());
    }

    /// Publish the recorder's self-accounting into `registry` as
    /// `obs.overhead.*` gauges (last-write-wins, so repeated accounting is
    /// idempotent): total events and estimated bytes recorded, dumps
    /// written, and per-subsystem recorded/dropped attribution.
    pub fn account(&self, registry: &Registry) {
        registry.gauge_set("obs.overhead.events", self.ring.events_recorded() as f64);
        registry.gauge_set("obs.overhead.bytes", self.ring.bytes_recorded() as f64);
        registry.gauge_set("obs.overhead.dumps", self.dumps_written() as f64);
        for snap in self.ring.snapshot() {
            registry.gauge_set(
                &format!("obs.overhead.events.{}", snap.sub),
                snap.recorded as f64,
            );
            registry.gauge_set(
                &format!("obs.overhead.dropped.{}", snap.sub),
                snap.dropped as f64,
            );
        }
    }

    /// Render the post-mortem JSONL: a `flight`-subsystem header (the
    /// `postmortem` record with the schema marker and trigger reason, the
    /// embedded run manifest when one was parked, one `drops` declaration
    /// per subsystem, and the self-accounting metrics snapshot as `metric`
    /// lines), followed by every ring's retained events verbatim — original
    /// subsystems and logical timestamps, so the head gap of an evicted
    /// ring equals its declared drop count and the whole document passes
    /// [`crate::validate_trace`].
    pub fn render_postmortem(&self, reason: &str) -> String {
        let snaps = self.ring.snapshot();
        let mut head: Vec<Event> = Vec::new();
        let mut seq = 0u64;
        let mut push_head = |head: &mut Vec<Event>, kind: &str, fields: Vec<(String, Value)>| {
            head.push(Event {
                sub: "flight".to_string(),
                seq,
                kind: kind.to_string(),
                wall_us: None,
                fields,
            });
            seq += 1;
        };

        let retained: u64 = snaps.iter().map(|s| s.events.len() as u64).sum();
        push_head(
            &mut head,
            "postmortem",
            vec![
                f("schema", POSTMORTEM_SCHEMA),
                f("reason", reason),
                f("retained", retained),
                f("subsystems", snaps.len() as u64),
                f("capacity", self.ring.capacity() as u64),
            ],
        );
        if let Some(manifest) = self.manifest_json_clone() {
            push_head(&mut head, "manifest", vec![f("manifest", manifest)]);
        }
        for snap in &snaps {
            push_head(
                &mut head,
                "drops",
                vec![
                    f("target", snap.sub.as_str()),
                    f("dropped", snap.dropped),
                    f("recorded", snap.recorded),
                ],
            );
        }
        let registry = Registry::new();
        self.account(&registry);
        for line in registry.snapshot().render().lines() {
            push_head(&mut head, "metric", vec![f("line", line)]);
        }

        let mut out = String::new();
        for event in &head {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        for snap in &snaps {
            for event in &snap.events {
                out.push_str(&event.to_json());
                out.push('\n');
            }
        }
        out
    }

    /// Write `postmortem.jsonl` into the configured dump directory
    /// (creating it if needed). Returns the written path, or `None` when
    /// the recorder is disabled, no dump directory is configured, or the
    /// write fails — a post-mortem must never turn a crash into a second
    /// crash.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        if !self.enabled() {
            return None;
        }
        let dir = self.dump_dir_clone()?;
        let text = self.render_postmortem(reason);
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join("postmortem.jsonl");
        std::fs::write(&path, text).ok()?;
        self.dumps.fetch_add(1, Ordering::Relaxed);
        Some(path)
    }

    /// Best-effort incident dump: like [`FlightRecorder::dump`] but
    /// discards the result. The fault plane and `trace diff` call this on
    /// kills, heals, and divergences.
    pub fn incident(&self, reason: &str) {
        let _ = self.dump(reason);
    }
}

/// The process-global flight recorder. Initialized once, on first use,
/// from the environment: `REPRO_FLIGHT=off` disables recording entirely,
/// and `REPRO_POSTMORTEM=<dir>` configures the post-mortem dump directory
/// (without it, incidents record but dump nothing).
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let recorder = FlightRecorder::new(DEFAULT_RING_CAPACITY);
        if std::env::var("REPRO_FLIGHT").as_deref() == Ok("off") {
            recorder.set_enabled(false);
        }
        if let Ok(dir) = std::env::var("REPRO_POSTMORTEM") {
            if !dir.is_empty() {
                recorder.set_dump_dir(Some(PathBuf::from(dir)));
            }
        }
        recorder
    })
}

/// Record one event on the process-global recorder. This is the call the
/// instrumented subsystems use; when the recorder is disabled it costs one
/// atomic load (plus the caller's field construction).
pub fn record(sub: &str, kind: &str, fields: Vec<(String, Value)>) {
    global().record(sub, kind, fields);
}

/// Record one event on the process-global recorder with lazily built
/// fields. Disabled cost is one atomic load and a branch — field
/// construction is skipped entirely, which is what keeps always-on
/// instrumentation affordable on per-batch ingest paths.
#[inline]
pub fn record_with(sub: &str, kind: &str, fields: impl FnOnce() -> Vec<(String, Value)>) {
    global().record_with(sub, kind, fields);
}

/// Trigger a best-effort incident dump on the process-global recorder.
pub fn incident(reason: &str) {
    global().incident(reason);
}

/// Install a process panic hook that records the panic (subsystem
/// `process`, kind `panic`, with message and location) on the global
/// recorder and dumps a post-mortem, then chains to the previously
/// installed hook. Idempotent — only the first call installs.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let location = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()))
                .unwrap_or_else(|| "unknown".to_string());
            let recorder = global();
            recorder.record(
                "process",
                "panic",
                vec![f("msg", msg), f("location", location)],
            );
            recorder.incident("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_trace;
    use crate::trace::Trace;
    use std::sync::Arc;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = RingSink::new(3);
        for i in 0..5u64 {
            ring.push_assigning("a", "e", vec![f("i", i)]);
        }
        ring.push_assigning("b", "e", vec![]);
        let snaps = ring.snapshot();
        assert_eq!(snaps.len(), 2);
        let a = &snaps[0];
        assert_eq!(a.sub, "a");
        assert_eq!(a.dropped, 2);
        assert_eq!(a.recorded, 5);
        let seqs: Vec<u64> = a.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(snaps[1].dropped, 0);
        assert_eq!(ring.events_recorded(), 6);
        assert!(ring.bytes_recorded() > 0);
    }

    #[test]
    fn ring_byte_accounting_is_deterministic() {
        let a = RingSink::new(8);
        let b = RingSink::new(8);
        for ring in [&a, &b] {
            ring.push_assigning("s", "k", vec![f("x", 1.5f64), f("note", "hi")]);
        }
        assert_eq!(a.bytes_recorded(), b.bytes_recorded());
    }

    #[test]
    fn ring_works_as_a_plain_trace_sink() {
        let ring = Arc::new(RingSink::new(4));
        let trace = Trace::to_sink(ring.clone());
        let mut scope = trace.scope("runtime");
        for i in 0..6u64 {
            scope.event("chunk", vec![f("i", i)]);
        }
        let snap = &ring.snapshot()[0];
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.events.first().unwrap().seq, 2);
    }

    #[test]
    fn postmortem_validates_including_evicted_rings() {
        let rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record("runtime", "reduce", vec![f("i", i)]);
        }
        rec.record_with("select", "decision", || vec![f("alg", "PR")]);
        rec.set_manifest_json(Some("{\"schema\":\"repro-manifest-v1\"}".to_string()));
        let text = rec.render_postmortem("test");
        let summary = validate_trace(&text).expect("postmortem must be schema-valid");
        for sub in ["flight", "runtime", "select"] {
            assert!(summary.subsystems.iter().any(|s| s == sub), "{summary:?}");
        }
        assert_eq!(summary.dropped, 3);
        assert!(text.contains(POSTMORTEM_SCHEMA), "{text}");
        assert!(text.contains("\"kind\":\"manifest\""), "{text}");
        assert!(text.contains("obs.overhead.events"), "{text}");
    }

    #[test]
    fn disabled_recorder_records_and_dumps_nothing() {
        let rec = FlightRecorder::new(4);
        rec.set_enabled(false);
        rec.record("runtime", "reduce", vec![]);
        rec.record_with("runtime", "reduce", || {
            panic!("fields must not be built when disabled")
        });
        assert_eq!(rec.ring().events_recorded(), 0);
        rec.set_dump_dir(Some(std::env::temp_dir()));
        assert!(rec.dump("test").is_none());
        assert_eq!(rec.dumps_written(), 0);
    }

    #[test]
    fn dump_without_directory_is_a_noop() {
        let rec = FlightRecorder::new(4);
        rec.record("runtime", "reduce", vec![]);
        assert!(rec.dump("test").is_none());
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let rec = FlightRecorder::new(3);
            for i in 0..7u64 {
                rec.record("a", "e", vec![f("i", i)]);
            }
            rec.record("b", "e", vec![]);
            rec.render_postmortem("r")
        };
        assert_eq!(build(), build());
    }
}
